#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::workload {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::Pcg32;
using netbase::Prefix;

TEST(PaperRouters, TwelveProfilesMatchTableOne) {
  const auto& routers = paper_routers();
  ASSERT_EQ(routers.size(), 12u);
  EXPECT_EQ(routers.front().id, "rrc01");
  EXPECT_EQ(routers.front().location, "LINX, London");
  EXPECT_EQ(routers.back().id, "rrc16");
  std::set<std::uint64_t> seeds;
  for (const auto& router : routers) seeds.insert(router.seed);
  EXPECT_EQ(seeds.size(), routers.size()) << "seeds must be distinct";
}

TEST(RibGenerator, HitsRequestedSize) {
  RibConfig config;
  config.table_size = 10'000;
  const auto fib = generate_rib(config);
  EXPECT_GE(fib.size(), config.table_size);
  EXPECT_LT(fib.size(), config.table_size + 64);
}

TEST(RibGenerator, DeterministicPerSeed) {
  RibConfig config;
  config.table_size = 3'000;
  config.seed = 77;
  const auto a = generate_rib(config);
  const auto b = generate_rib(config);
  EXPECT_EQ(a.routes(), b.routes());
  config.seed = 78;
  const auto c = generate_rib(config);
  EXPECT_NE(a.routes(), c.routes());
}

TEST(RibGenerator, LengthHistogramPeaksAtSlash24) {
  RibConfig config;
  config.table_size = 30'000;
  const auto fib = generate_rib(config);
  std::map<unsigned, std::size_t> histogram;
  fib.for_each_route([&histogram](const netbase::Route& route) {
    ++histogram[route.prefix.length()];
  });
  std::size_t best_count = 0;
  unsigned best_length = 0;
  for (const auto& [length, count] : histogram) {
    if (count > best_count) {
      best_count = count;
      best_length = length;
    }
  }
  EXPECT_EQ(best_length, 24u);
  EXPECT_GT(static_cast<double>(best_count) / fib.size(), 0.3);
}

TEST(RibGenerator, NextHopsWithinConfiguredRange) {
  RibConfig config;
  config.table_size = 5'000;
  config.next_hops = 8;
  const auto fib = generate_rib(config);
  fib.for_each_route([&config](const netbase::Route& route) {
    const auto hop = netbase::to_index(route.next_hop);
    ASSERT_GE(hop, 1u);
    ASSERT_LE(hop, config.next_hops);
  });
}

TEST(SamplePrefixLength, StaysInBgpRange) {
  Pcg32 rng(81);
  for (int i = 0; i < 10'000; ++i) {
    const unsigned length = sample_prefix_length(rng);
    ASSERT_GE(length, 8u);
    ASSERT_LE(length, 26u);
  }
}

// ---------------------------------------------------------------------------

TEST(UpdateGenerator, RequiresNonEmptyTable) {
  trie::BinaryTrie empty;
  EXPECT_THROW(UpdateGenerator(empty, UpdateConfig{}), std::invalid_argument);
}

TEST(UpdateGenerator, WithdrawalsAlwaysHitLiveRoutes) {
  RibConfig rib_config;
  rib_config.table_size = 2'000;
  const auto fib = generate_rib(rib_config);
  trie::BinaryTrie replay(fib);
  UpdateConfig config;
  config.announce_ratio = 0.5;
  UpdateGenerator generator(fib, config);
  for (int i = 0; i < 3'000; ++i) {
    const auto msg = generator.next();
    if (msg.kind == UpdateKind::kWithdraw) {
      ASSERT_TRUE(replay.erase(msg.prefix)) << msg.prefix.to_string();
    } else {
      replay.insert(msg.prefix, msg.next_hop);
    }
  }
}

TEST(UpdateGenerator, ReannouncesChangeTheNextHop) {
  RibConfig rib_config;
  rib_config.table_size = 1'000;
  const auto fib = generate_rib(rib_config);
  trie::BinaryTrie replay(fib);
  UpdateConfig config;
  config.announce_ratio = 1.0;
  config.new_prefix_ratio = 0.0;  // only re-announces
  UpdateGenerator generator(fib, config);
  int changed = 0;
  for (int i = 0; i < 500; ++i) {
    const auto msg = generator.next();
    ASSERT_EQ(msg.kind, UpdateKind::kAnnounce);
    const auto existing = replay.find(msg.prefix);
    ASSERT_TRUE(existing.has_value()) << "re-announce of unknown prefix";
    if (*existing != msg.next_hop) ++changed;
    replay.insert(msg.prefix, msg.next_hop);
  }
  EXPECT_GT(changed, 450);  // different hop almost always
}

TEST(UpdateGenerator, FreshAnnouncesAvoidLivePrefixes) {
  RibConfig rib_config;
  rib_config.table_size = 1'000;
  const auto fib = generate_rib(rib_config);
  trie::BinaryTrie replay(fib);
  UpdateConfig config;
  config.announce_ratio = 1.0;
  config.new_prefix_ratio = 1.0;  // only fresh announces
  UpdateGenerator generator(fib, config);
  for (int i = 0; i < 1'000; ++i) {
    const auto msg = generator.next();
    ASSERT_EQ(msg.kind, UpdateKind::kAnnounce);
    ASSERT_FALSE(replay.find(msg.prefix).has_value())
        << msg.prefix.to_string();
    replay.insert(msg.prefix, msg.next_hop);
  }
}

TEST(UpdateGenerator, DeterministicPerSeed) {
  RibConfig rib_config;
  rib_config.table_size = 500;
  const auto fib = generate_rib(rib_config);
  UpdateConfig config;
  config.seed = 91;
  UpdateGenerator a(fib, config);
  UpdateGenerator b(fib, config);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(a.next(), b.next());
}

// ---------------------------------------------------------------------------

TEST(TrafficGenerator, RequiresPrefixes) {
  EXPECT_THROW(TrafficGenerator({}, TrafficConfig{}), std::invalid_argument);
}

TEST(TrafficGenerator, AddressesAlwaysInsideSomePrefix) {
  RibConfig rib_config;
  rib_config.table_size = 1'000;
  const auto fib = generate_rib(rib_config);
  std::vector<Prefix> prefixes;
  fib.for_each_route([&prefixes](const netbase::Route& route) {
    prefixes.push_back(route.prefix);
  });
  TrafficGenerator traffic(prefixes, TrafficConfig{});
  for (int i = 0; i < 5'000; ++i) {
    const auto address = traffic.next();
    ASSERT_NE(fib.lookup(address), kNoRoute) << address.to_string();
  }
}

TEST(TrafficGenerator, ZipfSkewConcentratesTraffic) {
  std::vector<Prefix> prefixes;
  for (std::uint32_t i = 0; i < 1'000; ++i) {
    prefixes.push_back(Prefix(Ipv4Address(i << 16), 16));
  }
  TrafficConfig config;
  config.zipf_skew = 1.2;
  TrafficGenerator traffic(prefixes, config);
  std::map<std::uint32_t, std::size_t> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[traffic.next().value() >> 16];
  // Top prefix should carry far more than the uniform share.
  std::size_t top = 0;
  for (const auto& [key, count] : counts) top = std::max(top, count);
  EXPECT_GT(top, 50'000 / 1'000 * 20);
}

TEST(TrafficGenerator, BurstRotationChangesHotSet) {
  std::vector<Prefix> prefixes;
  for (std::uint32_t i = 0; i < 256; ++i) {
    prefixes.push_back(Prefix(Ipv4Address(i << 24), 8));
  }
  TrafficConfig config;
  config.zipf_skew = 1.5;
  config.burst_period = 2'000;
  TrafficGenerator traffic(prefixes, config);
  const auto hottest = [&traffic] {
    std::map<std::uint32_t, int> counts;
    for (int i = 0; i < 2'000; ++i) ++counts[traffic.next().value() >> 24];
    std::uint32_t best = 0;
    int best_count = -1;
    for (const auto& [key, count] : counts) {
      if (count > best_count) {
        best = key;
        best_count = count;
      }
    }
    return best;
  };
  std::set<std::uint32_t> leaders;
  for (int phase = 0; phase < 6; ++phase) leaders.insert(hottest());
  EXPECT_GT(leaders.size(), 1u) << "hot set never rotated";
}

TEST(TrafficGenerator, DeterministicPerSeed) {
  std::vector<Prefix> prefixes{*Prefix::parse("10.0.0.0/8"),
                               *Prefix::parse("11.0.0.0/8")};
  TrafficConfig config;
  config.seed = 97;
  TrafficGenerator a(prefixes, config);
  TrafficGenerator b(prefixes, config);
  for (int i = 0; i < 500; ++i) ASSERT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace clue::workload
