// Parameterised sweeps of the parallel engine: conservation laws and
// the speedup bound must hold for every configuration, not just the
// paper's 4-TCAM/4-clock/256-FIFO point.
#include <gtest/gtest.h>

#include <tuple>

#include "engine/parallel_engine.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace clue::engine {
namespace {

using netbase::Prefix;

EngineSetup make_setup(const std::vector<netbase::Route>& table,
                       std::size_t tcams) {
  EngineSetup setup;
  const auto partitions = partition::even_partition(table, tcams);
  setup.tcam_routes.resize(tcams);
  for (std::size_t i = 0; i < tcams; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries = partition::even_partition_boundaries(table, tcams);
  for (std::size_t i = 0; i < tcams; ++i) setup.bucket_to_tcam.push_back(i);
  return setup;
}

// (tcams, fifo_depth, service_clocks, dred_capacity)
using Config = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class EngineSweep : public ::testing::TestWithParam<Config> {
 protected:
  static const std::vector<netbase::Route>& table() {
    static const auto* kTable = [] {
      workload::RibConfig config;
      config.table_size = 3'000;
      config.seed = 777;
      return new std::vector<netbase::Route>(
          onrtc::compress(workload::generate_rib(config)));
    }();
    return *kTable;
  }
};

TEST_P(EngineSweep, ConservationAndBounds) {
  const auto [tcams, fifo, service, dred] = GetParam();
  EngineConfig config;
  config.tcam_count = tcams;
  config.fifo_depth = fifo;
  config.service_clocks = service;
  config.dred_capacity = dred;
  config.track_reorder = true;
  ParallelEngine engine(EngineMode::kClue, config, make_setup(table(), tcams));

  workload::TrafficConfig traffic_config;
  traffic_config.seed = 778;
  traffic_config.zipf_skew = 1.0;
  std::vector<Prefix> prefixes;
  for (const auto& route : table()) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, traffic_config);

  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 20'000);

  // Conservation: every offered packet either completes or is dropped.
  EXPECT_EQ(metrics.packets_completed + metrics.packets_dropped,
            metrics.packets_offered);
  // Per-TCAM accounting adds up.
  std::uint64_t lookups = 0;
  std::uint64_t home = 0;
  for (std::size_t i = 0; i < tcams; ++i) {
    lookups += metrics.per_tcam_lookups[i];
    home += metrics.per_tcam_home[i];
  }
  EXPECT_EQ(lookups, home + metrics.dred_lookups);
  EXPECT_EQ(metrics.packets_completed, home + metrics.dred_hits);
  // Speedup can never exceed the chip count and never fall below the
  // single-chip floor while at least one chip is saturated.
  const double t = metrics.speedup(service);
  EXPECT_LE(t, static_cast<double>(tcams) + 1e-9);
  EXPECT_GT(t, 0.0);
  // The worst-case bound holds whenever diversions happened.
  if (metrics.dred_lookups > 1000) {
    EXPECT_GE(t, (static_cast<double>(tcams) - 1.0) *
                         metrics.dred_hit_rate() * 0.9);
  }
  // Reorder tracking: everything accepted was eventually released, so
  // occupancy statistics are well-formed.
  EXPECT_GE(metrics.reorder_max_occupancy, 1u);
  EXPECT_GE(metrics.reorder_mean_hold_clocks, 0.0);
}

std::string sweep_name(const ::testing::TestParamInfo<Config>& info) {
  const auto [tcams, fifo, service, dred] = info.param;
  return "t" + std::to_string(tcams) + "_f" + std::to_string(fifo) + "_s" +
         std::to_string(service) + "_d" + std::to_string(dred);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Values(Config{2, 16, 2, 64}, Config{2, 256, 4, 1024},
                      Config{4, 16, 4, 64}, Config{4, 256, 4, 1024},
                      Config{4, 64, 8, 256}, Config{8, 256, 4, 512},
                      Config{8, 32, 2, 128}),
    sweep_name);

TEST(EngineReorder, TrackingReportsOccupancyAndHold) {
  workload::RibConfig rib_config;
  rib_config.table_size = 2'000;
  rib_config.seed = 779;
  const auto table = onrtc::compress(workload::generate_rib(rib_config));
  EngineConfig config;
  config.fifo_depth = 8;  // force diversions -> real reordering
  config.track_reorder = true;
  ParallelEngine engine(EngineMode::kClue, config, make_setup(table, 4));
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 780;
  traffic_config.zipf_skew = 1.3;
  std::vector<Prefix> hot;
  for (std::size_t i = 0; i < table.size() / 4; ++i) {
    hot.push_back(table[i].prefix);
  }
  workload::TrafficGenerator traffic(hot, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 30'000);
  EXPECT_GT(metrics.out_of_order_completions, 0u);
  EXPECT_GT(metrics.reorder_max_occupancy, 1u);
  EXPECT_GT(metrics.reorder_mean_hold_clocks, 0.0);
}

TEST(EngineUpdateStalls, StallsAreCountedAndThrottleThroughput) {
  workload::RibConfig rib_config;
  rib_config.table_size = 2'000;
  rib_config.seed = 781;
  const auto table = onrtc::compress(workload::generate_rib(rib_config));
  std::vector<Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);

  const auto speedup_with = [&](std::size_t interval, std::size_t stall) {
    EngineConfig config;
    config.update_interval_clocks = interval;
    config.update_stall_clocks = stall;
    ParallelEngine engine(EngineMode::kClue, config, make_setup(table, 4));
    workload::TrafficConfig traffic_config;
    traffic_config.seed = 782;
    workload::TrafficGenerator traffic(prefixes, traffic_config);
    const auto metrics =
        engine.run([&traffic] { return traffic.next(); }, 30'000);
    if (interval != 0) {
      EXPECT_GT(metrics.update_stalls, 0u);
    }
    return metrics.speedup(config.service_clocks);
  };

  const double clean = speedup_with(0, 1);
  const double rare = speedup_with(5000, 15);
  const double hot = speedup_with(8, 15);
  // The paper's premise 1: rare updates are free.
  EXPECT_NEAR(rare, clean, 0.15);
  // Saturation-rate updates are definitely not.
  EXPECT_LT(hot, clean - 0.5);
}

}  // namespace
}  // namespace clue::engine
