// SpscRing in isolation: ordering, full/empty boundaries, wraparound,
// and a two-thread torture run with a seeded Pcg32 workload.
#include "runtime/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "netbase/rng.hpp"

namespace {

using clue::netbase::Pcg32;
using clue::runtime::SpscRing;

TEST(SpscRingTest, PushPopPreservesFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRingTest, FullRingRejectsPushUntilPopped) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRingTest, EmptyRingRejectsPop) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(SpscRingTest, WrapAroundKeepsOrderAcrossManyCycles) {
  SpscRing<std::uint32_t> ring(4);
  std::uint32_t expected = 0;
  std::uint32_t produced = 0;
  // Alternate bursts so the cursors wrap the 4-slot buffer often.
  for (int round = 0; round < 1000; ++round) {
    const unsigned burst = 1 + (round % 4);
    for (unsigned i = 0; i < burst; ++i) {
      if (ring.try_push(produced)) ++produced;
    }
    std::uint32_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, produced);
  EXPECT_GT(produced, 1000u);
}

TEST(SpscRingTest, TwoThreadTortureSeededWorkload) {
  constexpr std::uint64_t kSeed = 0xC10EULL;
  constexpr std::size_t kCount = 200'000;
  SpscRing<std::uint32_t> ring(64);

  std::thread producer([&ring] {
    Pcg32 values(kSeed);
    Pcg32 jitter(kSeed + 1);
    for (std::size_t i = 0; i < kCount; ++i) {
      const std::uint32_t value = values.next();
      while (!ring.try_push(value)) std::this_thread::yield();
      // Irregular pacing so both full and empty boundaries get hit.
      if (jitter.chance(0.01)) std::this_thread::yield();
    }
  });

  Pcg32 expected(kSeed);
  Pcg32 jitter(kSeed + 2);
  for (std::size_t i = 0; i < kCount; ++i) {
    std::uint32_t out = 0;
    while (!ring.try_pop(out)) std::this_thread::yield();
    ASSERT_EQ(out, expected.next()) << "at element " << i;
    if (jitter.chance(0.01)) std::this_thread::yield();
  }
  producer.join();
  std::uint32_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

}  // namespace
