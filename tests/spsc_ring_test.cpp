// SpscRing in isolation: ordering, full/empty boundaries, wraparound,
// and a two-thread torture run with a seeded Pcg32 workload.
#include "runtime/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "netbase/rng.hpp"

namespace {

using clue::netbase::Pcg32;
using clue::runtime::SpscRing;

TEST(SpscRingTest, PushPopPreservesFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRingTest, FullRingRejectsPushUntilPopped) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRingTest, EmptyRingRejectsPop) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(SpscRingTest, WrapAroundKeepsOrderAcrossManyCycles) {
  SpscRing<std::uint32_t> ring(4);
  std::uint32_t expected = 0;
  std::uint32_t produced = 0;
  // Alternate bursts so the cursors wrap the 4-slot buffer often.
  for (int round = 0; round < 1000; ++round) {
    const unsigned burst = 1 + (round % 4);
    for (unsigned i = 0; i < burst; ++i) {
      if (ring.try_push(produced)) ++produced;
    }
    std::uint32_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, produced);
  EXPECT_GT(produced, 1000u);
}

TEST(SpscRingTest, TwoThreadTortureSeededWorkload) {
  constexpr std::uint64_t kSeed = 0xC10EULL;
  constexpr std::size_t kCount = 200'000;
  SpscRing<std::uint32_t> ring(64);

  std::thread producer([&ring] {
    Pcg32 values(kSeed);
    Pcg32 jitter(kSeed + 1);
    for (std::size_t i = 0; i < kCount; ++i) {
      const std::uint32_t value = values.next();
      while (!ring.try_push(value)) std::this_thread::yield();
      // Irregular pacing so both full and empty boundaries get hit.
      if (jitter.chance(0.01)) std::this_thread::yield();
    }
  });

  Pcg32 expected(kSeed);
  Pcg32 jitter(kSeed + 2);
  for (std::size_t i = 0; i < kCount; ++i) {
    std::uint32_t out = 0;
    while (!ring.try_pop(out)) std::this_thread::yield();
    ASSERT_EQ(out, expected.next()) << "at element " << i;
    if (jitter.chance(0.01)) std::this_thread::yield();
  }
  producer.join();
  std::uint32_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

TEST(SpscRingTest, BatchedPushPopMatchesScalarSemantics) {
  SpscRing<int> ring(8);
  int values[] = {0, 1, 2, 3, 4};
  EXPECT_EQ(ring.try_push_n(values, 5), 5u);
  EXPECT_EQ(ring.size_approx(), 5u);
  int out[8] = {};
  EXPECT_EQ(ring.try_pop_n(out, 8), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.try_pop_n(out, 8), 0u);
  EXPECT_EQ(ring.try_push_n(values, 0), 0u);
  EXPECT_EQ(ring.try_pop_n(out, 0), 0u);
}

TEST(SpscRingTest, BatchedPushTakesLongestFittingPrefix) {
  SpscRing<int> ring(4);
  int a[] = {10, 11, 12};
  ASSERT_EQ(ring.try_push_n(a, 3), 3u);
  int b[] = {13, 14, 15};
  // Only one slot free: the partial push must accept b[0] alone.
  EXPECT_EQ(ring.try_push_n(b, 3), 1u);
  EXPECT_EQ(ring.try_push_n(b + 1, 2), 0u);
  int out[4] = {};
  ASSERT_EQ(ring.try_pop_n(out, 4), 4u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  EXPECT_EQ(out[2], 12);
  EXPECT_EQ(out[3], 13);
}

TEST(SpscRingTest, BatchedOpsWrapAroundTheBuffer) {
  SpscRing<std::uint32_t> ring(8);
  std::uint32_t next = 0;
  std::uint32_t expect = 0;
  // Push 5 / pop 3 each round: cursors drift and cross the 8-slot
  // boundary at varying offsets, so batches straddle the wrap point.
  for (int round = 0; round < 200; ++round) {
    std::uint32_t in[5];
    for (auto& v : in) v = next++;
    std::size_t pushed = ring.try_push_n(in, 5);
    next -= static_cast<std::uint32_t>(5 - pushed);  // rewind rejects
    std::uint32_t out[3];
    const std::size_t popped = ring.try_pop_n(out, 3);
    for (std::size_t i = 0; i < popped; ++i) ASSERT_EQ(out[i], expect++);
  }
  std::uint32_t out[8];
  const std::size_t tail = ring.try_pop_n(out, 8);
  for (std::size_t i = 0; i < tail; ++i) ASSERT_EQ(out[i], expect++);
  EXPECT_EQ(expect, next);
  EXPECT_GT(next, 500u);
}

TEST(SpscRingTest, MixedScalarAndBatchedCallsInterleaveCleanly) {
  SpscRing<int> ring(8);
  int batch[] = {1, 2, 3};
  ASSERT_TRUE(ring.try_push(0));
  ASSERT_EQ(ring.try_push_n(batch, 3), 3u);
  ASSERT_TRUE(ring.try_push(4));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  int rest[8] = {};
  ASSERT_EQ(ring.try_pop_n(rest, 8), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rest[i], i + 1);
}

TEST(SpscRingTest, TwoThreadBatchedHammerSeededWorkload) {
  constexpr std::uint64_t kSeed = 0xBA7C4ULL;
  constexpr std::size_t kCount = 200'000;
  SpscRing<std::uint32_t> ring(64);

  std::thread producer([&ring] {
    Pcg32 values(kSeed);
    Pcg32 sizes(kSeed + 1);
    std::uint32_t staged[17];
    std::size_t staged_n = 0;
    std::size_t sent = 0;
    while (sent < kCount) {
      if (staged_n == 0) {
        staged_n = 1 + sizes.next() % 16;
        if (staged_n > kCount - sent) staged_n = kCount - sent;
        for (std::size_t i = 0; i < staged_n; ++i) staged[i] = values.next();
      }
      const std::size_t pushed = ring.try_push_n(staged, staged_n);
      if (pushed == 0) {
        std::this_thread::yield();
        continue;
      }
      sent += pushed;
      // Keep the unsent suffix staged so partial pushes stay ordered.
      for (std::size_t i = pushed; i < staged_n; ++i) {
        staged[i - pushed] = staged[i];
      }
      staged_n -= pushed;
    }
  });

  Pcg32 expected(kSeed);
  Pcg32 sizes(kSeed + 2);
  std::size_t received = 0;
  while (received < kCount) {
    std::uint32_t out[16];
    const std::size_t want = 1 + sizes.next() % 16;
    const std::size_t got = ring.try_pop_n(out, want);
    if (got == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], expected.next()) << "at element " << received + i;
    }
    received += got;
  }
  producer.join();
  std::uint32_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

}  // namespace
