#include "onrtc/onrtc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "netbase/rng.hpp"
#include "workload/rib_gen.hpp"

namespace clue::onrtc {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::make_next_hop;
using netbase::Pcg32;
using trie::BinaryTrie;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

// ---------------------------------------------------------------------------
// Independent oracle: compute the forwarding function as address
// intervals by sweeping prefix boundaries, then count the minimal
// aligned-CIDR decomposition of every maximal constant run. Any disjoint
// prefix lies inside exactly one maximal run, so the per-run greedy CIDR
// decomposition is a true lower bound (and achievable).
std::size_t oracle_min_disjoint(const BinaryTrie& fib) {
  std::set<std::uint64_t> cuts{0, std::uint64_t{1} << 32};
  fib.for_each_route([&cuts](const netbase::Route& route) {
    cuts.insert(route.prefix.range_low().value());
    cuts.insert(std::uint64_t{route.prefix.range_high().value()} + 1);
  });
  // Maximal constant runs of the LPM function.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;  // [lo, hi)
  std::vector<NextHop> values;
  std::uint64_t previous = 0;
  NextHop current = kNoRoute;
  bool first = true;
  for (auto it = cuts.begin(); it != cuts.end(); ++it) {
    if (*it == (std::uint64_t{1} << 32)) break;
    const auto value =
        fib.lookup(Ipv4Address(static_cast<std::uint32_t>(*it)));
    if (first) {
      current = value;
      previous = *it;
      first = false;
      continue;
    }
    if (value != current) {
      runs.emplace_back(previous, *it);
      values.push_back(current);
      previous = *it;
      current = value;
    }
  }
  runs.emplace_back(previous, std::uint64_t{1} << 32);
  values.push_back(current);

  std::size_t total = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (values[i] == kNoRoute) continue;  // unrouted runs cost nothing
    auto [lo, hi] = runs[i];
    while (lo < hi) {
      // Largest aligned block starting at lo that fits in [lo, hi).
      std::uint64_t block = lo == 0 ? (std::uint64_t{1} << 32)
                                    : (lo & (~lo + 1));  // lowest set bit
      while (block > hi - lo) block >>= 1;
      lo += block;
      ++total;
    }
  }
  return total;
}

BinaryTrie random_fib(Pcg32& rng, std::size_t routes, unsigned min_len,
                      unsigned max_len, std::uint32_t hops) {
  BinaryTrie fib;
  for (std::size_t i = 0; i < routes; ++i) {
    // Confined to 10.0.0.0/8 so prefixes overlap heavily.
    const std::uint32_t bits =
        0x0A000000u | (rng.next() & 0x00FFFFFFu);
    const unsigned length = min_len + rng.next_below(max_len - min_len + 1);
    fib.insert(Prefix(Ipv4Address(bits), length),
               make_next_hop(1 + rng.next_below(hops)));
  }
  return fib;
}

void expect_equivalent(const BinaryTrie& fib,
                       const std::vector<Route>& table, Pcg32& rng) {
  BinaryTrie image;
  for (const auto& route : table) image.insert(route.prefix, route.next_hop);
  // Probe every region boundary plus random addresses.
  fib.for_each_route([&](const netbase::Route& route) {
    for (const Ipv4Address address :
         {route.prefix.range_low(), route.prefix.range_high()}) {
      ASSERT_EQ(image.lookup(address), fib.lookup(address))
          << "boundary " << address.to_string();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(image.lookup(address), fib.lookup(address))
        << address.to_string();
  }
}

// ---------------------------------------------------------------------------

TEST(Onrtc, EmptyTableCompressesToNothing) {
  EXPECT_TRUE(compress(BinaryTrie()).empty());
}

TEST(Onrtc, SingleRouteIsItsOwnCompression) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto table = compress(fib);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0], (Route{p("10.0.0.0/8"), make_next_hop(1)}));
}

TEST(Onrtc, ChildWithSameHopMergesIntoParent) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.0.0/16"), make_next_hop(1));
  const auto table = compress(fib);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].prefix, p("10.0.0.0/8"));
}

TEST(Onrtc, SiblingsWithSameHopMerge) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/9"), make_next_hop(3));
  fib.insert(p("10.128.0.0/9"), make_next_hop(3));
  const auto table = compress(fib);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0], (Route{p("10.0.0.0/8"), make_next_hop(3)}));
}

TEST(Onrtc, DifferingChildPunchesHole) {
  // 1* -> A with 100000-ish child -> B (the paper's Fig. 2 shape):
  // leaf-pushing splits the parent remainder into disjoint pieces.
  BinaryTrie fib;
  fib.insert(p("128.0.0.0/1"), make_next_hop(1));
  fib.insert(p("128.0.0.0/3"), make_next_hop(2));
  const auto table = compress(fib);
  // Remainder of /1 minus /3: the /2 sibling at 192.0.0.0/2 and the /3
  // sibling at 160.0.0.0/3, plus the /3 itself.
  ASSERT_EQ(table.size(), 3u);
  BinaryTrie image;
  for (const auto& route : table) image.insert(route.prefix, route.next_hop);
  EXPECT_EQ(image.lookup(Ipv4Address::from_octets(128, 0, 0, 1)),
            make_next_hop(2));
  EXPECT_EQ(image.lookup(Ipv4Address::from_octets(161, 0, 0, 0)),
            make_next_hop(1));
  EXPECT_EQ(image.lookup(Ipv4Address::from_octets(200, 0, 0, 0)),
            make_next_hop(1));
  EXPECT_EQ(image.lookup(Ipv4Address::from_octets(1, 0, 0, 0)), kNoRoute);
}

TEST(Onrtc, DefaultRouteCompressesToSingleEntry) {
  BinaryTrie fib;
  fib.insert(Prefix(), make_next_hop(9));
  fib.insert(p("10.0.0.0/8"), make_next_hop(9));
  const auto table = compress(fib);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].prefix, Prefix());
}

TEST(Onrtc, OutputIsAlwaysDisjoint) {
  Pcg32 rng(11);
  for (int round = 0; round < 20; ++round) {
    const auto fib = random_fib(rng, 60, 8, 20, 4);
    BinaryTrie image;
    for (const auto& route : compress(fib)) {
      image.insert(route.prefix, route.next_hop);
    }
    EXPECT_TRUE(image.is_disjoint());
  }
}

TEST(Onrtc, OutputIsSorted) {
  Pcg32 rng(13);
  const auto fib = random_fib(rng, 200, 8, 24, 8);
  const auto table = compress(fib);
  EXPECT_TRUE(std::is_sorted(table.begin(), table.end()));
}

TEST(Onrtc, SemanticsPreservedOnRandomTables) {
  Pcg32 rng(17);
  for (int round = 0; round < 10; ++round) {
    const auto fib = random_fib(rng, 150, 8, 26, 6);
    expect_equivalent(fib, compress(fib), rng);
  }
}

TEST(Onrtc, MatchesIndependentOptimalityOracle) {
  Pcg32 rng(19);
  for (int round = 0; round < 30; ++round) {
    const auto fib = random_fib(rng, 40, 6, 16, 3);
    const auto table = compress(fib);
    EXPECT_EQ(table.size(), oracle_min_disjoint(fib)) << "round " << round;
  }
}

TEST(Onrtc, OracleAgreesOnDenseDeepTables) {
  Pcg32 rng(23);
  for (int round = 0; round < 10; ++round) {
    const auto fib = random_fib(rng, 120, 10, 28, 2);
    EXPECT_EQ(compress(fib).size(), oracle_min_disjoint(fib));
  }
}

TEST(Onrtc, CompressionIsIdempotent) {
  Pcg32 rng(29);
  const auto fib = random_fib(rng, 300, 8, 24, 5);
  const auto once = compress(fib);
  BinaryTrie image;
  for (const auto& route : once) image.insert(route.prefix, route.next_hop);
  const auto twice = compress(image);
  EXPECT_EQ(once, twice);
}

TEST(Onrtc, StatsReportSizes) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/9"), make_next_hop(3));
  fib.insert(p("10.128.0.0/9"), make_next_hop(3));
  const auto result = compress_with_stats(fib);
  EXPECT_EQ(result.stats.original_routes, 2u);
  EXPECT_EQ(result.stats.compressed_routes, 1u);
  EXPECT_DOUBLE_EQ(result.stats.ratio(), 0.5);
}

TEST(Onrtc, GeneratedRibCompressesNearPaperRatio) {
  workload::RibConfig config;
  config.table_size = 30'000;
  config.seed = 5;
  const auto fib = workload::generate_rib(config);
  const auto result = compress_with_stats(fib);
  // Paper: 71% on real 2011 RIBs. The generator is calibrated to land in
  // the same regime; accept a generous band.
  EXPECT_GT(result.stats.ratio(), 0.5);
  EXPECT_LT(result.stats.ratio(), 0.9);
}

TEST(Onrtc, NoRouteSpaceStaysUncovered) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto table = compress(fib);
  BinaryTrie image;
  for (const auto& route : table) image.insert(route.prefix, route.next_hop);
  EXPECT_EQ(image.lookup(Ipv4Address::from_octets(11, 0, 0, 0)), kNoRoute);
  EXPECT_EQ(image.lookup(Ipv4Address::from_octets(9, 255, 255, 255)),
            kNoRoute);
}

}  // namespace
}  // namespace clue::onrtc
