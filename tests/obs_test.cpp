// Unit tests for the observability layer: counter blocks, log-bucketed
// latency histograms (including merge correctness — the property that
// makes per-worker recording sound), the TTF trace ring, and the
// MetricsRegistry exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/ttf_trace.hpp"

namespace {

using clue::obs::CounterBlock;
using clue::obs::HistogramSnapshot;
using clue::obs::LatencyHistogram;
using clue::obs::MetricsRegistry;
using clue::obs::TtfTraceEntry;
using clue::obs::TtfTraceRing;

enum class TestCounter : std::size_t { kAlpha, kBeta, kGamma, kCount };

TEST(CounterBlockTest, StartsZeroAndAccumulates) {
  CounterBlock<TestCounter> block;
  EXPECT_EQ(block.get(TestCounter::kAlpha), 0u);
  block.add(TestCounter::kAlpha);
  block.add(TestCounter::kBeta, 5);
  block.add(TestCounter::kAlpha, 2);
  EXPECT_EQ(block.get(TestCounter::kAlpha), 3u);
  EXPECT_EQ(block.get(TestCounter::kBeta), 5u);
  EXPECT_EQ(block.get(TestCounter::kGamma), 0u);

  const auto snap = block.snapshot();
  EXPECT_EQ(snap[0], 3u);
  EXPECT_EQ(snap[1], 5u);
  EXPECT_EQ(snap[2], 0u);
}

TEST(CounterBlockTest, IsCacheLinePadded) {
  EXPECT_EQ(alignof(CounterBlock<TestCounter>) % 64, 0u);
}

TEST(CounterBlockTest, ConcurrentIncrementsAreLossless) {
  CounterBlock<TestCounter> block;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&block] {
      for (int i = 0; i < kPerThread; ++i) block.add(TestCounter::kAlpha);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(block.get(TestCounter::kAlpha),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, BucketEdges) {
  // Bucket 0 is [0,1); bucket b is [2^(b-1), 2^b).
  EXPECT_EQ(HistogramSnapshot::bucket_of(0.0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(0.5), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1.0), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1.9), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2.0), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(3.99), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(4.0), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1024.0), 11u);
  // Far beyond the last bucket clamps instead of overflowing.
  EXPECT_EQ(HistogramSnapshot::bucket_of(1e30), HistogramSnapshot::kBuckets - 1);

  for (std::size_t b = 1; b + 1 < HistogramSnapshot::kBuckets; ++b) {
    EXPECT_EQ(HistogramSnapshot::bucket_lower_ns(b + 1),
              HistogramSnapshot::bucket_upper_ns(b));
  }
}

TEST(LatencyHistogramTest, EmptySnapshot) {
  LatencyHistogram hist;
  const auto snap = hist.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.quantile_ns(0.5), 0.0);
  EXPECT_EQ(snap.quantile_ns(0.0), 0.0);
  EXPECT_EQ(snap.quantile_ns(1.0), 0.0);
  EXPECT_EQ(snap.mean_ns(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantiles) {
  LatencyHistogram hist;
  hist.record(100.0);  // bucket [64, 128)
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.total, 1u);
  // Every quantile of a single sample is that sample's bucket: q=0 its
  // lower edge, q>0 its upper edge.
  EXPECT_EQ(snap.quantile_ns(0.0), 64.0);
  EXPECT_EQ(snap.quantile_ns(0.5), 128.0);
  EXPECT_EQ(snap.quantile_ns(1.0), 128.0);
  EXPECT_NEAR(snap.mean_ns(), 100.0, 1.0);
}

TEST(LatencyHistogramTest, QuantilesBracketExactRanks) {
  LatencyHistogram hist;
  // 1000 samples at 100ns, 10 at 100us: p50 in 100ns's bucket, p999+ in
  // the outlier bucket.
  for (int i = 0; i < 1000; ++i) hist.record(100.0);
  for (int i = 0; i < 10; ++i) hist.record(100'000.0);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.total, 1010u);
  EXPECT_EQ(snap.quantile_ns(0.5), 128.0);
  EXPECT_EQ(snap.quantile_ns(0.99), 128.0);
  EXPECT_EQ(snap.quantile_ns(0.9999), 131072.0);  // 2^17, bucket of 100us
  EXPECT_EQ(snap.quantile_ns(1.0), 131072.0);
  // Out-of-range q clamps.
  EXPECT_EQ(snap.quantile_ns(-0.5), snap.quantile_ns(0.0));
  EXPECT_EQ(snap.quantile_ns(1.5), snap.quantile_ns(1.0));
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  // The core soundness property of per-worker histograms: merging two
  // snapshots is indistinguishable from one histogram fed all samples.
  LatencyHistogram a, b, combined;
  std::uint64_t state = 88172645463325252ull;
  const auto next = [&state] {  // xorshift, deterministic
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 4000; ++i) {
    const double ns = static_cast<double>(next() % 1'000'000);
    ((i % 2) ? a : b).record(ns);
    combined.record(ns);
  }
  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  const auto expected = combined.snapshot();
  EXPECT_EQ(merged.total, expected.total);
  EXPECT_EQ(merged.sum_ns, expected.sum_ns);
  EXPECT_EQ(merged.counts, expected.counts);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.quantile_ns(q), expected.quantile_ns(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.record(50.0);
  auto merged = hist.snapshot();
  merged.merge(HistogramSnapshot{});
  EXPECT_EQ(merged.total, 100u);
  EXPECT_EQ(merged.quantile_ns(0.5), hist.snapshot().quantile_ns(0.5));
}

TEST(TtfTraceRingTest, KeepsMostRecentOldestFirst) {
  TtfTraceRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    TtfTraceEntry entry;
    entry.seq = i;
    entry.ttf1_ns = static_cast<double>(i) * 10.0;
    ring.record(entry);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].seq, 7u);
  EXPECT_EQ(snap[1].seq, 8u);
  EXPECT_EQ(snap[2].seq, 9u);
  EXPECT_EQ(snap[3].seq, 10u);
  EXPECT_EQ(snap[3].ttf1_ns, 100.0);
}

TEST(TtfTraceRingTest, PartialFill) {
  TtfTraceRing ring(8);
  TtfTraceEntry entry;
  entry.seq = 1;
  entry.ttf2_ns = 24.0;
  ring.record(entry);
  entry.seq = 2;
  ring.record(entry);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].seq, 1u);
  EXPECT_EQ(snap[1].seq, 2u);
  EXPECT_EQ(snap[0].total_ns(), 24.0);
}

TEST(TtfTraceRingTest, CapacityZeroDisables) {
  TtfTraceRing ring(0);
  ring.record(TtfTraceEntry{});
  ring.record(TtfTraceEntry{});
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(MetricsRegistryTest, LastWriteWins) {
  MetricsRegistry registry;
  registry.set_counter("a", 1);
  registry.set_counter("b", 2);
  registry.set_counter("a", 7);
  registry.set_gauge("g", 0.5);
  registry.set_gauge("g", 0.75);
  ASSERT_EQ(registry.counters().size(), 2u);
  EXPECT_EQ(registry.counters()[0].first, "a");
  EXPECT_EQ(registry.counters()[0].second, 7u);
  EXPECT_EQ(registry.counters()[1].second, 2u);
  ASSERT_EQ(registry.gauges().size(), 1u);
  EXPECT_EQ(registry.gauges()[0].second, 0.75);
}

TEST(MetricsRegistryTest, JsonContainsEverySection) {
  MetricsRegistry registry;
  registry.set_counter("runtime.lookups", 42);
  registry.set_gauge("runtime.hit_rate", 0.875);
  LatencyHistogram hist;
  hist.record(100.0);
  hist.record(200.0);
  registry.add_histogram("runtime.service_ns", hist.snapshot());
  TtfTraceEntry entry;
  entry.seq = 3;
  entry.ttf1_ns = 10.0;
  entry.ttf2_ns = 20.0;
  entry.ttf3_ns = 30.0;
  registry.add_ttf_trace("runtime.ttf", {entry});
  registry.add_table("fig", {"x", "y"}, {{"1", "2"}, {"3", "4"}});

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"runtime.lookups\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
  EXPECT_NE(json.find("\"runtime.hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime.service_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime.ttf\""), std::string::npos);
  EXPECT_NE(json.find("\"ttf1_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"fig\""), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check; the CI
  // smoke stage runs a real JSON parser over exporter output.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsRegistryTest, JsonEscapesStrings) {
  MetricsRegistry registry;
  registry.add_table("quo\"te", {"a\\b"}, {{"line\nbreak"}});
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line, no raw control
}

TEST(MetricsRegistryTest, JsonHandlesNonFiniteGauges) {
  MetricsRegistry registry;
  registry.set_gauge("bad_nan", std::nan(""));
  registry.set_gauge("bad_inf", std::numeric_limits<double>::infinity());
  const std::string json = registry.to_json();
  // Non-finite values must export as 0, never as bare nan/inf tokens.
  EXPECT_NE(json.find("\"bad_nan\":0"), std::string::npos);
  EXPECT_NE(json.find("\"bad_inf\":0"), std::string::npos);
}

TEST(MetricsRegistryTest, CsvFlattensEverything) {
  MetricsRegistry registry;
  registry.set_counter("c", 5);
  registry.set_gauge("g", 1.5);
  LatencyHistogram hist;
  hist.record(64.0);
  registry.add_histogram("h", hist.snapshot());
  std::ostringstream os;
  registry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("metric,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("c,counter,5"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,"), std::string::npos);
  EXPECT_NE(csv.find("h.count,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("h.p99_ns,histogram,"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpMentionsAllNames) {
  MetricsRegistry registry;
  registry.set_counter("lookups", 9);
  LatencyHistogram hist;
  hist.record(128.0);
  registry.add_histogram("svc", hist.snapshot());
  std::ostringstream os;
  registry.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("lookups"), std::string::npos);
  EXPECT_NE(text.find("svc"), std::string::npos);
}

}  // namespace
