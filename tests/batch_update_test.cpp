// Group-commit correctness: the coalescer's per-prefix fold, and the
// differential guarantee that apply_batch() lands every host
// (CluePipeline, ClueSystem, LookupRuntime) in the same state a
// message-at-a-time replay reaches — plus batch-granular overflow
// rollback, publish accounting (one publish per affected chip per
// batch), the async submit() ingress, and a burst-under-traffic
// windowed-oracle stress for TSan.
#include "update/group_commit.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "netbase/rng.hpp"
#include "runtime/lookup_runtime.hpp"
#include "system/clue_system.hpp"
#include "tcam/updater.hpp"
#include "update/clue_pipeline.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::update {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::NextHop;
using netbase::Pcg32;
using netbase::Prefix;
using netbase::Route;
using onrtc::FibOp;
using onrtc::FibOpKind;
using workload::UpdateKind;
using workload::UpdateMsg;

trie::BinaryTrie test_fib(std::size_t size, std::uint64_t seed) {
  workload::RibConfig config;
  config.table_size = size;
  config.seed = seed;
  return workload::generate_rib(config);
}

UpdateMsg announce(const char* prefix, std::uint32_t hop) {
  return UpdateMsg{UpdateKind::kAnnounce, *Prefix::parse(prefix),
                   make_next_hop(hop)};
}

UpdateMsg withdraw(const char* prefix) {
  return UpdateMsg{UpdateKind::kWithdraw, *Prefix::parse(prefix),
                   netbase::kNoRoute};
}

FibOp op(FibOpKind kind, const char* prefix, std::uint32_t hop) {
  return FibOp{kind, Route{*Prefix::parse(prefix), make_next_hop(hop)}};
}

std::vector<UpdateMsg> update_stream(const trie::BinaryTrie& fib,
                                     std::size_t count, std::uint64_t seed) {
  workload::UpdateConfig config;
  config.seed = seed;
  workload::UpdateGenerator generator(fib, config);
  return generator.generate(count);
}

std::vector<Ipv4Address> random_addresses(std::size_t count,
                                          std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.emplace_back(rng.next());
  return out;
}

// ---------------------------------------------------------------------------
// coalesce_ops: the per-prefix fold

TEST(CoalesceOps, InsertThenDeleteCancels) {
  const std::vector<FibOp> raw = {op(FibOpKind::kInsert, "10.0.0.0/8", 1),
                                  op(FibOpKind::kDelete, "10.0.0.0/8", 1)};
  CoalesceStats stats;
  const auto merged = coalesce_ops(raw, &stats);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(stats.raw_ops, 2u);
  EXPECT_EQ(stats.merged_ops, 0u);
  EXPECT_EQ(stats.cancelled(), 2u);
}

TEST(CoalesceOps, DeleteThenInsertBecomesModify) {
  const std::vector<FibOp> raw = {op(FibOpKind::kDelete, "10.0.0.0/8", 1),
                                  op(FibOpKind::kInsert, "10.0.0.0/8", 7)};
  const auto merged = coalesce_ops(raw);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, FibOpKind::kModify);
  EXPECT_EQ(merged[0].route.next_hop, make_next_hop(7));
}

TEST(CoalesceOps, DeleteThenInsertOfSameHopVanishes) {
  const std::vector<FibOp> raw = {op(FibOpKind::kDelete, "10.0.0.0/8", 1),
                                  op(FibOpKind::kInsert, "10.0.0.0/8", 1)};
  EXPECT_TRUE(coalesce_ops(raw).empty());
}

TEST(CoalesceOps, ModifyModifyLastWriterWins) {
  const std::vector<FibOp> raw = {op(FibOpKind::kModify, "10.0.0.0/8", 2),
                                  op(FibOpKind::kModify, "10.0.0.0/8", 3),
                                  op(FibOpKind::kModify, "10.0.0.0/8", 4)};
  const auto merged = coalesce_ops(raw);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, FibOpKind::kModify);
  EXPECT_EQ(merged[0].route.next_hop, make_next_hop(4));
}

TEST(CoalesceOps, InsertThenModifyIsInsertOfFinalHop) {
  const std::vector<FibOp> raw = {op(FibOpKind::kInsert, "10.0.0.0/8", 1),
                                  op(FibOpKind::kModify, "10.0.0.0/8", 9)};
  const auto merged = coalesce_ops(raw);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, FibOpKind::kInsert);
  EXPECT_EQ(merged[0].route.next_hop, make_next_hop(9));
}

TEST(CoalesceOps, ModifyThenDeleteIsDeleteWithOriginalHop) {
  // The delete op must carry a hop DRed erasure can key on; the fold
  // keeps the burst-initial hop when the first op revealed it.
  const std::vector<FibOp> raw = {op(FibOpKind::kModify, "10.0.0.0/8", 5),
                                  op(FibOpKind::kDelete, "10.0.0.0/8", 5)};
  const auto merged = coalesce_ops(raw);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, FibOpKind::kDelete);
}

TEST(CoalesceOps, DistinctPrefixesKeepFirstTouchOrder) {
  const std::vector<FibOp> raw = {op(FibOpKind::kInsert, "10.0.0.0/8", 1),
                                  op(FibOpKind::kInsert, "20.0.0.0/8", 2),
                                  op(FibOpKind::kModify, "10.0.0.0/8", 3),
                                  op(FibOpKind::kInsert, "30.0.0.0/8", 4)};
  const auto merged = coalesce_ops(raw);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].route.prefix, *Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(merged[0].route.next_hop, make_next_hop(3));
  EXPECT_EQ(merged[1].route.prefix, *Prefix::parse("20.0.0.0/8"));
  EXPECT_EQ(merged[2].route.prefix, *Prefix::parse("30.0.0.0/8"));
}

// ---------------------------------------------------------------------------
// CluePipeline: apply_batch ≡ sequential apply

TEST(BatchUpdate, PipelineBatchMatchesSequential) {
  const auto fib = test_fib(5'000, 61);
  CluePipeline sequential(fib, PipelineConfig{});
  CluePipeline batched(fib, PipelineConfig{});
  const auto warm = random_addresses(2'000, 62);
  sequential.warm(warm);
  batched.warm(warm);

  const auto stream = update_stream(fib, 2'000, 63);
  for (const auto& msg : stream) {
    try {
      sequential.apply(msg);
    } catch (const tcam::TcamFullError&) {
    }
  }
  for (std::size_t at = 0; at < stream.size(); at += 64) {
    const std::size_t n = std::min<std::size_t>(64, stream.size() - at);
    batched.apply_batch(std::span<const UpdateMsg>(stream.data() + at, n));
  }

  EXPECT_EQ(sequential.updates_rejected(), 0u);
  EXPECT_EQ(batched.updates_rejected(), 0u);
  EXPECT_EQ(sequential.chip().occupied(), batched.chip().occupied());
  EXPECT_EQ(sequential.fib().size(), batched.fib().size());
  for (const auto address : random_addresses(20'000, 64)) {
    ASSERT_EQ(sequential.lookup(address), batched.lookup(address))
        << address.to_string();
    ASSERT_EQ(batched.lookup(address),
              batched.fib().ground_truth().lookup(address))
        << address.to_string();
  }
  // DRed agreement on every surviving compressed route.
  ASSERT_EQ(sequential.dred_count(), batched.dred_count());
  std::size_t probed = 0;
  for (const auto& route : batched.fib().compressed().routes()) {
    if (++probed > 2'000) break;
    for (std::size_t i = 0; i < batched.dred_count(); ++i) {
      ASSERT_EQ(sequential.dred(i).contains(route.prefix),
                batched.dred(i).contains(route.prefix))
          << route.prefix.to_string();
    }
  }
}

TEST(BatchUpdate, AnnounceAndWithdrawOfSamePrefixInOneBatch) {
  const auto fib = test_fib(2'000, 71);
  CluePipeline pipeline(fib, PipelineConfig{});
  const auto before_occupied = pipeline.chip().occupied();
  const auto truth_before = [&] {
    std::vector<NextHop> hops;
    for (const auto address : random_addresses(4'000, 72)) {
      hops.push_back(pipeline.lookup(address));
    }
    return hops;
  }();

  // A fresh prefix announced and withdrawn inside one burst (a route
  // flap) must leave no trace — and the withdraw's diff cancels the
  // announce's, so the data plane is never written for the pair.
  const std::vector<UpdateMsg> batch = {
      announce("203.0.113.0/24", 9),
      announce("198.51.100.0/24", 8),
      withdraw("203.0.113.0/24"),
      withdraw("198.51.100.0/24"),
  };
  const auto sample =
      pipeline.apply_batch(std::span<const UpdateMsg>(batch));
  EXPECT_EQ(sample.applied, batch.size());
  EXPECT_EQ(sample.rejected, 0u);
  EXPECT_LT(sample.merged_ops, sample.raw_ops);

  EXPECT_EQ(pipeline.chip().occupied(), before_occupied);
  EXPECT_EQ(pipeline.fib().ground_truth().lookup(
                Ipv4Address::from_octets(203, 0, 113, 5)),
            fib.lookup(Ipv4Address::from_octets(203, 0, 113, 5)));
  std::size_t i = 0;
  for (const auto address : random_addresses(4'000, 72)) {
    ASSERT_EQ(pipeline.lookup(address), truth_before[i++])
        << address.to_string();
  }
}

TEST(BatchUpdate, WithdrawThenReannounceInOneBatchIsAModify) {
  trie::BinaryTrie fib;
  fib.insert(*Prefix::parse("10.0.0.0/8"), make_next_hop(1));
  fib.insert(*Prefix::parse("99.0.0.0/8"), make_next_hop(2));
  CluePipeline pipeline(fib, PipelineConfig{});

  const std::vector<UpdateMsg> batch = {withdraw("10.0.0.0/8"),
                                        announce("10.0.0.0/8", 5)};
  const auto sample =
      pipeline.apply_batch(std::span<const UpdateMsg>(batch));
  EXPECT_EQ(sample.applied, 2u);
  EXPECT_LE(sample.merged_ops, sample.raw_ops);
  EXPECT_EQ(pipeline.lookup(Ipv4Address::from_octets(10, 1, 2, 3)),
            make_next_hop(5));
  EXPECT_EQ(pipeline.fib().ground_truth().lookup(
                Ipv4Address::from_octets(10, 1, 2, 3)),
            make_next_hop(5));
}

// ---------------------------------------------------------------------------
// Overflow: rollback is exact at batch granularity

TEST(BatchUpdate, OverflowRejectsSuffixAndStaysConsistent) {
  const auto fib = test_fib(2'000, 81);
  PipelineConfig config;
  // Barely above the compressed size, so a 600-announce burst must hit
  // the ceiling partway through.
  config.tcam_capacity = onrtc::CompressedFib(fib).size() + 64;
  CluePipeline pipeline(fib, config);
  ASSERT_LE(pipeline.fib().size(), config.tcam_capacity);

  // Announce-heavy churn until the TCAM runs out of slots.
  Pcg32 rng(82);
  std::vector<UpdateMsg> batch;
  for (int i = 0; i < 600; ++i) {
    UpdateMsg msg;
    msg.kind = UpdateKind::kAnnounce;
    msg.prefix = Prefix(Ipv4Address(rng.next() & 0xffffff00u), 24);
    msg.next_hop = make_next_hop(1 + rng.next_below(250));
    batch.push_back(msg);
  }
  const auto sample =
      pipeline.apply_batch(std::span<const UpdateMsg>(batch));
  EXPECT_GT(sample.rejected, 0u) << "batch never overflowed the TCAM";
  EXPECT_EQ(sample.applied + sample.rejected, batch.size());
  EXPECT_EQ(pipeline.updates_rejected(), sample.rejected);
  EXPECT_LE(pipeline.chip().occupied(), config.tcam_capacity);

  // The committed prefix is installed, the rejected suffix is not, and
  // chip/trie agree everywhere.
  EXPECT_EQ(pipeline.chip().occupied(), pipeline.fib().size());
  for (const auto address : random_addresses(20'000, 83)) {
    ASSERT_EQ(pipeline.lookup(address),
              pipeline.fib().ground_truth().lookup(address))
        << address.to_string();
  }
  // The rejected messages form a suffix: every batch message before the
  // first rejected one is visible in the ground truth (last writer wins
  // when the random stream repeated a prefix).
  const auto& truth = pipeline.fib().ground_truth();
  std::vector<std::pair<Prefix, NextHop>> last_writer;
  for (std::size_t i = 0; i < sample.applied; ++i) {
    bool found = false;
    for (auto& [prefix, hop] : last_writer) {
      if (prefix == batch[i].prefix) {
        hop = batch[i].next_hop;
        found = true;
        break;
      }
    }
    if (!found) last_writer.emplace_back(batch[i].prefix, batch[i].next_hop);
  }
  for (const auto& [prefix, hop] : last_writer) {
    const auto stored = truth.find(prefix);
    ASSERT_TRUE(stored.has_value()) << prefix.to_string() << " missing";
    ASSERT_EQ(*stored, hop) << prefix.to_string();
  }

  // The pipeline stays usable: a withdraw frees room again.
  const std::vector<UpdateMsg> relief = {
      UpdateMsg{UpdateKind::kWithdraw, batch[0].prefix, netbase::kNoRoute}};
  const auto after = pipeline.apply_batch(std::span<const UpdateMsg>(relief));
  EXPECT_EQ(after.rejected, 0u);
}

// ---------------------------------------------------------------------------
// ClueSystem: apply_batch ≡ sequential apply across partitioned chips

TEST(BatchUpdate, SystemBatchMatchesSequential) {
  const auto fib = test_fib(8'000, 91);
  system::SystemConfig config;
  system::ClueSystem sequential(fib, config);
  system::ClueSystem batched(fib, config);

  const auto stream = update_stream(fib, 2'000, 92);
  for (const auto& msg : stream) {
    try {
      sequential.apply(msg);
    } catch (const tcam::TcamFullError&) {
    }
  }
  for (std::size_t at = 0; at < stream.size(); at += 128) {
    const std::size_t n = std::min<std::size_t>(128, stream.size() - at);
    batched.apply_batch(std::span<const UpdateMsg>(stream.data() + at, n));
  }

  EXPECT_EQ(sequential.updates_rejected(), 0u);
  EXPECT_EQ(batched.updates_rejected(), 0u);
  for (const auto address : random_addresses(20'000, 93)) {
    ASSERT_EQ(sequential.lookup(address), batched.lookup(address))
        << address.to_string();
    ASSERT_EQ(batched.lookup(address),
              batched.fib().ground_truth().lookup(address))
        << address.to_string();
  }
}

// ---------------------------------------------------------------------------
// LookupRuntime: batch ≡ sequential, publish accounting, async ingress

TEST(BatchUpdate, RuntimeBatchMatchesSequential) {
  const auto fib = test_fib(8'000, 101);
  runtime::RuntimeConfig config;
  config.worker_count = 4;
  runtime::LookupRuntime sequential(fib, config);
  runtime::LookupRuntime batched(fib, config);

  const auto stream = update_stream(fib, 1'500, 102);
  for (const auto& msg : stream) {
    try {
      sequential.apply(msg);
    } catch (const tcam::TcamFullError&) {
    }
  }
  for (std::size_t at = 0; at < stream.size(); at += 96) {
    const std::size_t n = std::min<std::size_t>(96, stream.size() - at);
    batched.apply_batch(std::span<const UpdateMsg>(stream.data() + at, n));
  }

  const auto pool = random_addresses(20'000, 103);
  const auto seq_hops = sequential.lookup_batch(pool);
  const auto bat_hops = batched.lookup_batch(pool);
  const auto& truth = batched.fib().ground_truth();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(seq_hops[i], bat_hops[i]) << pool[i].to_string();
    ASSERT_EQ(bat_hops[i], truth.lookup(pool[i])) << pool[i].to_string();
  }

  // Sequential apply() is apply_batch of one: both paths bump the same
  // batch counters, and publishes never exceed one per affected chip.
  const auto sm = sequential.metrics();
  const auto bm = batched.metrics();
  EXPECT_GT(sm.batches_applied, 0u);
  EXPECT_GT(bm.batches_applied, 0u);
  EXPECT_LT(bm.batches_applied, sm.batches_applied);
  EXPECT_EQ(sm.batch_publishes, sm.tables_published);
  EXPECT_EQ(bm.batch_publishes, bm.tables_published);
  EXPECT_LE(bm.batch_publishes, bm.batches_applied * config.worker_count);
  // Group commit amortizes publishes: far fewer table rebuilds for the
  // same update stream.
  EXPECT_LT(bm.tables_published, sm.tables_published);
}

TEST(BatchUpdate, OneEpochPublishPerAffectedChipPerBatch) {
  const auto fib = test_fib(8'000, 111);
  runtime::RuntimeConfig config;
  config.worker_count = 4;
  runtime::LookupRuntime runtime(fib, config);

  const auto stream = update_stream(fib, 256, 112);
  const auto before = runtime.metrics();
  const auto sample =
      runtime.apply_batch(std::span<const UpdateMsg>(stream));
  const auto after = runtime.metrics();

  ASSERT_GT(sample.applied, 0u);
  EXPECT_EQ(after.batches_applied - before.batches_applied, 1u);
  const std::uint64_t publishes =
      after.batch_publishes - before.batch_publishes;
  EXPECT_GE(publishes, 1u);
  EXPECT_LE(publishes, config.worker_count);
  EXPECT_EQ(after.tables_published - before.tables_published, publishes);

  // The trace entry for the batch agrees with the counters.
  const auto trace = runtime.ttf_trace();
  ASSERT_FALSE(trace.empty());
  const auto& entry = trace.back();
  EXPECT_EQ(entry.batch_size, stream.size());
  EXPECT_EQ(entry.chips_touched, publishes);
  EXPECT_GE(entry.ops_raw, entry.ops_merged);
  EXPECT_EQ(after.batch_ops_raw - before.batch_ops_raw, entry.ops_raw);
  EXPECT_EQ(after.batch_ops_merged - before.batch_ops_merged,
            entry.ops_merged);
}

TEST(BatchUpdate, AsyncSubmitIngressDrainsExactly) {
  const auto fib = test_fib(8'000, 121);
  runtime::RuntimeConfig async_config;
  async_config.worker_count = 4;
  async_config.update_ring_depth = 256;  // smaller than the stream: the
  async_config.update_batch_max = 64;    // submitter must block on room
  runtime::LookupRuntime async_runtime(fib, async_config);

  runtime::RuntimeConfig sync_config;
  sync_config.worker_count = 4;
  runtime::LookupRuntime sync_runtime(fib, sync_config);

  const auto stream = update_stream(fib, 2'000, 122);
  for (const auto& msg : stream) {
    ASSERT_TRUE(async_runtime.submit(msg));
    try {
      sync_runtime.apply(msg);
    } catch (const tcam::TcamFullError&) {
    }
  }
  async_runtime.flush_updates();

  const auto m = async_runtime.metrics();
  EXPECT_EQ(m.updates_submitted, stream.size());
  EXPECT_EQ(m.updates_ingested, stream.size());
  EXPECT_EQ(m.updates_rejected, 0u);
  EXPECT_GT(m.batches_applied, 0u);

  const auto pool = random_addresses(20'000, 123);
  const auto async_hops = async_runtime.lookup_batch(pool);
  const auto sync_hops = sync_runtime.lookup_batch(pool);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(async_hops[i], sync_hops[i]) << pool[i].to_string();
  }
}

// The group-commit stress (TSan target): bursts land through
// apply_batch() while a client hammers lookups. A batch commits as ONE
// table transition per chip, so every answer must match a *batch
// boundary* state — an oracle snapshot taken at some completed-update
// count inside [updates_completed() before, updates_started() after].
TEST(BatchUpdate, ConcurrentBurstsWindowedOracle) {
  const auto fib = test_fib(8'000, 131);
  runtime::RuntimeConfig config;
  config.worker_count = 4;
  runtime::LookupRuntime runtime(fib, config);

  constexpr std::size_t kUpdates = 600;
  constexpr std::size_t kBurst = 16;
  constexpr std::size_t kPool = 2048;
  const auto pool = random_addresses(kPool, 132);

  // oracles[v]: answers after v visible updates. Only batch-boundary
  // counts are filled — intermediate counts are unobservable by design.
  std::vector<std::vector<NextHop>> oracles(kUpdates + 1);
  auto snapshot_answers = [&pool](const trie::BinaryTrie& t) {
    std::vector<NextHop> answers;
    answers.reserve(pool.size());
    for (const auto address : pool) answers.push_back(t.lookup(address));
    return answers;
  };
  oracles[0] = snapshot_answers(fib);

  std::atomic<bool> done{false};
  std::thread control([&] {
    workload::UpdateConfig update_config;
    update_config.seed = 133;
    workload::UpdateGenerator updates(fib, update_config);
    std::uint64_t recorded = 0;
    while (recorded < kUpdates) {
      const auto burst = updates.generate(kBurst);
      runtime.apply_batch(std::span<const UpdateMsg>(burst));
      const std::uint64_t completed = runtime.updates_completed();
      if (completed > recorded) {
        recorded = completed;
        if (recorded <= kUpdates) {
          oracles[recorded] =
              snapshot_answers(runtime.fib().ground_truth());
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  struct BatchLog {
    std::uint64_t g0;
    std::uint64_t g1;
    std::vector<std::uint32_t> picks;
    std::vector<NextHop> hops;
  };
  std::vector<BatchLog> log;
  Pcg32 rng(134);
  while (!done.load(std::memory_order_acquire) && log.size() < 1500) {
    BatchLog entry;
    entry.picks.reserve(256);
    std::vector<Ipv4Address> batch;
    batch.reserve(256);
    for (int i = 0; i < 256; ++i) {
      const std::uint32_t pick = rng.next_below(kPool);
      entry.picks.push_back(pick);
      batch.push_back(pool[pick]);
    }
    entry.g0 = runtime.updates_completed();
    entry.hops = runtime.lookup_batch(batch);
    entry.g1 = runtime.updates_started();
    log.push_back(std::move(entry));
  }
  control.join();

  ASSERT_FALSE(log.empty());
  for (const auto& entry : log) {
    for (std::size_t i = 0; i < entry.picks.size(); ++i) {
      bool matched = false;
      const std::uint64_t hi = std::min<std::uint64_t>(entry.g1, kUpdates);
      for (std::uint64_t v = entry.g0; v <= hi && !matched; ++v) {
        if (oracles[v].empty()) continue;  // mid-batch count: unobservable
        matched = oracles[v][entry.picks[i]] == entry.hops[i];
      }
      EXPECT_TRUE(matched)
          << "address " << pool[entry.picks[i]].to_string()
          << " answered outside batch window [" << entry.g0 << ", "
          << entry.g1 << "]";
    }
  }

  runtime.reclaim();
  const auto m = runtime.metrics();
  EXPECT_EQ(m.tables_pending, 0u);
  EXPECT_EQ(m.tables_reclaimed, m.tables_published);
}

// Async variant of the stress: submit() from a control thread while the
// lookup client runs. Exercises the updater thread's adaptive windows
// under contention; exactness is checked at the flush barrier.
TEST(BatchUpdate, ConcurrentAsyncSubmitUnderTraffic) {
  const auto fib = test_fib(8'000, 141);
  runtime::RuntimeConfig config;
  config.worker_count = 4;
  config.update_ring_depth = 512;
  config.update_batch_max = 32;
  runtime::LookupRuntime runtime(fib, config);

  constexpr std::size_t kUpdates = 2'000;
  const auto pool = random_addresses(2'048, 142);

  std::atomic<bool> done{false};
  std::thread control([&] {
    workload::UpdateConfig update_config;
    update_config.seed = 143;
    workload::UpdateGenerator updates(fib, update_config);
    for (std::size_t i = 0; i < kUpdates; ++i) {
      ASSERT_TRUE(runtime.submit(updates.next()));
    }
    runtime.flush_updates();
    done.store(true, std::memory_order_release);
  });

  Pcg32 rng(144);
  while (!done.load(std::memory_order_acquire)) {
    std::vector<Ipv4Address> batch;
    batch.reserve(128);
    for (int i = 0; i < 128; ++i) batch.push_back(pool[rng.next_below(2'048)]);
    const auto hops = runtime.lookup_batch(batch);
    ASSERT_EQ(hops.size(), batch.size());
  }
  control.join();

  const auto m = runtime.metrics();
  EXPECT_EQ(m.updates_submitted, kUpdates);
  EXPECT_EQ(m.updates_ingested, kUpdates);

  // Quiescent: the data plane answers exactly from the final trie.
  const auto& truth = runtime.fib().ground_truth();
  const auto sweep = random_addresses(20'000, 145);
  const auto hops = runtime.lookup_batch(sweep);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(sweep[i])) << sweep[i].to_string();
  }
}

// Burst soak (ci/check.sh burst-soak stage runs this under TSan with
// CLUE_SOAK_UPDATES scaling the stream): sustained bursty churn through
// the async ingress while a lookup client hammers the data plane. The
// invariants checked are exactness at the flush barrier, ingress
// conservation (submitted == ingested), and epoch-reclaim accounting.

std::size_t soak_updates() {
  if (const char* env = std::getenv("CLUE_SOAK_UPDATES")) {
    const auto parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 10'000;
}

TEST(BurstSoakTest, SustainedBurstsUnderTrafficStayExact) {
  const std::size_t kUpdates = soak_updates();
  const auto fib = test_fib(8'000, 151);
  runtime::RuntimeConfig config;
  config.worker_count = 4;
  config.update_ring_depth = 1024;
  config.update_batch_max = 128;
  runtime::LookupRuntime runtime(fib, config);

  const auto pool = random_addresses(2'048, 152);
  std::atomic<bool> done{false};
  std::thread control([&] {
    workload::UpdateConfig update_config;
    update_config.seed = 153;
    workload::UpdateGenerator updates(fib, update_config);
    std::size_t sent = 0;
    Pcg32 rng(154);
    while (sent < kUpdates) {
      // Bursty arrival: a flood of submits, then a checkpoint flush
      // every few thousand so exactness is probed mid-soak too.
      const std::size_t burst =
          std::min<std::size_t>(1 + rng.next_below(512), kUpdates - sent);
      for (std::size_t i = 0; i < burst; ++i) {
        ASSERT_TRUE(runtime.submit(updates.next()));
      }
      sent += burst;
      if (sent % 4'096 < burst) runtime.flush_updates();
    }
    runtime.flush_updates();
    done.store(true, std::memory_order_release);
  });

  Pcg32 rng(155);
  std::uint64_t looked_up = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::vector<Ipv4Address> batch;
    batch.reserve(256);
    for (int i = 0; i < 256; ++i) batch.push_back(pool[rng.next_below(2'048)]);
    const auto hops = runtime.lookup_batch(batch);
    ASSERT_EQ(hops.size(), batch.size());
    looked_up += hops.size();
  }
  control.join();
  EXPECT_GT(looked_up, 0u);

  const auto m = runtime.metrics();
  EXPECT_EQ(m.updates_submitted, kUpdates);
  EXPECT_EQ(m.updates_ingested, kUpdates);

  const auto& truth = runtime.fib().ground_truth();
  const auto sweep = random_addresses(20'000, 156);
  const auto hops = runtime.lookup_batch(sweep);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(sweep[i])) << sweep[i].to_string();
  }

  runtime.reclaim();
  const auto quiesced = runtime.metrics();
  EXPECT_EQ(quiesced.tables_pending, 0u);
  EXPECT_EQ(quiesced.tables_reclaimed, quiesced.tables_published);
}

}  // namespace
}  // namespace clue::update
