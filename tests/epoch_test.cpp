// EpochDomain reclamation safety: no retired object is freed while a
// reader still pins an epoch that could see it. Destruction is observed
// through a counter incremented by the retired objects' destructors.
#include "runtime/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

using clue::runtime::EpochDomain;

struct Counted {
  explicit Counted(std::atomic<int>& counter) : counter(counter) {}
  ~Counted() { counter.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>& counter;
};

TEST(EpochTest, RetiredObjectSurvivesWhileReaderPinned) {
  EpochDomain domain(2);
  std::atomic<int> destroyed{0};
  domain.pin(0);  // reader enters before the retire: may hold the object
  domain.retire(new Counted(destroyed));
  EXPECT_EQ(domain.reclaim(), 0u);
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(domain.pending(), 1u);
  domain.unpin(0);
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(domain.reclaimed(), 1u);
  EXPECT_EQ(domain.pending(), 0u);
}

TEST(EpochTest, ReaderPinnedAfterRetireDoesNotBlockReclaim) {
  EpochDomain domain(1);
  std::atomic<int> destroyed{0};
  domain.retire(new Counted(destroyed));
  // This reader pinned *after* the retire advanced the epoch, so it can
  // only have loaded the replacement pointer — the old version is free.
  domain.pin(0);
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
  domain.unpin(0);
}

TEST(EpochTest, OldestPinnedReaderGovernsReclamation) {
  EpochDomain domain(2);
  std::atomic<int> destroyed{0};
  domain.pin(0);
  domain.retire(new Counted(destroyed));  // epoch stamp visible to reader 0
  domain.pin(1);
  domain.retire(new Counted(destroyed));  // stamp visible to reader 1
  EXPECT_EQ(domain.reclaim(), 0u);
  domain.unpin(0);
  EXPECT_EQ(domain.reclaim(), 1u);  // first retiree freed, second held
  EXPECT_EQ(destroyed.load(), 1);
  domain.unpin(1);
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 2);
}

TEST(EpochTest, GuardPinsForItsScope) {
  EpochDomain domain(1);
  std::atomic<int> destroyed{0};
  {
    EpochDomain::Guard guard(domain, 0);
    domain.retire(new Counted(destroyed));
    EXPECT_EQ(domain.reclaim(), 0u);
  }
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(EpochTest, DestructorFreesBacklog) {
  std::atomic<int> destroyed{0};
  {
    EpochDomain domain(1);
    for (int i = 0; i < 5; ++i) domain.retire(new Counted(destroyed));
    EXPECT_EQ(destroyed.load(), 0);
  }
  EXPECT_EQ(destroyed.load(), 5);
}

// A live pointer-swap loop: one reader dereferencing under a guard, one
// writer swapping and retiring. Run under TSan/ASan this validates the
// ordering argument; in any build it validates the counter bookkeeping.
TEST(EpochTest, ThreadedSwapTortureReclaimsEverythingOnce) {
  struct Payload {
    explicit Payload(std::atomic<int>& counter, int v)
        : counter(counter), a(v), b(v) {}
    ~Payload() {
      counter.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<int>& counter;
    int a;
    int b;
  };

  constexpr int kSwaps = 20'000;
  EpochDomain domain(1);
  std::atomic<int> destroyed{0};
  std::atomic<Payload*> published{new Payload(destroyed, 0)};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EpochDomain::Guard guard(domain, 0);
      const Payload* p = published.load(std::memory_order_seq_cst);
      // Both fields were written before publication; a torn or freed
      // object would break the equality (and trip ASan/TSan).
      EXPECT_EQ(p->a, p->b);
    }
  });

  for (int i = 1; i <= kSwaps; ++i) {
    auto* next = new Payload(destroyed, i);
    Payload* old = published.exchange(next, std::memory_order_seq_cst);
    domain.retire(old);
    if ((i & 63) == 0) domain.reclaim();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  domain.reclaim();
  EXPECT_EQ(domain.pending(), 0u);
  EXPECT_EQ(domain.reclaimed(), static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(destroyed.load(), kSwaps);
  delete published.load();
}

TEST(EpochTest, SynchronizeReturnsImmediatelyWithoutReaders) {
  EpochDomain domain(4);
  domain.synchronize();  // all slots idle: must not block
  domain.pin(2);
  domain.unpin(2);
  domain.synchronize();  // an unpinned slot is idle again
}

TEST(EpochTest, SynchronizeWaitsForPreexistingPin) {
  EpochDomain domain(2);
  domain.pin(0);

  std::atomic<bool> returned{false};
  std::thread writer([&] {
    domain.synchronize();
    returned.store(true, std::memory_order_release);
  });
  // The reader in slot 0 predates the epoch advance, so synchronize()
  // must still be spinning. (A false negative here would only hide the
  // bug, never flake a correct implementation.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load(std::memory_order_acquire));

  domain.unpin(0);
  writer.join();
  EXPECT_TRUE(returned.load(std::memory_order_acquire));
}

TEST(EpochTest, SynchronizeIsAGraceBarrierForRetirees) {
  // After synchronize() returns, objects retired *before* it are
  // invisible to every reader, so reclaim() must free all of them even
  // if a reader re-pinned immediately after.
  EpochDomain domain(1);
  std::atomic<int> destroyed{0};
  domain.pin(0);
  domain.retire(new Counted(destroyed));
  domain.unpin(0);
  domain.synchronize();
  domain.pin(0);  // a fresh pin at the post-barrier epoch
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
  domain.unpin(0);
}

}  // namespace
