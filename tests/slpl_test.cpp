#include "engine/slpl_setup.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace clue::engine {
namespace {

using netbase::Prefix;

std::vector<netbase::Route> test_table(std::uint64_t seed,
                                       std::size_t routes = 3'000) {
  workload::RibConfig config;
  config.table_size = routes;
  config.seed = seed;
  return onrtc::compress(workload::generate_rib(config));
}

std::vector<std::uint64_t> synthetic_load(std::size_t buckets,
                                          std::size_t hot_bucket) {
  std::vector<std::uint64_t> load(buckets, 10);
  load[hot_bucket] = 10'000;
  return load;
}

TEST(SlplSetup, ValidatesArguments) {
  const auto table = test_table(701);
  SlplConfig config;
  config.buckets = 8;
  EXPECT_THROW(build_slpl_setup(table, std::vector<std::uint64_t>(7, 1),
                                config),
               std::invalid_argument);
  config.tcam_count = 1;
  EXPECT_THROW(build_slpl_setup(table, std::vector<std::uint64_t>(8, 1),
                                config),
               std::invalid_argument);
}

TEST(SlplSetup, EveryBucketHasAtLeastOneHome) {
  const auto table = test_table(703);
  SlplConfig config;
  config.buckets = 16;
  const auto setup =
      build_slpl_setup(table, synthetic_load(16, 3), config);
  ASSERT_EQ(setup.bucket_homes.size(), 16u);
  for (const auto& homes : setup.bucket_homes) {
    EXPECT_GE(homes.size(), 1u);
    for (const auto chip : homes) EXPECT_LT(chip, config.tcam_count);
  }
}

TEST(SlplSetup, HotBucketGetsReplicated) {
  const auto table = test_table(705);
  SlplConfig config;
  config.buckets = 16;
  config.replication_budget = 0.25;
  const auto setup =
      build_slpl_setup(table, synthetic_load(16, 3), config);
  EXPECT_GT(setup.bucket_homes[3].size(), 1u);
}

TEST(SlplSetup, ReplicationBudgetIsRespected) {
  const auto table = test_table(707);
  SlplConfig config;
  config.buckets = 16;
  config.replication_budget = 0.25;
  const auto setup =
      build_slpl_setup(table, synthetic_load(16, 0), config);
  std::size_t total = 0;
  for (const auto& routes : setup.tcam_routes) total += routes.size();
  EXPECT_LE(total, table.size() + static_cast<std::size_t>(
                                      0.25 * static_cast<double>(table.size()) + 1));
  EXPECT_GE(total, table.size());
}

TEST(SlplSetup, ChipContentsMatchHomeAssignments) {
  const auto table = test_table(709);
  SlplConfig config;
  config.buckets = 8;
  const auto setup = build_slpl_setup(table, synthetic_load(8, 2), config);
  const auto partitions = partition::even_partition(table, 8);
  for (std::size_t bucket = 0; bucket < 8; ++bucket) {
    for (const auto chip : setup.bucket_homes[bucket]) {
      // Every route of the bucket must be present on every home chip.
      for (const auto& route : partitions.buckets[bucket].routes) {
        const auto& routes = setup.tcam_routes[chip];
        EXPECT_NE(std::find(routes.begin(), routes.end(), route),
                  routes.end())
            << "bucket " << bucket << " chip " << chip;
      }
    }
  }
}

TEST(SlplEngine, RequiresBucketHomes) {
  const auto table = test_table(711);
  const auto partitions = partition::even_partition(table, 4);
  EngineSetup setup;
  setup.tcam_routes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries = partition::even_partition_boundaries(table, 4);
  for (std::size_t i = 0; i < 4; ++i) setup.bucket_to_tcam.push_back(i);
  EngineConfig config;
  EXPECT_THROW(ParallelEngine(EngineMode::kSlpl, config, setup),
               std::invalid_argument);
}

TEST(SlplEngine, AnswersCorrectlyAndUsesNoDred) {
  const auto table = test_table(713);
  SlplConfig slpl_config;
  slpl_config.buckets = 16;
  std::vector<std::uint64_t> uniform(16, 1);
  const auto setup = build_slpl_setup(table, uniform, slpl_config);
  EngineConfig config;
  ParallelEngine engine(EngineMode::kSlpl, config, setup);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 714;
  std::vector<Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 40'000);
  EXPECT_EQ(metrics.dred_lookups, 0u);
  EXPECT_EQ(metrics.dred_fills, 0u);
  EXPECT_EQ(metrics.packets_completed + metrics.packets_dropped, 40'000u);
  EXPECT_GT(metrics.speedup(config.service_clocks), 2.0);
}

TEST(SlplEngine, CollapsesWhenTrafficShiftsButClueDoesNot) {
  const auto table = test_table(715, 8'000);
  std::vector<Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);

  // Train SLPL on seed A.
  const auto boundaries = partition::even_partition_boundaries(table, 32);
  workload::TrafficConfig stable;
  stable.seed = 716;
  stable.zipf_skew = 1.1;
  stable.cluster_locality = 0.9;
  workload::TrafficGenerator probe(prefixes, stable);
  const auto load = measure_bucket_load(
      boundaries, 32, [&probe] { return probe.next(); }, 100'000);
  SlplConfig slpl_config;
  slpl_config.buckets = 32;
  const auto slpl = build_slpl_setup(table, load, slpl_config);

  const auto speedup = [&](EngineMode mode, const EngineSetup& setup,
                           std::uint64_t seed) {
    EngineConfig config;
    config.dred_capacity = 512;
    ParallelEngine engine(mode, config, setup);
    workload::TrafficConfig traffic_config = stable;
    traffic_config.seed = seed;
    workload::TrafficGenerator traffic(prefixes, traffic_config);
    return engine.run([&traffic] { return traffic.next(); }, 120'000)
        .speedup(config.service_clocks);
  };

  // CLUE setup: plain 4-way even partition of the same table.
  const auto partitions = partition::even_partition(table, 4);
  EngineSetup clue_setup;
  clue_setup.tcam_routes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    clue_setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  clue_setup.bucket_boundaries = partition::even_partition_boundaries(table, 4);
  for (std::size_t i = 0; i < 4; ++i) clue_setup.bucket_to_tcam.push_back(i);

  const double slpl_stable = speedup(EngineMode::kSlpl, slpl, 716);
  const double slpl_shifted = speedup(EngineMode::kSlpl, slpl, 999);
  const double clue_shifted = speedup(EngineMode::kClue, clue_setup, 999);
  EXPECT_GT(slpl_stable, slpl_shifted + 0.3)
      << "static redundancy should degrade when traffic shifts";
  EXPECT_GT(clue_shifted, slpl_shifted)
      << "dynamic redundancy should beat static on shifted traffic";
}

}  // namespace
}  // namespace clue::engine
