#include "system/clpl_system.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "system/clue_system.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::system {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;
using netbase::Prefix;
using workload::UpdateKind;
using workload::UpdateMsg;

trie::BinaryTrie test_fib(std::size_t size, std::uint64_t seed) {
  workload::RibConfig config;
  config.table_size = size;
  config.seed = seed;
  return workload::generate_rib(config);
}

TEST(ClplSystem, InitialLookupsMatchGroundTruth) {
  const auto fib = test_fib(3'000, 901);
  ClplSystem system(fib, ClplSystemConfig{});
  Pcg32 rng(902);
  for (int probe = 0; probe < 4'000; ++probe) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(system.lookup(address), fib.lookup(address))
        << address.to_string();
  }
}

TEST(ClplSystem, TotalEntriesIncludeReplicas) {
  const auto fib = test_fib(3'000, 903);
  ClplSystem system(fib, ClplSystemConfig{});
  EXPECT_GE(system.total_tcam_entries(), fib.size());
}

TEST(ClplSystem, LookupsStayCorrectUnderUpdateStream) {
  const auto fib = test_fib(2'500, 905);
  ClplSystem system(fib, ClplSystemConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 906;
  workload::UpdateGenerator updates(fib, update_config);
  Pcg32 rng(907);
  for (int i = 0; i < 1'500; ++i) {
    system.apply(updates.next());
    if (i % 50 == 0) {
      for (int probe = 0; probe < 30; ++probe) {
        const Ipv4Address address(rng.next());
        ASSERT_EQ(system.lookup(address), system.fib().lookup(address))
            << "update " << i << " " << address.to_string();
      }
    }
  }
}

TEST(ClplSystem, CoveringAnnounceTouchesMultipleChips) {
  const auto fib = test_fib(4'000, 909);
  ClplSystem system(fib, ClplSystemConfig{});
  // A short covering route must be replicated into every bucket whose
  // carve roots it contains — the multi-chip update cost CLUE avoids.
  Pcg32 rng(910);
  const auto routes = fib.routes();
  std::size_t multi_chip = 0;
  for (int i = 0; i < 50; ++i) {
    // Anchor the wide prefix on routed space so it actually covers
    // carved subtrees.
    const auto& anchor =
        routes[rng.next_below(static_cast<std::uint32_t>(routes.size()))];
    const Prefix wide(anchor.prefix.address(), 1 + rng.next_below(3));
    const auto result = system.apply(UpdateMsg{
        UpdateKind::kAnnounce, wide,
        make_next_hop(1 + static_cast<std::uint32_t>(i) % 30)});
    if (result.chips_touched > 1) ++multi_chip;
    ASSERT_GE(result.entries_written, result.chips_touched);
  }
  EXPECT_GT(multi_chip, 10u) << "wide announces should hit several chips";
  // Lookups stay correct under the covering routes.
  for (int probe = 0; probe < 3'000; ++probe) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(system.lookup(address), system.fib().lookup(address));
  }
}

TEST(ClplSystem, WithdrawRemovesAllReplicas) {
  const auto fib = test_fib(3'000, 911);
  ClplSystem system(fib, ClplSystemConfig{});
  const Prefix wide(Ipv4Address(0x50000000u), 5);
  const auto announce = system.apply(
      UpdateMsg{UpdateKind::kAnnounce, wide, make_next_hop(7)});
  const auto before = system.total_tcam_entries();
  const auto withdraw =
      system.apply(UpdateMsg{UpdateKind::kWithdraw, wide, netbase::kNoRoute});
  EXPECT_EQ(withdraw.chips_touched, announce.chips_touched);
  EXPECT_EQ(system.total_tcam_entries(),
            before - announce.entries_written);
}

TEST(ClplSystem, UpdateImpactComparedToClueSystem) {
  // The §IV-B story, quantified: on the same update stream the CLPL
  // system touches more chip entries per update than the CLUE system's
  // compressed diff (for the common announce/withdraw mix).
  const auto fib = test_fib(4'000, 913);
  ClplSystem clpl(fib, ClplSystemConfig{});
  ClueSystem clue(fib, SystemConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 914;
  workload::UpdateGenerator clpl_updates(fib, update_config);
  workload::UpdateGenerator clue_updates(fib, update_config);
  double clpl_ttf2 = 0;
  double clue_ttf2 = 0;
  for (int i = 0; i < 800; ++i) {
    clpl_ttf2 += clpl.apply(clpl_updates.next()).ttf.ttf2_ns;
    clue_ttf2 += clue.apply(clue_updates.next()).ttf2_ns;
  }
  EXPECT_GT(clpl_ttf2, 2.0 * clue_ttf2);
}

TEST(ClplSystem, WarmedCachesPayInvalidationCosts) {
  const auto fib = test_fib(2'000, 915);
  ClplSystem system(fib, ClplSystemConfig{});
  Pcg32 rng(916);
  std::vector<Ipv4Address> warm;
  const auto routes = fib.routes();
  for (int i = 0; i < 2'000; ++i) {
    warm.push_back(
        routes[rng.next_below(static_cast<std::uint32_t>(routes.size()))]
            .prefix.range_low());
  }
  system.warm(warm);
  workload::UpdateConfig update_config;
  update_config.seed = 917;
  workload::UpdateGenerator updates(fib, update_config);
  double ttf3 = 0;
  for (int i = 0; i < 300; ++i) {
    ttf3 += system.apply(updates.next()).ttf.ttf3_ns;
  }
  EXPECT_GT(ttf3, 0.0);
}

}  // namespace
}  // namespace clue::system
