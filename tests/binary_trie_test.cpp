#include "trie/binary_trie.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/rng.hpp"

namespace clue::trie {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::make_next_hop;
using netbase::Pcg32;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

Ipv4Address a(const char* text) {
  const auto parsed = Ipv4Address::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(BinaryTrie, EmptyTrieHasNoRoutes) {
  BinaryTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.node_count(), 0u);
  EXPECT_EQ(trie.lookup(a("1.2.3.4")), kNoRoute);
  EXPECT_TRUE(trie.is_disjoint());
}

TEST(BinaryTrie, InsertThenLookup) {
  BinaryTrie trie;
  EXPECT_TRUE(trie.insert(p("10.0.0.0/8"), make_next_hop(1)));
  EXPECT_EQ(trie.lookup(a("10.20.30.40")), make_next_hop(1));
  EXPECT_EQ(trie.lookup(a("11.0.0.0")), kNoRoute);
}

TEST(BinaryTrie, InsertReturnsFalseOnOverwrite) {
  BinaryTrie trie;
  EXPECT_TRUE(trie.insert(p("10.0.0.0/8"), make_next_hop(1)));
  EXPECT_FALSE(trie.insert(p("10.0.0.0/8"), make_next_hop(2)));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(a("10.0.0.1")), make_next_hop(2));
}

TEST(BinaryTrie, LongestPrefixWins) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  trie.insert(p("10.1.2.0/24"), make_next_hop(3));
  EXPECT_EQ(trie.lookup(a("10.1.2.3")), make_next_hop(3));
  EXPECT_EQ(trie.lookup(a("10.1.9.9")), make_next_hop(2));
  EXPECT_EQ(trie.lookup(a("10.9.9.9")), make_next_hop(1));
}

TEST(BinaryTrie, DefaultRouteMatchesEverything) {
  BinaryTrie trie;
  trie.insert(Prefix(), make_next_hop(42));
  EXPECT_EQ(trie.lookup(a("0.0.0.0")), make_next_hop(42));
  EXPECT_EQ(trie.lookup(a("255.255.255.255")), make_next_hop(42));
}

TEST(BinaryTrie, HostRouteMatchesSingleAddress) {
  BinaryTrie trie;
  trie.insert(p("1.2.3.4/32"), make_next_hop(5));
  EXPECT_EQ(trie.lookup(a("1.2.3.4")), make_next_hop(5));
  EXPECT_EQ(trie.lookup(a("1.2.3.5")), kNoRoute);
}

TEST(BinaryTrie, EraseRemovesAndPrunes) {
  BinaryTrie trie;
  trie.insert(p("10.1.2.0/24"), make_next_hop(1));
  const std::size_t nodes_before = trie.node_count();
  EXPECT_GT(nodes_before, 20u);
  EXPECT_TRUE(trie.erase(p("10.1.2.0/24")));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.node_count(), 0u);
  EXPECT_FALSE(trie.erase(p("10.1.2.0/24")));
}

TEST(BinaryTrie, ErasePreservesOtherRoutes) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  EXPECT_TRUE(trie.erase(p("10.1.0.0/16")));
  EXPECT_EQ(trie.lookup(a("10.1.0.1")), make_next_hop(1));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(BinaryTrie, EraseMissingIsNoop) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_FALSE(trie.erase(p("10.0.0.0/16")));
  EXPECT_FALSE(trie.erase(p("11.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(BinaryTrie, FindIsExactNotLpm) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_EQ(trie.find(p("10.0.0.0/8")), make_next_hop(1));
  EXPECT_EQ(trie.find(p("10.0.0.0/16")), std::nullopt);
  EXPECT_EQ(trie.find(p("10.0.0.0/7")), std::nullopt);
}

TEST(BinaryTrie, RoutesAreInOrder) {
  BinaryTrie trie;
  trie.insert(p("192.0.2.0/24"), make_next_hop(1));
  trie.insert(p("10.0.0.0/8"), make_next_hop(2));
  trie.insert(p("10.0.0.0/16"), make_next_hop(3));
  trie.insert(p("10.128.0.0/9"), make_next_hop(4));
  const auto routes = trie.routes();
  ASSERT_EQ(routes.size(), 4u);
  EXPECT_TRUE(std::is_sorted(routes.begin(), routes.end()));
  EXPECT_EQ(routes[0].prefix, p("10.0.0.0/8"));
  EXPECT_EQ(routes[1].prefix, p("10.0.0.0/16"));
  EXPECT_EQ(routes[2].prefix, p("10.128.0.0/9"));
  EXPECT_EQ(routes[3].prefix, p("192.0.2.0/24"));
}

TEST(BinaryTrie, IsDisjointDetectsNesting) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("11.0.0.0/8"), make_next_hop(2));
  EXPECT_TRUE(trie.is_disjoint());
  trie.insert(p("10.1.0.0/16"), make_next_hop(3));
  EXPECT_FALSE(trie.is_disjoint());
}

TEST(BinaryTrie, CopyIsDeep) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  BinaryTrie copy(trie);
  copy.insert(p("11.0.0.0/8"), make_next_hop(2));
  copy.erase(p("10.0.0.0/8"));
  EXPECT_EQ(trie.lookup(a("10.0.0.1")), make_next_hop(1));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(copy.size(), 1u);
}

TEST(BinaryTrie, NodeAtAndRoutesWithin) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  trie.insert(p("10.1.2.0/24"), make_next_hop(3));
  EXPECT_NE(trie.node_at(p("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.node_at(p("11.0.0.0/8")), nullptr);
  const auto within = trie.routes_within(p("10.1.0.0/16"));
  ASSERT_EQ(within.size(), 2u);
  EXPECT_EQ(within[0].prefix, p("10.1.0.0/16"));
  EXPECT_EQ(within[1].prefix, p("10.1.2.0/24"));
}

TEST(BinaryTrie, LongestMatchAboveExcludesSelf) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  EXPECT_EQ(trie.longest_match_above(p("10.1.0.0/16")), make_next_hop(1));
  EXPECT_EQ(trie.longest_match_above(p("10.1.2.0/24")), make_next_hop(2));
  EXPECT_EQ(trie.longest_match_above(p("10.0.0.0/8")), kNoRoute);
}

TEST(BinaryTrie, ForEachMatchVisitsAllAncestors) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  trie.insert(p("10.1.2.0/24"), make_next_hop(3));
  trie.insert(p("99.0.0.0/8"), make_next_hop(4));
  std::vector<Route> matches;
  trie.for_each_match(a("10.1.2.3"),
                      [&](const Route& route) { matches.push_back(route); });
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].prefix.length(), 8u);
  EXPECT_EQ(matches[2].prefix.length(), 24u);
}

TEST(BinaryTrie, RandomizedDifferentialAgainstLinearFib) {
  Pcg32 rng(2024);
  BinaryTrie trie;
  LinearFib oracle;
  for (int step = 0; step < 4000; ++step) {
    const Prefix prefix(Ipv4Address(rng.next()), 4 + rng.next_below(29));
    if (rng.chance(0.7)) {
      const auto hop = make_next_hop(1 + rng.next_below(16));
      trie.insert(prefix, hop);
      oracle.insert(prefix, hop);
    } else {
      EXPECT_EQ(trie.erase(prefix), oracle.erase(prefix));
    }
    if (step % 50 == 0) {
      for (int probe = 0; probe < 20; ++probe) {
        const Ipv4Address address(rng.next());
        ASSERT_EQ(trie.lookup(address), oracle.lookup(address))
            << "step " << step << " addr " << address.to_string();
      }
    }
  }
  EXPECT_EQ(trie.size(), oracle.size());
}

TEST(BinaryTrie, LookupRouteReturnsMatchedPrefix) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  const auto route = trie.lookup_route(a("10.1.200.1"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->prefix, p("10.1.0.0/16"));
  EXPECT_EQ(route->next_hop, make_next_hop(2));
  EXPECT_FALSE(trie.lookup_route(a("12.0.0.1")).has_value());
}

TEST(BinaryTrie, ClearEmptiesEverything) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("11.0.0.0/8"), make_next_hop(2));
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.node_count(), 0u);
  EXPECT_EQ(trie.lookup(a("10.0.0.1")), kNoRoute);
}

}  // namespace
}  // namespace clue::trie
