// Regression tests pinning down CompressedFib's covering-region fast
// path (refresh_under_region): exact diff shapes for the hole-punch,
// absorb, and collapse cases. The generic invariant (incremental equals
// rebuild) lives in compressed_fib_test.cpp; these tests assert the
// *op-level* contract benches and TCAM accounting rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/rng.hpp"
#include "onrtc/compressed_fib.hpp"

namespace clue::onrtc {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::make_next_hop;
using netbase::Pcg32;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

std::size_t count_kind(const std::vector<FibOp>& ops, FibOpKind kind) {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(),
                    [kind](const FibOp& op) { return op.kind == kind; }));
}

TEST(FastPath, HolePunchEmitsPathSiblingsPlusChild) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  // Punch a /24 hole: delete the /8 region, insert the /24 plus one
  // sibling piece per level between /8 and /24 (16 of them).
  const auto ops = fib.announce(p("10.1.2.0/24"), make_next_hop(2));
  EXPECT_EQ(count_kind(ops, FibOpKind::kDelete), 1u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kInsert), 17u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kModify), 0u);
  EXPECT_EQ(fib.size(), 17u);
}

TEST(FastPath, SameHopAnnounceInsideRegionIsFree) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_TRUE(fib.announce(p("10.77.0.0/16"), make_next_hop(1)).empty());
  EXPECT_TRUE(fib.announce(p("10.77.88.0/24"), make_next_hop(1)).empty());
  EXPECT_EQ(fib.size(), 1u);
}

TEST(FastPath, WithdrawInsideRegionOfAbsorbedRouteIsFree) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("10.1.0.0/16"), make_next_hop(1));  // absorbed
  const auto ops = fib.withdraw(p("10.1.0.0/16"));
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(fib.size(), 1u);
}

TEST(FastPath, HolePunchThenSameHopRestoreCollapsesBack) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("10.1.2.0/24"), make_next_hop(2));
  ASSERT_EQ(fib.size(), 17u);
  // Flip the hole's hop back to the surrounding value: everything must
  // re-merge into the original /8 — delete all 17, insert 1.
  const auto ops = fib.announce(p("10.1.2.0/24"), make_next_hop(1));
  EXPECT_EQ(count_kind(ops, FibOpKind::kDelete), 17u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kInsert), 1u);
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.compressed().routes().front().prefix, p("10.0.0.0/8"));
}

TEST(FastPath, WithdrawHolePunchedRouteRestoresRegion) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("10.1.2.0/24"), make_next_hop(2));
  const auto ops = fib.withdraw(p("10.1.2.0/24"));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kInsert), 1u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kDelete), 17u);
}

TEST(FastPath, NestedHoleInsideHole) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("10.1.0.0/16"), make_next_hop(2));
  fib.announce(p("10.1.2.0/24"), make_next_hop(3));
  // Every level answers correctly.
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.200.0.1")), make_next_hop(1));
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.1.200.1")), make_next_hop(2));
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.1.2.200")), make_next_hop(3));
  // And the structure matches a fresh rebuild.
  EXPECT_EQ(fib.compressed().routes(), compress(fib.ground_truth()));
}

TEST(FastPath, ModifyOfExactRegionIsSingleOp) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("99.0.0.0/8"), make_next_hop(2));
  const auto ops = fib.announce(p("10.0.0.0/8"), make_next_hop(3));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, FibOpKind::kModify);
}

TEST(FastPath, ModifyTriggeringSiblingMergeAcrossRegions) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/9"), make_next_hop(1));
  fib.announce(p("10.128.0.0/9"), make_next_hop(2));
  ASSERT_EQ(fib.size(), 2u);
  // Changing the right /9 to match the left must merge into one /8.
  const auto ops = fib.announce(p("10.128.0.0/9"), make_next_hop(1));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.compressed().routes().front().prefix, p("10.0.0.0/8"));
  EXPECT_EQ(count_kind(ops, FibOpKind::kDelete), 2u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kInsert), 1u);
}

TEST(FastPath, CascadingUpwardMergeOverManyLevels) {
  CompressedFib fib;
  // Build four /10s under 10.0.0.0/8, three with hop 1, one with hop 2.
  fib.announce(p("10.0.0.0/10"), make_next_hop(1));
  fib.announce(p("10.64.0.0/10"), make_next_hop(1));
  fib.announce(p("10.128.0.0/10"), make_next_hop(1));
  fib.announce(p("10.192.0.0/10"), make_next_hop(2));
  // 10.0.0.0/9 (merged pair) + 10.128.0.0/10 + 10.192.0.0/10: the two
  // hop-1 regions at different levels cannot merge without the fourth.
  ASSERT_EQ(fib.size(), 3u);
  // Completing the square merges everything to a single /8.
  fib.announce(p("10.192.0.0/10"), make_next_hop(1));
  ASSERT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.compressed().routes().front().prefix, p("10.0.0.0/8"));
}

TEST(FastPath, AnnounceCoveringExistingRegions) {
  CompressedFib fib;
  fib.announce(p("10.1.0.0/16"), make_next_hop(1));
  fib.announce(p("10.2.0.0/16"), make_next_hop(2));
  // A new covering /8 with a third hop must fill all the gaps without
  // touching the two existing regions.
  const auto ops = fib.announce(p("10.0.0.0/8"), make_next_hop(3));
  EXPECT_EQ(count_kind(ops, FibOpKind::kDelete), 0u);
  EXPECT_EQ(count_kind(ops, FibOpKind::kModify), 0u);
  EXPECT_GT(count_kind(ops, FibOpKind::kInsert), 0u);
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.1.0.1")), make_next_hop(1));
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.2.0.1")), make_next_hop(2));
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.99.0.1")), make_next_hop(3));
  EXPECT_EQ(fib.compressed().routes(), compress(fib.ground_truth()));
}

TEST(FastPath, HostRouteHolePunch) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  const auto ops = fib.announce(p("10.0.0.1/32"), make_next_hop(2));
  // 24 sibling pieces + the /32 itself, one delete.
  EXPECT_EQ(count_kind(ops, FibOpKind::kInsert), 25u);
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.0.0.1")), make_next_hop(2));
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.0.0.0")), make_next_hop(1));
  EXPECT_EQ(fib.lookup(*Ipv4Address::parse("10.0.0.2")), make_next_hop(1));
}

TEST(FastPath, StressAgainstRebuildNearRegionBoundaries) {
  Pcg32 rng(501);
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  for (int step = 0; step < 400; ++step) {
    // Bias updates toward the same /16 so holes, restores and merges
    // constantly interact.
    const Prefix prefix(
        Ipv4Address(0x0A010000u | (rng.next() & 0xFFFF)),
        20 + rng.next_below(13));
    if (rng.chance(0.7)) {
      fib.announce(prefix, make_next_hop(1 + rng.next_below(3)));
    } else {
      fib.withdraw(prefix);
    }
    ASSERT_EQ(fib.compressed().routes(), compress(fib.ground_truth()))
        << "step " << step;
  }
}

}  // namespace
}  // namespace clue::onrtc
