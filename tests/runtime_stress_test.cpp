// LookupRuntime end-to-end correctness: batched lookups against the
// reference BinaryTrie, diversion under skew, 10k interleaved updates
// with exact answers, a concurrent update+lookup hammer with a
// version-window oracle, and epoch-reclamation accounting.
#include "runtime/lookup_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "netbase/rng.hpp"
#include "system/clue_system.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using clue::netbase::Ipv4Address;
using clue::netbase::NextHop;
using clue::netbase::Pcg32;
using clue::runtime::LookupRuntime;
using clue::runtime::RuntimeConfig;

clue::trie::BinaryTrie make_fib(std::size_t routes, std::uint64_t seed) {
  clue::workload::RibConfig config;
  config.table_size = routes;
  config.seed = seed;
  return clue::workload::generate_rib(config);
}

std::vector<Ipv4Address> random_addresses(std::size_t count,
                                          std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.emplace_back(rng.next());
  return out;
}

TEST(LookupRuntimeTest, BatchLookupsMatchReferenceTrie) {
  const auto fib = make_fib(20'000, 101);
  RuntimeConfig config;
  config.worker_count = 4;
  LookupRuntime runtime(fib, config);

  const auto addresses = random_addresses(20'000, 202);
  for (std::size_t at = 0; at < addresses.size(); at += 1024) {
    const std::size_t n = std::min<std::size_t>(1024, addresses.size() - at);
    const std::span<const Ipv4Address> batch(addresses.data() + at, n);
    const auto hops = runtime.lookup_batch(batch);
    ASSERT_EQ(hops.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hops[i], fib.lookup(batch[i]))
          << "address " << batch[i].to_string();
    }
  }
  const auto m = runtime.metrics();
  EXPECT_EQ(m.lookups_completed, addresses.size());
}

TEST(LookupRuntimeTest, SingleWorkerStillAnswersCorrectly) {
  const auto fib = make_fib(5'000, 303);
  RuntimeConfig config;
  config.worker_count = 1;
  config.fifo_depth = 32;
  LookupRuntime runtime(fib, config);

  const auto addresses = random_addresses(5'000, 404);
  const auto hops = runtime.lookup_batch(addresses);
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    ASSERT_EQ(hops[i], fib.lookup(addresses[i]));
  }
}

TEST(LookupRuntimeTest, SkewedTrafficDivertsAndStaysCorrect) {
  const auto fib = make_fib(20'000, 505);
  RuntimeConfig config;
  config.worker_count = 4;
  config.fifo_depth = 16;  // small FIFOs so the home queue overflows
  LookupRuntime runtime(fib, config);
  ASSERT_FALSE(runtime.boundaries().empty());

  // Every address below the first boundary homes at chip 0: the hot
  // chip saturates and the §III-B rule must divert to peer DReds.
  const std::uint32_t bound = runtime.boundaries().front().value();
  Pcg32 rng(606);
  std::vector<Ipv4Address> addresses;
  addresses.reserve(30'000);
  for (std::size_t i = 0; i < 30'000; ++i) {
    addresses.emplace_back(rng.next_below(bound));
  }
  for (std::size_t at = 0; at < addresses.size(); at += 2048) {
    const std::size_t n = std::min<std::size_t>(2048, addresses.size() - at);
    const std::span<const Ipv4Address> batch(addresses.data() + at, n);
    const auto hops = runtime.lookup_batch(batch);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hops[i], fib.lookup(batch[i]));
    }
  }
  const auto m = runtime.metrics();
  EXPECT_GT(m.diverted, 0u) << "hot chip never overflowed its FIFO";
  EXPECT_GT(m.dred_lookups, 0u);
  // Diverted jobs either hit a DRed or returned home; conservation:
  EXPECT_EQ(m.dred_hits + m.miss_returns, m.dred_lookups);
}

// Satellite requirement: answers match the reference trie across 10k
// interleaved updates. apply() waits for table publication AND DRed
// sync, so between calls the data plane is exactly the control plane.
TEST(LookupRuntimeTest, TenThousandInterleavedUpdatesStayExact) {
  const auto fib = make_fib(10'000, 707);
  RuntimeConfig config;
  config.worker_count = 4;
  LookupRuntime runtime(fib, config);

  clue::workload::UpdateConfig update_config;
  update_config.seed = 808;
  clue::workload::UpdateGenerator updates(fib, update_config);

  Pcg32 rng(909);
  constexpr std::size_t kUpdates = 10'000;
  for (std::size_t u = 0; u < kUpdates; ++u) {
    runtime.apply(updates.next());
    if (u % 8 == 0) {
      std::vector<Ipv4Address> batch;
      batch.reserve(32);
      for (int i = 0; i < 32; ++i) batch.emplace_back(rng.next());
      const auto hops = runtime.lookup_batch(batch);
      const auto& truth = runtime.fib().ground_truth();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(hops[i], truth.lookup(batch[i]))
            << "update " << u << " address " << batch[i].to_string();
      }
    }
  }
  // Final sweep.
  const auto addresses = random_addresses(20'000, 1010);
  const auto hops = runtime.lookup_batch(addresses);
  const auto& truth = runtime.fib().ground_truth();
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(addresses[i]));
  }

  // Epoch accounting: with the data plane quiescent, every retired
  // table version must be reclaimable, and none twice.
  runtime.reclaim();
  const auto m = runtime.metrics();
  EXPECT_GT(m.tables_published, 0u);
  EXPECT_EQ(m.tables_pending, 0u);
  EXPECT_EQ(m.tables_reclaimed, m.tables_published);
}

// The tentpole stress: updates land from a control thread while the
// client hammers lookups. Any answer must match the ground truth of
// *some* update version the data plane could have exposed during the
// batch: [updates_completed() before submit, updates_started() after
// completion].
TEST(LookupRuntimeTest, ConcurrentUpdatesAndLookupsWindowedOracle) {
  const auto fib = make_fib(8'000, 1111);
  RuntimeConfig config;
  config.worker_count = 4;
  LookupRuntime runtime(fib, config);

  constexpr std::size_t kUpdates = 600;
  constexpr std::size_t kPool = 2048;
  const auto pool = random_addresses(kPool, 1212);

  // oracles[v][i]: ground-truth answer for pool[i] after v visible
  // updates (v counts non-absorbed updates, matching the runtime's
  // updates_completed counter).
  std::vector<std::vector<NextHop>> oracles(kUpdates + 1);
  auto snapshot_answers = [&pool](const clue::trie::BinaryTrie& t) {
    std::vector<NextHop> answers;
    answers.reserve(pool.size());
    for (const auto address : pool) answers.push_back(t.lookup(address));
    return answers;
  };
  oracles[0] = snapshot_answers(fib);

  std::atomic<bool> done{false};
  std::thread control([&] {
    clue::workload::UpdateConfig update_config;
    update_config.seed = 1313;
    clue::workload::UpdateGenerator updates(fib, update_config);
    std::uint64_t recorded = 0;
    while (recorded < kUpdates) {
      runtime.apply(updates.next());
      const std::uint64_t completed = runtime.updates_completed();
      // Absorbed updates (empty diff) do not advance the counter; the
      // data plane — and therefore the oracle — is unchanged.
      if (completed > recorded) {
        recorded = completed;
        oracles[recorded] = snapshot_answers(runtime.fib().ground_truth());
      }
    }
    done.store(true, std::memory_order_release);
  });

  struct BatchLog {
    std::uint64_t g0;
    std::uint64_t g1;
    std::vector<std::uint32_t> picks;
    std::vector<NextHop> hops;
  };
  std::vector<BatchLog> log;
  Pcg32 rng(1414);
  while (!done.load(std::memory_order_acquire) && log.size() < 1500) {
    BatchLog entry;
    entry.picks.reserve(256);
    std::vector<Ipv4Address> batch;
    batch.reserve(256);
    for (int i = 0; i < 256; ++i) {
      const std::uint32_t pick = rng.next_below(kPool);
      entry.picks.push_back(pick);
      batch.push_back(pool[pick]);
    }
    entry.g0 = runtime.updates_completed();
    entry.hops = runtime.lookup_batch(batch);
    entry.g1 = runtime.updates_started();
    log.push_back(std::move(entry));
  }
  control.join();

  ASSERT_FALSE(log.empty());
  std::size_t checked = 0;
  for (const auto& entry : log) {
    ASSERT_LE(entry.g1, kUpdates);
    for (std::size_t i = 0; i < entry.picks.size(); ++i) {
      bool matched = false;
      for (std::uint64_t v = entry.g0; v <= entry.g1 && !matched; ++v) {
        matched = oracles[v][entry.picks[i]] == entry.hops[i];
      }
      EXPECT_TRUE(matched)
          << "address " << pool[entry.picks[i]].to_string()
          << " answered outside update window [" << entry.g0 << ", "
          << entry.g1 << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  // Quiesce, then every retired version must be reclaimable.
  runtime.reclaim();
  const auto m = runtime.metrics();
  EXPECT_EQ(m.tables_pending, 0u);
  EXPECT_EQ(m.tables_reclaimed, m.tables_published);
}

// Same windowed oracle, but the updates are all hot announces into chip
// 0's range, so boundary migrations run *while* the oracle batches are
// in flight — every intermediate epoch of the migration protocol must
// answer from some version in the window.
TEST(LookupRuntimeTest, SkewedChurnWindowedOracleAcrossRebalances) {
  const auto fib = make_fib(8'000, 1717);
  RuntimeConfig config;
  config.worker_count = 4;
  LookupRuntime runtime(fib, config);
  ASSERT_FALSE(runtime.boundaries().empty());
  const std::uint32_t bound = runtime.boundaries().front().value();

  constexpr std::size_t kUpdates = 600;
  constexpr std::size_t kPool = 2048;
  // Half the pool hot, so migrated entries are constantly looked up.
  std::vector<Ipv4Address> pool = random_addresses(kPool / 2, 1818);
  {
    Pcg32 rng(1819);
    while (pool.size() < kPool) pool.emplace_back(rng.next_below(bound));
  }

  std::vector<std::vector<NextHop>> oracles(kUpdates + 1);
  auto snapshot_answers = [&pool](const clue::trie::BinaryTrie& t) {
    std::vector<NextHop> answers;
    answers.reserve(pool.size());
    for (const auto address : pool) answers.push_back(t.lookup(address));
    return answers;
  };
  oracles[0] = snapshot_answers(fib);

  std::atomic<bool> done{false};
  std::thread control([&] {
    Pcg32 rng(1919);
    std::uint64_t recorded = 0;
    while (recorded < kUpdates) {
      clue::workload::UpdateMsg msg;
      msg.kind = clue::workload::UpdateKind::kAnnounce;
      msg.prefix = clue::netbase::Prefix(
          Ipv4Address(rng.next_below(bound)), 24);
      msg.next_hop = clue::netbase::make_next_hop(1 + rng.next_below(250));
      runtime.apply(msg);
      const std::uint64_t completed = runtime.updates_completed();
      if (completed > recorded) {
        recorded = completed;
        oracles[recorded] = snapshot_answers(runtime.fib().ground_truth());
      }
    }
    done.store(true, std::memory_order_release);
  });

  struct BatchLog {
    std::uint64_t g0;
    std::uint64_t g1;
    std::vector<std::uint32_t> picks;
    std::vector<NextHop> hops;
  };
  std::vector<BatchLog> log;
  Pcg32 rng(2020);
  while (!done.load(std::memory_order_acquire) && log.size() < 1500) {
    BatchLog entry;
    entry.picks.reserve(256);
    std::vector<Ipv4Address> batch;
    batch.reserve(256);
    for (int i = 0; i < 256; ++i) {
      const std::uint32_t pick = rng.next_below(kPool);
      entry.picks.push_back(pick);
      batch.push_back(pool[pick]);
    }
    entry.g0 = runtime.updates_completed();
    entry.hops = runtime.lookup_batch(batch);
    entry.g1 = runtime.updates_started();
    log.push_back(std::move(entry));
  }
  control.join();

  // The whole point: skew crossed the watermark and entries migrated
  // while lookups were being answered.
  const auto m = runtime.metrics();
  EXPECT_GT(m.rebalance_steps, 0u) << "600 hot announces never rebalanced";
  EXPECT_GT(m.entries_migrated, 0u);

  ASSERT_FALSE(log.empty());
  for (const auto& entry : log) {
    ASSERT_LE(entry.g1, kUpdates);
    for (std::size_t i = 0; i < entry.picks.size(); ++i) {
      bool matched = false;
      for (std::uint64_t v = entry.g0; v <= entry.g1 && !matched; ++v) {
        matched = oracles[v][entry.picks[i]] == entry.hops[i];
      }
      EXPECT_TRUE(matched)
          << "address " << pool[entry.picks[i]].to_string()
          << " answered outside update window [" << entry.g0 << ", "
          << entry.g1 << "]";
    }
  }
}

TEST(LookupRuntimeTest, ClueSystemRuntimeEntryPointAgrees) {
  const auto fib = make_fib(10'000, 1515);
  clue::system::SystemConfig system_config;
  clue::system::ClueSystem system(fib, system_config);
  const auto runtime = system.runtime();
  ASSERT_EQ(runtime->worker_count(), system.tcam_count());

  Pcg32 rng(1616);
  std::vector<Ipv4Address> batch;
  for (int i = 0; i < 4096; ++i) batch.emplace_back(rng.next());
  const auto hops = runtime->lookup_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(hops[i], system.lookup(batch[i]));
  }
}

}  // namespace
