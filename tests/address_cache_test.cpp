#include "engine/address_cache.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"

namespace clue::engine {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;

TEST(AddressCache, RejectsZeroCapacity) {
  EXPECT_THROW(AddressCache(0), std::invalid_argument);
}

TEST(AddressCache, MissOnEmptyThenHitAfterInsert) {
  AddressCache cache(4);
  const Ipv4Address address(0x0A000001);
  EXPECT_FALSE(cache.lookup(address).has_value());
  cache.insert(address, make_next_hop(3));
  const auto hop = cache.lookup(address);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, make_next_hop(3));
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(AddressCache, ExactMatchOnly) {
  AddressCache cache(4);
  cache.insert(Ipv4Address(0x0A000001), make_next_hop(1));
  EXPECT_FALSE(cache.lookup(Ipv4Address(0x0A000002)).has_value());
}

TEST(AddressCache, EvictsLeastRecentlyUsed) {
  AddressCache cache(2);
  cache.insert(Ipv4Address(1), make_next_hop(1));
  cache.insert(Ipv4Address(2), make_next_hop(2));
  cache.lookup(Ipv4Address(1));  // 2 becomes LRU
  cache.insert(Ipv4Address(3), make_next_hop(3));
  EXPECT_TRUE(cache.lookup(Ipv4Address(1)).has_value());
  EXPECT_FALSE(cache.lookup(Ipv4Address(2)).has_value());
  EXPECT_TRUE(cache.lookup(Ipv4Address(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AddressCache, ReinsertUpdatesHopAndRecency) {
  AddressCache cache(2);
  cache.insert(Ipv4Address(1), make_next_hop(1));
  cache.insert(Ipv4Address(2), make_next_hop(2));
  cache.insert(Ipv4Address(1), make_next_hop(9));  // refresh
  cache.insert(Ipv4Address(3), make_next_hop(3));  // evicts 2
  EXPECT_EQ(*cache.lookup(Ipv4Address(1)), make_next_hop(9));
  EXPECT_FALSE(cache.lookup(Ipv4Address(2)).has_value());
}

TEST(AddressCache, CapacityIsNeverExceeded) {
  Pcg32 rng(821);
  AddressCache cache(16);
  for (int i = 0; i < 1'000; ++i) {
    cache.insert(Ipv4Address(rng.next()), make_next_hop(1));
    ASSERT_LE(cache.size(), 16u);
  }
}

TEST(AddressCache, HitRateTracksWorkingSetFit) {
  Pcg32 rng(823);
  AddressCache small(16);
  AddressCache large(1024);
  for (int i = 0; i < 20'000; ++i) {
    const Ipv4Address address(rng.next_below(512));  // working set 512
    for (auto* cache : {&small, &large}) {
      if (!cache->lookup(address)) cache->insert(address, make_next_hop(1));
    }
  }
  EXPECT_LT(small.stats().hit_rate(), 0.2);
  EXPECT_GT(large.stats().hit_rate(), 0.9);
}

}  // namespace
}  // namespace clue::engine
