#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace clue::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.max(), 0.0);
  EXPECT_EQ(summary.stddev(), 0.0);
}

TEST(Summary, TracksMoments) {
  Summary summary;
  for (const double value : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    summary.add(value);
  }
  EXPECT_EQ(summary.count(), 8u);
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  EXPECT_DOUBLE_EQ(summary.min(), 2.0);
  EXPECT_DOUBLE_EQ(summary.max(), 9.0);
  EXPECT_NEAR(summary.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Summary, SingleValue) {
  Summary summary;
  summary.add(42.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 42.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
}

TEST(Histogram, ValidatesArguments) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
  Histogram histogram(0, 10, 5);
  histogram.add(0.5);
  histogram.add(1.5);
  histogram.add(9.5);
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(4), 1u);
  EXPECT_EQ(histogram.total(), 3u);
  EXPECT_DOUBLE_EQ(histogram.bin_low(2), 4.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram histogram(0, 10, 5);
  histogram.add(-100);
  histogram.add(+100);
  EXPECT_EQ(histogram.bin_count(0), 1u);
  EXPECT_EQ(histogram.bin_count(4), 1u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram histogram(0, 100, 100);
  for (int i = 0; i < 100; ++i) histogram.add(i + 0.5);
  EXPECT_NEAR(histogram.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(histogram.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram histogram(0, 100, 100);
  // Empty: every quantile degenerates to the range floor.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 0.0);

  // Single sample: q=0 names its bin's lower edge, q>0 its upper edge.
  histogram.add(42.5);  // bin [42, 43)
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 43.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 43.0);

  // q=0 must find the first *occupied* bin, not bin 0.
  Histogram sparse(0, 100, 100);
  for (int i = 0; i < 10; ++i) sparse.add(90.5);
  EXPECT_DOUBLE_EQ(sparse.quantile(0.0), 90.0);
  EXPECT_DOUBLE_EQ(sparse.quantile(1.0), 91.0);

  // Out-of-range q clamps instead of reading past the bins.
  EXPECT_DOUBLE_EQ(sparse.quantile(-1.0), sparse.quantile(0.0));
  EXPECT_DOUBLE_EQ(sparse.quantile(2.0), sparse.quantile(1.0));
}

TEST(Percentiles, ThrowsOnEmpty) {
  Percentiles percentiles;
  EXPECT_THROW(percentiles.quantile(0.5), std::logic_error);
}

TEST(Percentiles, SingleSampleIsEveryQuantile) {
  Percentiles percentiles;
  percentiles.add(7.5);
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(percentiles.quantile(1.0), 7.5);
}

TEST(Percentiles, MinAndMaxAtTheEnds) {
  Percentiles percentiles;
  for (const double v : {5.0, 1.0, 4.0, 2.0, 3.0}) percentiles.add(v);
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentiles.quantile(1.0), 5.0);
  // Odd count: the median is the middle order statistic exactly.
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.5), 3.0);
}

TEST(Percentiles, InterpolatesBetweenOrderStatistics) {
  // numpy-style linear interpolation: the old round-half-up rank
  // returned 3.0 here — off by half a sample.
  Percentiles percentiles;
  for (const double v : {4.0, 1.0, 3.0, 2.0}) percentiles.add(v);
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.25), 1.75);
  EXPECT_DOUBLE_EQ(percentiles.quantile(1.0 / 3.0), 2.0);
}

TEST(Percentiles, ClampsOutOfRangeQ) {
  Percentiles percentiles;
  percentiles.add(1.0);
  percentiles.add(2.0);
  EXPECT_DOUBLE_EQ(percentiles.quantile(-3.0), 1.0);
  EXPECT_DOUBLE_EQ(percentiles.quantile(42.0), 2.0);
}

TEST(TimeSeries, BucketsMeans) {
  TimeSeries series(3);
  for (const double value : {1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 5.0}) {
    series.add(value);
  }
  const auto means = series.bucket_means();
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  EXPECT_DOUBLE_EQ(means[2], 5.0);  // trailing partial bucket
  EXPECT_EQ(series.overall().count(), 7u);
}

TEST(TimeSeries, RejectsZeroBucket) {
  EXPECT_THROW(TimeSeries(0), std::invalid_argument);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"id", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-identifier", "2"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("long-identifier"), std::string::npos);
  // Header row and rule plus two data rows = 4 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TablePrinter, RejectsRaggedRows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(percent(0.7188), "71.88%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  write_csv(os, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

}  // namespace
}  // namespace clue::stats
