#include "netbase/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace clue::netbase {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123, 5);
  Pcg32 b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32, NextBelowStaysInRange) {
  Pcg32 rng(9);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Pcg32, NextBelowZeroOrOneIsZero) {
  Pcg32 rng(11);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Pcg32, NextBelowIsRoughlyUniform) {
  Pcg32 rng(17);
  constexpr std::uint32_t kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(23);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double draw = rng.next_double();
    ASSERT_GE(draw, 0.0);
    ASSERT_LT(draw, 1.0);
    sum += draw;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (std::size_t i = 0; i < 100; ++i) total += zipf.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SkewZeroIsUniform) {
  const ZipfSampler zipf(50, 0.0);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(zipf.probability(i), 1.0 / 50, 1e-9);
  }
}

TEST(Zipf, RanksAreMonotonicallyLessPopular) {
  const ZipfSampler zipf(1000, 1.0);
  for (std::size_t i = 1; i < 1000; ++i) {
    EXPECT_GE(zipf.probability(i - 1), zipf.probability(i) - 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequencyTracksTheory) {
  const ZipfSampler zipf(64, 1.0);
  Pcg32 rng(31);
  std::vector<int> counts(64, 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{10}}) {
    const double expected = zipf.probability(i) * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.1 + 20);
  }
}

TEST(Zipf, SampleInRange) {
  const ZipfSampler zipf(10, 2.0);
  Pcg32 rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 10u);
}

TEST(Zipf, ProbabilityOutOfRangeThrows) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_THROW(zipf.probability(10), std::out_of_range);
}

}  // namespace
}  // namespace clue::netbase
