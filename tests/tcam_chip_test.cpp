#include "tcam/tcam_chip.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"

namespace clue::tcam {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

Ipv4Address a(const char* text) {
  const auto parsed = Ipv4Address::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(TcamChip, RejectsZeroCapacity) {
  EXPECT_THROW(TcamChip(0), std::invalid_argument);
}

TEST(TcamChip, StartsEmpty) {
  TcamChip chip(16);
  EXPECT_EQ(chip.capacity(), 16u);
  EXPECT_EQ(chip.occupied(), 0u);
  EXPECT_FALSE(chip.full());
  EXPECT_FALSE(chip.search(a("1.2.3.4")).hit);
}

TEST(TcamChip, WriteReadInvalidate) {
  TcamChip chip(8);
  chip.write(3, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_EQ(chip.occupied(), 1u);
  ASSERT_TRUE(chip.read(3).has_value());
  EXPECT_EQ(chip.read(3)->prefix, p("10.0.0.0/8"));
  chip.invalidate(3);
  EXPECT_EQ(chip.occupied(), 0u);
  EXPECT_FALSE(chip.read(3).has_value());
}

TEST(TcamChip, SearchFindsMatch) {
  TcamChip chip(8);
  chip.write(5, TcamEntry{p("10.0.0.0/8"), make_next_hop(7)});
  const auto result = chip.search(a("10.1.2.3"));
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.slot, 5u);
  EXPECT_EQ(result.next_hop, make_next_hop(7));
  EXPECT_EQ(result.match_count, 1u);
  EXPECT_FALSE(chip.search(a("11.0.0.0")).hit);
}

TEST(TcamChip, PriorityEncoderPicksLowestSlot) {
  TcamChip chip(8);
  // Overlapping entries: the *slot order*, not prefix length, decides.
  chip.write(2, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.write(6, TcamEntry{p("10.1.0.0/16"), make_next_hop(2)});
  const auto result = chip.search(a("10.1.2.3"));
  EXPECT_EQ(result.match_count, 2u);
  EXPECT_EQ(result.slot, 2u);
  EXPECT_EQ(result.next_hop, make_next_hop(1));  // NOT the longest match!
}

TEST(TcamChip, DuplicatePrefixInOtherSlotThrows) {
  TcamChip chip(8);
  chip.write(1, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_THROW(chip.write(2, TcamEntry{p("10.0.0.0/8"), make_next_hop(2)}),
               std::logic_error);
}

TEST(TcamChip, OverwriteSameSlotReplacesEntry) {
  TcamChip chip(8);
  chip.write(1, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.write(1, TcamEntry{p("11.0.0.0/8"), make_next_hop(2)});
  EXPECT_EQ(chip.occupied(), 1u);
  EXPECT_FALSE(chip.search(a("10.0.0.1")).hit);
  EXPECT_TRUE(chip.search(a("11.0.0.1")).hit);
}

TEST(TcamChip, MoveRelocates) {
  TcamChip chip(8);
  chip.write(0, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.move(0, 7);
  EXPECT_FALSE(chip.read(0).has_value());
  ASSERT_TRUE(chip.read(7).has_value());
  EXPECT_EQ(chip.search(a("10.0.0.1")).slot, 7u);
  EXPECT_EQ(chip.stats().moves, 1u);
}

TEST(TcamChip, MoveGuardsPreconditions) {
  TcamChip chip(8);
  chip.write(0, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.write(1, TcamEntry{p("11.0.0.0/8"), make_next_hop(2)});
  EXPECT_THROW(chip.move(2, 3), std::logic_error);  // empty source
  EXPECT_THROW(chip.move(0, 1), std::logic_error);  // occupied destination
}

TEST(TcamChip, SlotOfTracksLocation) {
  TcamChip chip(8);
  EXPECT_FALSE(chip.slot_of(p("10.0.0.0/8")).has_value());
  chip.write(4, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_EQ(chip.slot_of(p("10.0.0.0/8")), 4u);
  chip.move(4, 2);
  EXPECT_EQ(chip.slot_of(p("10.0.0.0/8")), 2u);
  chip.invalidate(2);
  EXPECT_FALSE(chip.slot_of(p("10.0.0.0/8")).has_value());
}

TEST(TcamChip, StatsCountOperations) {
  TcamChip chip(8);
  chip.write(0, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.search(a("10.0.0.1"));
  chip.search(a("11.0.0.1"));
  chip.invalidate(0);
  const auto& stats = chip.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.searches, 2u);
  EXPECT_EQ(stats.invalidates, 1u);
  EXPECT_EQ(stats.activated_entries, 2u);  // 1 valid entry × 2 searches
  chip.reset_stats();
  EXPECT_EQ(chip.stats().searches, 0u);
}

TEST(TcamChip, EntriesListsAscendingSlots) {
  TcamChip chip(8);
  chip.write(6, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.write(1, TcamEntry{p("11.0.0.0/8"), make_next_hop(2)});
  const auto entries = chip.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 1u);
  EXPECT_EQ(entries[1].first, 6u);
}

// The indexed search must agree with the honest linear scan, always.
TEST(TcamChip, IndexedSearchMatchesLinearScan) {
  Pcg32 rng(73);
  TcamChip chip(256);
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.next_double();
    if (action < 0.5 && !chip.full()) {
      const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                          8 + rng.next_below(18));
      if (!chip.slot_of(prefix)) {
        // Pick a random empty slot.
        std::size_t slot = rng.next_below(256);
        while (chip.read(slot)) slot = (slot + 1) % 256;
        chip.write(slot, TcamEntry{prefix, make_next_hop(1 + rng.next_below(8))});
      }
    } else if (action < 0.7 && chip.occupied() > 0) {
      std::size_t slot = rng.next_below(256);
      while (!chip.read(slot)) slot = (slot + 1) % 256;
      chip.invalidate(slot);
    } else {
      const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
      const auto fast = chip.search(address);
      const auto slow = chip.search_linear(address);
      ASSERT_EQ(fast.hit, slow.hit);
      ASSERT_EQ(fast.match_count, slow.match_count);
      if (fast.hit) {
        ASSERT_EQ(fast.slot, slow.slot);
        ASSERT_EQ(fast.next_hop, slow.next_hop);
      }
    }
  }
}

TEST(TcamChip, RepeatedSearchesCountLikeFreshOnes) {
  // The memoised search path must be invisible in the stats: N searches
  // of the same address cost N search counts and N×occupied activated
  // entries, exactly as if each walked the match index.
  TcamChip chip(8);
  chip.write(0, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  chip.write(1, TcamEntry{p("10.1.0.0/16"), make_next_hop(2)});
  for (int i = 0; i < 10; ++i) {
    const auto result = chip.search(a("10.1.2.3"));
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.slot, 0u);  // priority encoder: lowest slot wins
    EXPECT_EQ(result.next_hop, make_next_hop(1));
    EXPECT_EQ(result.match_count, 2u);
  }
  EXPECT_EQ(chip.stats().searches, 10u);
  EXPECT_EQ(chip.stats().activated_entries, 20u);  // 10 searches × 2 valid
}

TEST(TcamChip, MutationsInvalidateMemoisedSearches) {
  TcamChip chip(8);
  chip.write(3, TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_EQ(chip.search(a("10.1.2.3")).next_hop, make_next_hop(1));

  // write: a higher-priority overlapping entry changes the winner.
  chip.write(1, TcamEntry{p("10.1.0.0/16"), make_next_hop(2)});
  auto result = chip.search(a("10.1.2.3"));
  EXPECT_EQ(result.slot, 1u);
  EXPECT_EQ(result.next_hop, make_next_hop(2));

  // move: same entries, different priority order.
  chip.move(1, 5);
  result = chip.search(a("10.1.2.3"));
  EXPECT_EQ(result.slot, 3u);
  EXPECT_EQ(result.next_hop, make_next_hop(1));

  // invalidate: a remembered hit must become a miss.
  chip.invalidate(3);
  chip.invalidate(5);
  EXPECT_FALSE(chip.search(a("10.1.2.3")).hit);
}

TEST(TcamChip, RepeatedProbesMatchLinearScanUnderChurn) {
  // Replays a small address pool (heavy cache reuse) against random
  // writes/invalidates/moves; every memoised answer must equal the
  // honest O(capacity) scan.
  Pcg32 rng(97);
  TcamChip chip(64);
  std::vector<Ipv4Address> pool;
  for (int i = 0; i < 16; ++i) {
    pool.emplace_back(0x0A000000u | (rng.next() & 0x00FFFF00u));
  }
  for (int step = 0; step < 4000; ++step) {
    const auto dice = rng.next_below(100);
    if (dice < 10 && !chip.full()) {
      const Prefix prefix(pool[rng.next_below(16)], 8 + rng.next_below(18));
      if (!chip.slot_of(prefix)) {
        std::size_t slot = rng.next_below(64);
        while (chip.read(slot)) slot = (slot + 1) % 64;
        chip.write(slot,
                   TcamEntry{prefix, make_next_hop(1 + rng.next_below(8))});
      }
    } else if (dice < 15 && chip.occupied() > 0) {
      std::size_t slot = rng.next_below(64);
      while (!chip.read(slot)) slot = (slot + 1) % 64;
      chip.invalidate(slot);
    } else if (dice < 20 && chip.occupied() > 0 && !chip.full()) {
      std::size_t from = rng.next_below(64);
      while (!chip.read(from)) from = (from + 1) % 64;
      std::size_t to = rng.next_below(64);
      while (chip.read(to)) to = (to + 1) % 64;
      chip.move(from, to);
    } else {
      const Ipv4Address address(pool[rng.next_below(16)].value() +
                                rng.next_below(4));
      const auto fast = chip.search(address);
      const auto slow = chip.search_linear(address);
      ASSERT_EQ(fast.hit, slow.hit) << "step " << step;
      ASSERT_EQ(fast.match_count, slow.match_count) << "step " << step;
      if (fast.hit) {
        ASSERT_EQ(fast.slot, slow.slot) << "step " << step;
        ASSERT_EQ(fast.next_hop, slow.next_hop) << "step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace clue::tcam
