// Parameterised sweep: the ONRTC invariants must hold across the whole
// workload-generator design space, not just the calibrated defaults —
// and the compression ratio must respond to the knobs in the expected
// direction (more spatial locality => smaller tables).
#include <gtest/gtest.h>

#include <tuple>

#include "netbase/rng.hpp"
#include "onrtc/baselines.hpp"
#include "onrtc/compressed_fib.hpp"
#include "onrtc/onrtc.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::onrtc {
namespace {

// (locality, aggregate_share, next_hops, table_size)
using Sweep = std::tuple<double, double, std::uint32_t, std::size_t>;

class OnrtcSweep : public ::testing::TestWithParam<Sweep> {
 protected:
  trie::BinaryTrie fib() const {
    const auto [locality, aggregates, hops, size] = GetParam();
    workload::RibConfig config;
    config.locality = locality;
    config.aggregate_share = aggregates;
    config.next_hops = hops;
    config.table_size = size;
    config.seed = 424242;
    return workload::generate_rib(config);
  }
};

TEST_P(OnrtcSweep, InvariantsHoldEverywhere) {
  const auto ground_truth = fib();
  const auto table = compress(ground_truth);

  // Disjoint and sorted.
  trie::BinaryTrie image;
  for (const auto& route : table) image.insert(route.prefix, route.next_hop);
  EXPECT_TRUE(image.is_disjoint());
  EXPECT_TRUE(std::is_sorted(table.begin(), table.end()));

  // Semantics preserved (sampled).
  netbase::Pcg32 rng(11);
  for (int probe = 0; probe < 2'000; ++probe) {
    const netbase::Ipv4Address address(rng.next());
    ASSERT_EQ(image.lookup(address), ground_truth.lookup(address));
  }

  // Size ordering vs baselines.
  EXPECT_LE(ortc_compress(ground_truth).size(), table.size());
  EXPECT_GE(leaf_push(ground_truth).size(), table.size());

  // Incremental updates stay consistent on this workload too.
  CompressedFib incremental(ground_truth);
  workload::UpdateConfig update_config;
  update_config.seed = 13;
  workload::UpdateGenerator updates(ground_truth, update_config);
  for (int i = 0; i < 200; ++i) {
    const auto msg = updates.next();
    if (msg.kind == workload::UpdateKind::kAnnounce) {
      incremental.announce(msg.prefix, msg.next_hop);
    } else {
      incremental.withdraw(msg.prefix);
    }
  }
  EXPECT_EQ(incremental.compressed().routes(),
            compress(incremental.ground_truth()));
}

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  const auto [locality, aggregates, hops, size] = info.param;
  return "loc" + std::to_string(static_cast<int>(locality * 100)) + "_agg" +
         std::to_string(static_cast<int>(aggregates * 100)) + "_nh" +
         std::to_string(hops) + "_n" + std::to_string(size);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadSpace, OnrtcSweep,
    ::testing::Values(Sweep{0.5, 0.08, 32, 4'000},
                      Sweep{0.875, 0.08, 32, 4'000},
                      Sweep{0.99, 0.08, 32, 4'000},
                      Sweep{0.875, 0.0, 32, 4'000},
                      Sweep{0.875, 0.3, 32, 4'000},
                      Sweep{0.875, 0.08, 2, 4'000},
                      Sweep{0.875, 0.08, 255, 4'000},
                      Sweep{0.875, 0.08, 32, 500},
                      Sweep{0.875, 0.08, 32, 20'000}),
    sweep_name);

TEST(OnrtcSweepDirection, MoreLocalityCompressesBetter) {
  const auto ratio_at = [](double locality) {
    workload::RibConfig config;
    config.locality = locality;
    config.table_size = 20'000;
    config.seed = 434343;
    const auto fib = workload::generate_rib(config);
    return compress_with_stats(fib).stats.ratio();
  };
  const double low = ratio_at(0.5);
  const double mid = ratio_at(0.8);
  const double high = ratio_at(0.98);
  EXPECT_GT(low, mid);
  EXPECT_GT(mid, high);
}

TEST(OnrtcSweepDirection, MoreNextHopsCompressWorse) {
  const auto ratio_at = [](std::uint32_t hops) {
    workload::RibConfig config;
    config.next_hops = hops;
    config.table_size = 20'000;
    config.seed = 444444;
    const auto fib = workload::generate_rib(config);
    return compress_with_stats(fib).stats.ratio();
  };
  EXPECT_LT(ratio_at(2), ratio_at(64));
}

}  // namespace
}  // namespace clue::onrtc
