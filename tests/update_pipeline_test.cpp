#include <gtest/gtest.h>

#include <cmath>

#include "netbase/rng.hpp"
#include "stats/stats.hpp"
#include "update/clpl_pipeline.hpp"
#include "update/clue_pipeline.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::update {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;
using netbase::Prefix;
using workload::UpdateKind;
using workload::UpdateMsg;

trie::BinaryTrie test_fib(std::size_t size, std::uint64_t seed) {
  workload::RibConfig config;
  config.table_size = size;
  config.seed = seed;
  return workload::generate_rib(config);
}

UpdateMsg announce(const char* prefix, std::uint32_t hop) {
  return UpdateMsg{UpdateKind::kAnnounce, *Prefix::parse(prefix),
                   make_next_hop(hop)};
}

UpdateMsg withdraw(const char* prefix) {
  return UpdateMsg{UpdateKind::kWithdraw, *Prefix::parse(prefix),
                   netbase::kNoRoute};
}

// ---------------------------------------------------------------------------
// CluePipeline

TEST(CluePipeline, TcamMirrorsCompressedTableInitially) {
  const auto fib = test_fib(2'000, 31);
  CluePipeline pipeline(fib, PipelineConfig{});
  EXPECT_EQ(pipeline.chip().occupied(), pipeline.fib().size());
}

TEST(CluePipeline, LookupMatchesGroundTruthAfterUpdates) {
  const auto fib = test_fib(2'000, 33);
  CluePipeline pipeline(fib, PipelineConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 35;
  workload::UpdateGenerator updates(fib, update_config);
  Pcg32 rng(37);
  for (int i = 0; i < 1'000; ++i) {
    pipeline.apply(updates.next());
    if (i % 50 == 0) {
      for (int probe = 0; probe < 20; ++probe) {
        const Ipv4Address address(rng.next());
        ASSERT_EQ(pipeline.lookup(address),
                  pipeline.fib().ground_truth().lookup(address))
            << address.to_string();
      }
    }
  }
}

TEST(CluePipeline, Ttf2IsOneTcamOpPerDiffOp) {
  const auto fib = test_fib(2'000, 39);
  CluePipeline pipeline(fib, PipelineConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 41;
  workload::UpdateGenerator updates(fib, update_config);
  for (int i = 0; i < 500; ++i) {
    const auto msg = updates.next();
    const auto before_moves = pipeline.chip().stats().moves;
    const auto sample = pipeline.apply(msg);
    // At most one physical shift per diff op (the CLUE claim); TTF2 is a
    // multiple of 24 ns.
    const double ops = sample.ttf2_ns / CostModel::kTcamOpNs;
    EXPECT_DOUBLE_EQ(ops, std::round(ops));
    (void)before_moves;
  }
}

TEST(CluePipeline, NoopUpdateCostsNoDataPlaneTime) {
  const auto fib = test_fib(500, 43);
  CluePipeline pipeline(fib, PipelineConfig{});
  // Withdrawing a prefix that does not exist leaves the data plane alone.
  const auto sample = pipeline.apply(withdraw("203.0.113.0/24"));
  EXPECT_EQ(sample.ttf2_ns, 0.0);
  EXPECT_EQ(sample.ttf3_ns, 0.0);
  EXPECT_GT(sample.ttf1_ns, 0.0);  // the trie check itself was timed
}

TEST(CluePipeline, InsertCostsNoDredTime) {
  trie::BinaryTrie fib;
  fib.insert(*Prefix::parse("10.0.0.0/8"), make_next_hop(1));
  CluePipeline pipeline(fib, PipelineConfig{});
  const auto sample = pipeline.apply(announce("99.1.0.0/16", 2));
  EXPECT_GT(sample.ttf2_ns, 0.0);
  EXPECT_EQ(sample.ttf3_ns, 0.0);  // inserts never touch the DReds
}

TEST(CluePipeline, DeleteErasesFromWarmDreds) {
  trie::BinaryTrie fib;
  fib.insert(*Prefix::parse("10.0.0.0/8"), make_next_hop(1));
  fib.insert(*Prefix::parse("99.0.0.0/8"), make_next_hop(2));
  CluePipeline pipeline(fib, PipelineConfig{});
  pipeline.warm({Ipv4Address::from_octets(10, 1, 2, 3),
                 Ipv4Address::from_octets(10, 4, 5, 6),
                 Ipv4Address::from_octets(10, 7, 8, 9),
                 Ipv4Address::from_octets(10, 10, 11, 12)});
  // The /8 is now cached in several DReds; withdrawing it must purge it.
  const auto sample = pipeline.apply(withdraw("10.0.0.0/8"));
  EXPECT_GT(sample.ttf3_ns, 0.0);
  for (std::size_t i = 0; i < pipeline.dred_count(); ++i) {
    EXPECT_FALSE(pipeline.dred(i).contains(*Prefix::parse("10.0.0.0/8")));
  }
}

TEST(CluePipeline, WarmRespectsExclusionRule) {
  const auto fib = test_fib(1'000, 45);
  CluePipeline pipeline(fib, PipelineConfig{});
  workload::TrafficConfig traffic_config;
  std::vector<Prefix> prefixes;
  for (const auto& route : pipeline.fib().compressed().routes()) {
    prefixes.push_back(route.prefix);
  }
  workload::TrafficGenerator traffic(prefixes, traffic_config);
  pipeline.warm(traffic.generate(2'000));
  // Round-robin warming: every DRed should hold something, but none is
  // force-fed every fill (size < fills).
  for (std::size_t i = 0; i < pipeline.dred_count(); ++i) {
    EXPECT_GT(pipeline.dred(i).size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// ClplPipeline

TEST(ClplPipeline, TcamMirrorsFibInitially) {
  const auto fib = test_fib(2'000, 47);
  ClplPipeline pipeline(fib, PipelineConfig{});
  EXPECT_EQ(pipeline.chip().occupied(), fib.size());
}

TEST(ClplPipeline, LookupMatchesGroundTruthAfterUpdates) {
  const auto fib = test_fib(1'500, 49);
  ClplPipeline pipeline(fib, PipelineConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 51;
  workload::UpdateGenerator updates(fib, update_config);
  Pcg32 rng(53);
  for (int i = 0; i < 600; ++i) {
    pipeline.apply(updates.next());
    if (i % 50 == 0) {
      for (int probe = 0; probe < 20; ++probe) {
        const Ipv4Address address(rng.next());
        ASSERT_EQ(pipeline.lookup(address), pipeline.fib().lookup(address));
      }
    }
  }
}

TEST(ClplPipeline, InvalidatesOverlappingCacheEntries) {
  trie::BinaryTrie fib;
  fib.insert(*Prefix::parse("10.0.0.0/8"), make_next_hop(1));
  fib.insert(*Prefix::parse("10.1.0.0/16"), make_next_hop(2));
  ClplPipeline pipeline(fib, PipelineConfig{});
  pipeline.warm({Ipv4Address::from_octets(10, 200, 0, 1)});
  // RRC-ME cached some expansion under 10/8 in all caches.
  ASSERT_GT(pipeline.cache(0).size(), 0u);
  const auto cached = pipeline.cache(0).contents().front();
  // An update to an overlapping prefix must invalidate it.
  const auto sample = pipeline.apply(
      UpdateMsg{UpdateKind::kAnnounce, cached, make_next_hop(7)});
  EXPECT_GT(sample.ttf3_ns, 0.0);
  for (std::size_t i = 0; i < pipeline.cache_count(); ++i) {
    EXPECT_FALSE(pipeline.cache(i).contains(cached));
  }
}

TEST(ClplPipeline, CachedFillsAreExpansionsNotMatches) {
  trie::BinaryTrie fib;
  fib.insert(*Prefix::parse("128.0.0.0/1"), make_next_hop(1));
  fib.insert(*Prefix::parse("160.0.0.0/3"), make_next_hop(2));
  ClplPipeline pipeline(fib, PipelineConfig{});
  pipeline.warm({Ipv4Address::from_octets(128, 0, 0, 1)});
  // The match was 128/1 but the cacheable fill is 128/3 (paper Fig. 3).
  EXPECT_TRUE(pipeline.cache(0).contains(*Prefix::parse("128.0.0.0/3")));
  EXPECT_FALSE(pipeline.cache(0).contains(*Prefix::parse("128.0.0.0/1")));
}

// ---------------------------------------------------------------------------
// The comparative claims of Figs. 11-14.

struct TtfAccumulator {
  stats::Summary ttf1, ttf2, ttf3, total;

  void add(const TtfSample& sample) {
    ttf1.add(sample.ttf1_ns);
    ttf2.add(sample.ttf2_ns);
    ttf3.add(sample.ttf3_ns);
    total.add(sample.total_ns());
  }
};

TEST(TtfComparison, ClueDataPlaneUpdateIsFractionOfClpl) {
  const auto fib = test_fib(6'000, 55);
  CluePipeline clue(fib, PipelineConfig{});
  ClplPipeline clpl(fib, PipelineConfig{});

  // Warm both caches with the same traffic.
  std::vector<Prefix> prefixes;
  fib.for_each_route(
      [&prefixes](const netbase::Route& route) { prefixes.push_back(route.prefix); });
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  const auto warm_traffic = traffic.generate(4'000);
  clue.warm(warm_traffic);
  clpl.warm(warm_traffic);

  workload::UpdateConfig update_config;
  update_config.seed = 57;
  workload::UpdateGenerator clue_updates(fib, update_config);
  workload::UpdateGenerator clpl_updates(fib, update_config);

  TtfAccumulator clue_acc, clpl_acc;
  for (int i = 0; i < 2'000; ++i) {
    clue_acc.add(clue.apply(clue_updates.next()));
    clpl_acc.add(clpl.apply(clpl_updates.next()));
  }
  // Figure 11: TTF2-CLPL ≈ 15 ops, TTF2-CLUE ≈ 1 op.
  EXPECT_GT(clpl_acc.ttf2.mean(), 3.5 * clue_acc.ttf2.mean());
  // Figure 12: TTF3-CLPL several times TTF3-CLUE.
  EXPECT_GT(clpl_acc.ttf3.mean(), 2.0 * clue_acc.ttf3.mean());
  // Figure 13: TTF2+TTF3 of CLUE is a small fraction of CLPL's.
  const double ratio = (clue_acc.ttf2.mean() + clue_acc.ttf3.mean()) /
                       (clpl_acc.ttf2.mean() + clpl_acc.ttf3.mean());
  EXPECT_LT(ratio, 0.30);
}

TEST(TtfComparison, SameUpdatesSameForwardingBehaviour) {
  const auto fib = test_fib(2'000, 59);
  CluePipeline clue(fib, PipelineConfig{});
  ClplPipeline clpl(fib, PipelineConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 61;
  workload::UpdateGenerator clue_updates(fib, update_config);
  workload::UpdateGenerator clpl_updates(fib, update_config);
  Pcg32 rng(63);
  for (int i = 0; i < 400; ++i) {
    clue.apply(clue_updates.next());
    clpl.apply(clpl_updates.next());
  }
  // Both data planes implement the same (updated) forwarding function.
  for (int probe = 0; probe < 2'000; ++probe) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(clue.lookup(address), clpl.lookup(address))
        << address.to_string();
  }
}

}  // namespace
}  // namespace clue::update
