#include "onrtc/baselines.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "workload/rib_gen.hpp"

namespace clue::onrtc {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::make_next_hop;
using netbase::Pcg32;
using trie::BinaryTrie;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

BinaryTrie random_fib(Pcg32& rng, std::size_t routes) {
  BinaryTrie fib;
  for (std::size_t i = 0; i < routes; ++i) {
    fib.insert(Prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                      8 + rng.next_below(18)),
               make_next_hop(1 + rng.next_below(4)));
  }
  return fib;
}

// LPM over a route list where a kNoRoute-valued entry means "drop".
NextHop image_lookup(const std::vector<Route>& table, Ipv4Address address) {
  const Route* best = nullptr;
  for (const auto& route : table) {
    if (route.prefix.contains(address) &&
        (!best || route.prefix.length() > best->prefix.length())) {
      best = &route;
    }
  }
  return best ? best->next_hop : kNoRoute;
}

// ---------------------------------------------------------------------------
// leaf_push

TEST(LeafPush, EmptyAndSingle) {
  EXPECT_TRUE(leaf_push(BinaryTrie()).empty());
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto table = leaf_push(fib);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].prefix, p("10.0.0.0/8"));
}

TEST(LeafPush, ExpandsCoveredParents) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.0.0/16"), make_next_hop(2));
  const auto table = leaf_push(fib);
  // Parent remainder splits into one sibling per level: 8 pieces + child.
  EXPECT_EQ(table.size(), 9u);
  BinaryTrie image;
  for (const auto& route : table) image.insert(route.prefix, route.next_hop);
  EXPECT_TRUE(image.is_disjoint());
}

TEST(LeafPush, OutputIsDisjointAndEquivalent) {
  Pcg32 rng(211);
  for (int round = 0; round < 8; ++round) {
    const auto fib = random_fib(rng, 80);
    const auto table = leaf_push(fib);
    BinaryTrie image;
    for (const auto& route : table) {
      image.insert(route.prefix, route.next_hop);
    }
    EXPECT_TRUE(image.is_disjoint());
    for (int probe = 0; probe < 500; ++probe) {
      const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
      ASSERT_EQ(image.lookup(address), fib.lookup(address));
    }
  }
}

TEST(LeafPush, NeverSmallerThanOnrtc) {
  Pcg32 rng(223);
  for (int round = 0; round < 10; ++round) {
    const auto fib = random_fib(rng, 120);
    EXPECT_GE(leaf_push(fib).size(), compress(fib).size());
  }
}

// ---------------------------------------------------------------------------
// ORTC

TEST(Ortc, EmptyAndSingle) {
  EXPECT_TRUE(ortc_compress(BinaryTrie()).empty());
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto table = ortc_compress(fib);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0], (Route{p("10.0.0.0/8"), make_next_hop(1)}));
}

TEST(Ortc, RedundantChildDisappears) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.0.0/16"), make_next_hop(1));
  EXPECT_EQ(ortc_compress(fib).size(), 1u);
}

TEST(Ortc, ClassicSiblingPromotion) {
  // Two sibling halves with different hops + no parent: ORTC promotes
  // one hop to a covering route and keeps a single child route —
  // 2 entries stay 2, but add a third level and it wins:
  BinaryTrie fib;
  fib.insert(p("0.0.0.0/2"), make_next_hop(1));
  fib.insert(p("64.0.0.0/2"), make_next_hop(2));
  fib.insert(p("128.0.0.0/2"), make_next_hop(1));
  fib.insert(p("192.0.0.0/2"), make_next_hop(1));
  // {1,2,1,1}: ORTC covers everything with 0/0->1 plus one /2->2.
  const auto table = ortc_compress(fib);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0], (Route{Prefix(), make_next_hop(1)}));
  EXPECT_EQ(table[1], (Route{p("64.0.0.0/2"), make_next_hop(2)}));
}

TEST(Ortc, UnroutedSpaceStaysUnrouted) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.0.0/16"), make_next_hop(2));
  const auto table = ortc_compress(fib);
  EXPECT_EQ(image_lookup(table, *Ipv4Address::parse("11.0.0.1")), kNoRoute);
  EXPECT_EQ(image_lookup(table, *Ipv4Address::parse("10.1.2.3")),
            make_next_hop(2));
  EXPECT_EQ(image_lookup(table, *Ipv4Address::parse("10.2.0.1")),
            make_next_hop(1));
}

TEST(Ortc, SemanticsPreservedOnRandomTables) {
  Pcg32 rng(227);
  for (int round = 0; round < 10; ++round) {
    const auto fib = random_fib(rng, 100);
    const auto table = ortc_compress(fib);
    for (int probe = 0; probe < 800; ++probe) {
      const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
      ASSERT_EQ(image_lookup(table, address), fib.lookup(address))
          << address.to_string();
    }
    // Boundary probes.
    fib.for_each_route([&](const Route& route) {
      for (const auto address :
           {route.prefix.range_low(), route.prefix.range_high()}) {
        ASSERT_EQ(image_lookup(table, address), fib.lookup(address));
      }
    });
  }
}

TEST(Ortc, NeverLargerThanOnrtcOrOriginal) {
  Pcg32 rng(229);
  for (int round = 0; round < 10; ++round) {
    const auto fib = random_fib(rng, 150);
    const auto ortc = ortc_compress(fib);
    EXPECT_LE(ortc.size(), compress(fib).size());
    EXPECT_LE(ortc.size(), fib.size());
  }
}

TEST(Ortc, IdempotentOnOwnOutput) {
  Pcg32 rng(233);
  const auto fib = random_fib(rng, 200);
  const auto once = ortc_compress(fib);
  BinaryTrie image;
  for (const auto& route : once) image.insert(route.prefix, route.next_hop);
  EXPECT_EQ(ortc_compress(image).size(), once.size());
}

TEST(Ortc, OnGeneratedRibBeatsOnrtcWhichBeatsLeafPush) {
  workload::RibConfig config;
  config.table_size = 20'000;
  config.seed = 9;
  const auto fib = workload::generate_rib(config);
  const auto ortc = ortc_compress(fib).size();
  const auto onrtc = compress(fib).size();
  const auto pushed = leaf_push(fib).size();
  EXPECT_LT(ortc, onrtc);
  EXPECT_LT(onrtc, fib.size());
  EXPECT_GT(pushed, onrtc);
}

}  // namespace
}  // namespace clue::onrtc
