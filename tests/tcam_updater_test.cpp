#include "tcam/updater.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "netbase/rng.hpp"
#include "trie/binary_trie.hpp"

namespace clue::tcam {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

// For LPM-correct layouts (naive, shah-gupta) the priority-encoded
// search result must equal true LPM over the stored set. For the CLUE
// updater the stored set is disjoint so any layout is LPM-correct.
void expect_lpm_correct(TcamUpdater& updater, const trie::BinaryTrie& truth,
                        Pcg32& rng, int probes = 200) {
  for (int i = 0; i < probes; ++i) {
    const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
    const auto result = updater.chip().search(address);
    const auto expected = truth.lookup(address);
    ASSERT_EQ(result.hit, expected != netbase::kNoRoute)
        << updater.name() << " " << address.to_string();
    if (result.hit) {
      ASSERT_EQ(result.next_hop, expected)
          << updater.name() << " " << address.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Shared behaviour, parameterised over the three updaters.

enum class Kind { kNaive, kShahGupta, kClue };

std::unique_ptr<TcamUpdater> make_updater(Kind kind, std::size_t capacity) {
  switch (kind) {
    case Kind::kNaive: return std::make_unique<NaiveUpdater>(capacity);
    case Kind::kShahGupta:
      return std::make_unique<ShahGuptaUpdater>(capacity);
    case Kind::kClue: return std::make_unique<ClueUpdater>(capacity);
  }
  return nullptr;
}

class UpdaterSuite : public ::testing::TestWithParam<Kind> {};

TEST_P(UpdaterSuite, InsertThenSearch) {
  auto updater = make_updater(GetParam(), 64);
  updater->insert(TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  const auto result = updater->chip().search(
      *Ipv4Address::parse("10.1.2.3"));
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.next_hop, make_next_hop(1));
  EXPECT_EQ(updater->size(), 1u);
}

TEST_P(UpdaterSuite, InsertExistingRewritesInPlace) {
  auto updater = make_updater(GetParam(), 64);
  updater->insert(TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  const std::size_t ops =
      updater->insert(TcamEntry{p("10.0.0.0/8"), make_next_hop(2)});
  EXPECT_EQ(ops, 1u);
  EXPECT_EQ(updater->size(), 1u);
  EXPECT_EQ(
      updater->chip().search(*Ipv4Address::parse("10.0.0.1")).next_hop,
      make_next_hop(2));
}

TEST_P(UpdaterSuite, EraseMissingCostsNothing) {
  auto updater = make_updater(GetParam(), 64);
  EXPECT_EQ(updater->erase(p("10.0.0.0/8")), 0u);
}

TEST_P(UpdaterSuite, EraseRemoves) {
  auto updater = make_updater(GetParam(), 64);
  updater->insert(TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  updater->insert(TcamEntry{p("11.0.0.0/8"), make_next_hop(2)});
  EXPECT_GT(updater->erase(p("10.0.0.0/8")), 0u);
  EXPECT_EQ(updater->size(), 1u);
  EXPECT_FALSE(
      updater->chip().search(*Ipv4Address::parse("10.0.0.1")).hit);
  EXPECT_TRUE(
      updater->chip().search(*Ipv4Address::parse("11.0.0.1")).hit);
}

TEST_P(UpdaterSuite, FullTcamThrows) {
  auto updater = make_updater(GetParam(), 2);
  updater->insert(TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  updater->insert(TcamEntry{p("11.0.0.0/8"), make_next_hop(2)});
  EXPECT_THROW(
      updater->insert(TcamEntry{p("12.0.0.0/8"), make_next_hop(3)}),
      std::length_error);
}

TEST_P(UpdaterSuite, RandomizedChurnKeepsLpmCorrect) {
  Pcg32 rng(79 + static_cast<int>(GetParam()));
  auto updater = make_updater(GetParam(), 4096);
  trie::BinaryTrie truth;
  const bool disjoint_only = GetParam() == Kind::kClue;
  for (int step = 0; step < 1500; ++step) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        disjoint_only ? 24 : 8 + rng.next_below(18));
    if (rng.chance(0.7)) {
      const auto hop = make_next_hop(1 + rng.next_below(8));
      updater->insert(TcamEntry{prefix, hop});
      truth.insert(prefix, hop);
    } else {
      updater->erase(prefix);
      truth.erase(prefix);
    }
    if (step % 100 == 99) expect_lpm_correct(*updater, truth, rng, 50);
  }
  EXPECT_EQ(updater->size(), truth.size());
}

INSTANTIATE_TEST_SUITE_P(AllUpdaters, UpdaterSuite,
                         ::testing::Values(Kind::kNaive, Kind::kShahGupta,
                                           Kind::kClue),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kNaive: return "Naive";
                             case Kind::kShahGupta: return "ShahGupta";
                             case Kind::kClue: return "Clue";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Cost-shape properties: the whole point of §IV-B.

TEST(NaiveUpdater, LayoutIsLengthSortedAndContiguous) {
  NaiveUpdater updater(64);
  updater.insert(TcamEntry{p("10.0.0.0/8"), make_next_hop(1)});
  updater.insert(TcamEntry{p("10.1.2.0/24"), make_next_hop(2)});
  updater.insert(TcamEntry{p("10.1.0.0/16"), make_next_hop(3)});
  const auto entries = updater.chip().entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].second.prefix.length(), 24u);
  EXPECT_EQ(entries[1].second.prefix.length(), 16u);
  EXPECT_EQ(entries[2].second.prefix.length(), 8u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, i);  // contiguous from slot 0
  }
}

TEST(NaiveUpdater, InsertAtTopShiftsEverything) {
  NaiveUpdater updater(64);
  for (int i = 0; i < 10; ++i) {
    updater.insert(TcamEntry{
        Prefix(Ipv4Address(static_cast<std::uint32_t>(i) << 24), 8),
        make_next_hop(1)});
  }
  // A /24 goes to slot 0: 10 moves + 1 write.
  const std::size_t ops =
      updater.insert(TcamEntry{p("99.1.2.0/24"), make_next_hop(2)});
  EXPECT_EQ(ops, 11u);
}

TEST(ShahGuptaUpdater, CostBoundedByBlockCount) {
  Pcg32 rng(83);
  ShahGuptaUpdater updater(16384);
  for (int i = 0; i < 4000; ++i) {
    const Prefix prefix(Ipv4Address(rng.next()), 8 + rng.next_below(25));
    const std::size_t ops =
        updater.insert(TcamEntry{prefix, make_next_hop(1)});
    // ≤ one move per non-empty shorter block + the final write.
    EXPECT_LE(ops, 33u);
  }
}

TEST(ShahGuptaUpdater, BlocksStayLengthOrdered) {
  Pcg32 rng(89);
  ShahGuptaUpdater updater(8192);
  trie::BinaryTrie truth;
  for (int step = 0; step < 2000; ++step) {
    const Prefix prefix(Ipv4Address(rng.next()), 8 + rng.next_below(25));
    if (rng.chance(0.65)) {
      updater.insert(TcamEntry{prefix, make_next_hop(1)});
      truth.insert(prefix, make_next_hop(1));
    } else {
      updater.erase(prefix);
      truth.erase(prefix);
    }
  }
  const auto entries = updater.chip().entries();
  ASSERT_EQ(entries.size(), truth.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, i);  // contiguous
    if (i > 0) {
      EXPECT_GE(entries[i - 1].second.prefix.length(),
                entries[i].second.prefix.length());
    }
  }
}

TEST(ClueUpdater, InsertIsOneOperation) {
  Pcg32 rng(97);
  ClueUpdater updater(8192);
  for (int i = 0; i < 2000; ++i) {
    const Prefix prefix(Ipv4Address(rng.next()), 24);
    const std::size_t before = updater.size();
    const std::size_t ops =
        updater.insert(TcamEntry{prefix, make_next_hop(1)});
    EXPECT_EQ(ops, 1u);
    if (updater.size() == before + 1) {
      EXPECT_EQ(updater.chip().stats().moves, 0u);
    }
  }
}

TEST(ClueUpdater, EraseIsOneOperation) {
  Pcg32 rng(101);
  ClueUpdater updater(8192);
  std::vector<Prefix> stored;
  for (int i = 0; i < 1000; ++i) {
    const Prefix prefix(Ipv4Address(rng.next()), 24);
    if (!updater.chip().slot_of(prefix)) {
      updater.insert(TcamEntry{prefix, make_next_hop(1)});
      stored.push_back(prefix);
    }
  }
  for (const auto& prefix : stored) {
    EXPECT_EQ(updater.erase(prefix), 1u);
  }
  EXPECT_EQ(updater.size(), 0u);
}

TEST(ClueUpdater, RegionStaysDense) {
  Pcg32 rng(103);
  ClueUpdater updater(4096);
  trie::BinaryTrie truth;
  for (int step = 0; step < 3000; ++step) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFF00)),
                        24);
    if (rng.chance(0.6)) {
      updater.insert(TcamEntry{prefix, make_next_hop(1)});
      truth.insert(prefix, make_next_hop(1));
    } else {
      updater.erase(prefix);
      truth.erase(prefix);
    }
    ASSERT_EQ(updater.size(), truth.size());
  }
  const auto entries = updater.chip().entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    ASSERT_EQ(entries[i].first, i);  // no holes, ever
  }
}

// §IV-B's headline numbers: Shah-Gupta ≈15 ops on a realistic mix,
// CLUE exactly 1.
TEST(UpdaterComparison, ShahGuptaAveragesNearFifteenOpsOnBgpMix) {
  Pcg32 rng(107);
  ShahGuptaUpdater updater(262144);
  // Populate with a realistic length spread first.
  for (int i = 0; i < 30000; ++i) {
    const unsigned length = 8 + rng.next_below(17);  // /8../24
    updater.insert(TcamEntry{
        Prefix(Ipv4Address(rng.next()), length), make_next_hop(1)});
  }
  double total_ops = 0;
  int updates = 0;
  for (int i = 0; i < 3000; ++i) {
    const Prefix prefix(Ipv4Address(rng.next()), 20 + rng.next_below(5));
    total_ops += static_cast<double>(
        updater.insert(TcamEntry{prefix, make_next_hop(2)}));
    ++updates;
  }
  const double mean = total_ops / updates;
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 20.0);
}

}  // namespace
}  // namespace clue::tcam
