#include "workload/rib_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/rib_gen.hpp"

namespace clue::workload {
namespace {

TEST(RibIo, ParsesWellFormedLines) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "10.0.0.0/8 1\n"
      "  192.0.2.0/24\t7 \n"
      "0.0.0.0/0 3\n");
  const auto result = read_rib(in);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.routes.size(), 3u);
  EXPECT_EQ(result.routes[0].prefix.to_string(), "10.0.0.0/8");
  EXPECT_EQ(netbase::to_index(result.routes[1].next_hop), 7u);
  EXPECT_EQ(result.routes[2].prefix.length(), 0u);
}

TEST(RibIo, CollectsErrorsWithLineNumbers) {
  std::istringstream in(
      "10.0.0.0/8 1\n"
      "not-a-prefix 2\n"
      "10.0.0.0/8\n"
      "10.0.0.0/8 zero\n"
      "10.0.0.0/8 0\n"
      "11.0.0.0/8 4\n");
  const auto result = read_rib(in);
  EXPECT_EQ(result.routes.size(), 2u);
  ASSERT_EQ(result.errors.size(), 4u);
  EXPECT_EQ(result.errors[0].line, 2u);
  EXPECT_EQ(result.errors[1].line, 3u);
  EXPECT_EQ(result.errors[1].reason, "missing next-hop field");
  EXPECT_EQ(result.errors[2].line, 4u);
  EXPECT_EQ(result.errors[3].line, 5u);
}

TEST(RibIo, RoundTripsGeneratedTable) {
  RibConfig config;
  config.table_size = 2'000;
  config.seed = 8;
  const auto fib = generate_rib(config);
  std::ostringstream out;
  write_rib(out, fib.routes());
  std::istringstream in(out.str());
  const auto result = read_rib(in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.routes, fib.routes());
}

TEST(RibIo, ReadTrieThrowsOnFirstError) {
  std::istringstream in("10.0.0.0/8 1\nbroken\n");
  EXPECT_THROW(read_rib_trie(in), std::runtime_error);
}

TEST(RibIo, ReadTrieBuildsLookupableTable) {
  std::istringstream in("10.0.0.0/8 1\n10.1.0.0/16 2\n");
  const auto fib = read_rib_trie(in);
  EXPECT_EQ(fib.size(), 2u);
  EXPECT_EQ(fib.lookup(*netbase::Ipv4Address::parse("10.1.2.3")),
            netbase::make_next_hop(2));
}

TEST(RibIo, WindowsLineEndingsAccepted) {
  std::istringstream in("10.0.0.0/8 1\r\n11.0.0.0/8 2\r\n");
  const auto result = read_rib(in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.routes.size(), 2u);
}

TEST(TraceIo, RoundTrips) {
  const std::vector<netbase::Ipv4Address> trace{
      *netbase::Ipv4Address::parse("10.0.0.1"),
      *netbase::Ipv4Address::parse("192.0.2.200"),
      *netbase::Ipv4Address::parse("255.255.255.255"),
  };
  std::ostringstream out;
  write_trace(out, trace);
  std::istringstream in(out.str());
  EXPECT_EQ(read_trace(in), trace);
}

TEST(TraceIo, SkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\n10.0.0.1\n  192.0.2.1 \n");
  const auto trace = read_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].to_string(), "192.0.2.1");
}

TEST(TraceIo, ThrowsWithLineNumberOnGarbage) {
  std::istringstream in("10.0.0.1\nnot-an-address\n");
  try {
    read_trace(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace clue::workload
