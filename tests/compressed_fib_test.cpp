#include "onrtc/compressed_fib.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/rng.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::onrtc {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::make_next_hop;
using netbase::Pcg32;
using trie::BinaryTrie;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

// The load-bearing invariant: after any update sequence, the
// incrementally maintained compressed table must equal a from-scratch
// compression of the current ground truth, byte for byte.
void expect_matches_rebuild(const CompressedFib& fib) {
  const auto incremental = fib.compressed().routes();
  const auto rebuilt = compress(fib.ground_truth());
  ASSERT_EQ(incremental, rebuilt);
}

TEST(CompressedFib, StartsAsFullCompression) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/9"), make_next_hop(1));
  fib.insert(p("10.128.0.0/9"), make_next_hop(1));
  const CompressedFib compressed(fib);
  EXPECT_EQ(compressed.size(), 1u);
  expect_matches_rebuild(compressed);
}

TEST(CompressedFib, AnnounceIntoEmpty) {
  CompressedFib fib;
  const auto ops = fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, FibOpKind::kInsert);
  EXPECT_EQ(ops[0].route, (Route{p("10.0.0.0/8"), make_next_hop(1)}));
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, DuplicateAnnounceIsNoop) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_TRUE(fib.announce(p("10.0.0.0/8"), make_next_hop(1)).empty());
}

TEST(CompressedFib, WithdrawUnknownIsNoop) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_TRUE(fib.withdraw(p("11.0.0.0/8")).empty());
  EXPECT_TRUE(fib.withdraw(p("10.0.0.0/16")).empty());
}

TEST(CompressedFib, NextHopChangeEmitsModify) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  const auto ops = fib.announce(p("10.0.0.0/8"), make_next_hop(2));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, FibOpKind::kModify);
  EXPECT_EQ(ops[0].route.next_hop, make_next_hop(2));
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, SiblingAnnounceTriggersUpwardMerge) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/9"), make_next_hop(1));
  expect_matches_rebuild(fib);
  const auto ops = fib.announce(p("10.128.0.0/9"), make_next_hop(1));
  // /9 + /9 with the same hop collapse into one /8.
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.compressed().routes()[0].prefix, p("10.0.0.0/8"));
  expect_matches_rebuild(fib);
  // The diff must say: delete the old /9, insert the /8.
  EXPECT_EQ(ops.size(), 2u);
}

TEST(CompressedFib, WithdrawSplitsMergedRegion) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/9"), make_next_hop(1));
  fib.insert(p("10.128.0.0/9"), make_next_hop(1));
  CompressedFib compressed(fib);
  ASSERT_EQ(compressed.size(), 1u);
  compressed.withdraw(p("10.128.0.0/9"));
  EXPECT_EQ(compressed.size(), 1u);
  EXPECT_EQ(compressed.compressed().routes()[0].prefix, p("10.0.0.0/9"));
  expect_matches_rebuild(compressed);
}

TEST(CompressedFib, ChildInsertUnderCoveringRegionSplitsIt) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("10.0.1.0/24"), make_next_hop(2));
  expect_matches_rebuild(fib);
  EXPECT_EQ(fib.lookup(Ipv4Address::from_octets(10, 0, 1, 5)),
            make_next_hop(2));
  EXPECT_EQ(fib.lookup(Ipv4Address::from_octets(10, 200, 0, 1)),
            make_next_hop(1));
}

TEST(CompressedFib, ChildWithdrawRestoresCoveringRegion) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("10.0.1.0/24"), make_next_hop(2));
  const auto before = fib.size();
  EXPECT_GT(before, 1u);
  fib.withdraw(p("10.0.1.0/24"));
  EXPECT_EQ(fib.size(), 1u);
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, SameHopChildIsAbsorbedSilently) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  const auto ops = fib.announce(p("10.0.1.0/24"), make_next_hop(1));
  // The forwarding function did not change; no TCAM churn allowed.
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(fib.size(), 1u);
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, WithdrawEverything) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(p("11.0.0.0/8"), make_next_hop(2));
  fib.withdraw(p("10.0.0.0/8"));
  fib.withdraw(p("11.0.0.0/8"));
  EXPECT_EQ(fib.size(), 0u);
  EXPECT_EQ(fib.lookup(Ipv4Address::from_octets(10, 0, 0, 1)), kNoRoute);
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, DefaultRouteAnnounceAndWithdraw) {
  CompressedFib fib;
  fib.announce(p("10.0.0.0/8"), make_next_hop(1));
  fib.announce(Prefix(), make_next_hop(9));
  expect_matches_rebuild(fib);
  fib.withdraw(Prefix());
  expect_matches_rebuild(fib);
  EXPECT_EQ(fib.lookup(Ipv4Address::from_octets(99, 0, 0, 1)), kNoRoute);
}

TEST(CompressedFib, OpsReplayReproducesNewTable) {
  Pcg32 rng(41);
  CompressedFib fib;
  // Replay target: apply returned ops to a mirror and compare.
  trie::BinaryTrie mirror;
  for (int step = 0; step < 600; ++step) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        8 + rng.next_below(18));
    std::vector<FibOp> ops;
    if (rng.chance(0.7)) {
      ops = fib.announce(prefix, make_next_hop(1 + rng.next_below(4)));
    } else {
      ops = fib.withdraw(prefix);
    }
    for (const auto& op : ops) {
      switch (op.kind) {
        case FibOpKind::kInsert:
        case FibOpKind::kModify:
          mirror.insert(op.route.prefix, op.route.next_hop);
          break;
        case FibOpKind::kDelete:
          ASSERT_TRUE(mirror.erase(op.route.prefix))
              << op.route.prefix.to_string();
          break;
      }
    }
    if (step % 100 == 99) {
      ASSERT_EQ(mirror.routes(), fib.compressed().routes());
    }
  }
  ASSERT_EQ(mirror.routes(), fib.compressed().routes());
}

TEST(CompressedFib, RandomizedIncrementalEqualsRebuild) {
  Pcg32 rng(43);
  CompressedFib fib;
  for (int step = 0; step < 800; ++step) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        8 + rng.next_below(20));
    if (rng.chance(0.65)) {
      fib.announce(prefix, make_next_hop(1 + rng.next_below(3)));
    } else {
      fib.withdraw(prefix);
    }
    if (step % 40 == 39) expect_matches_rebuild(fib);
  }
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, LookupAlwaysMatchesGroundTruth) {
  Pcg32 rng(47);
  CompressedFib fib;
  for (int step = 0; step < 500; ++step) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        8 + rng.next_below(22));
    if (rng.chance(0.7)) {
      fib.announce(prefix, make_next_hop(1 + rng.next_below(5)));
    } else {
      fib.withdraw(prefix);
    }
    for (int probe = 0; probe < 5; ++probe) {
      const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
      ASSERT_EQ(fib.lookup(address), fib.ground_truth().lookup(address));
    }
  }
}

TEST(CompressedFib, RealisticUpdateStreamKeepsInvariant) {
  workload::RibConfig rib_config;
  rib_config.table_size = 4'000;
  rib_config.seed = 3;
  const auto base = workload::generate_rib(rib_config);
  CompressedFib fib(base);
  expect_matches_rebuild(fib);

  workload::UpdateConfig update_config;
  update_config.seed = 4;
  workload::UpdateGenerator updates(base, update_config);
  for (int i = 0; i < 2'000; ++i) {
    const auto msg = updates.next();
    if (msg.kind == workload::UpdateKind::kAnnounce) {
      fib.announce(msg.prefix, msg.next_hop);
    } else {
      fib.withdraw(msg.prefix);
    }
    if (i % 250 == 249) expect_matches_rebuild(fib);
  }
  expect_matches_rebuild(fib);
}

TEST(CompressedFib, CompressedTableIsAlwaysDisjoint) {
  Pcg32 rng(53);
  CompressedFib fib;
  for (int step = 0; step < 400; ++step) {
    const Prefix prefix(Ipv4Address(rng.next()), 4 + rng.next_below(26));
    if (rng.chance(0.7)) {
      fib.announce(prefix, make_next_hop(1 + rng.next_below(3)));
    } else {
      fib.withdraw(prefix);
    }
    ASSERT_TRUE(fib.compressed().is_disjoint()) << "step " << step;
  }
}

}  // namespace
}  // namespace clue::onrtc
