// Behavioural invariants of the parallel engine that the paper's
// figures rest on: load balancing evens out skewed offered load
// (Fig. 15), the speedup law holds for CLPL mode too, and DRed contents
// stay within their capacity discipline under churn.
#include <gtest/gtest.h>

#include "engine/parallel_engine.hpp"
#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace clue::engine {
namespace {

using netbase::Prefix;

struct Fixture {
  trie::BinaryTrie fib;
  std::vector<netbase::Route> table;
  EngineSetup setup;

  explicit Fixture(std::uint64_t seed, std::size_t routes = 3'000,
                   std::size_t tcams = 4) {
    workload::RibConfig config;
    config.table_size = routes;
    config.seed = seed;
    fib = workload::generate_rib(config);
    table = onrtc::compress(fib);
    const auto partitions = partition::even_partition(table, tcams);
    setup.tcam_routes.resize(tcams);
    for (std::size_t i = 0; i < tcams; ++i) {
      setup.tcam_routes[i] = partitions.buckets[i].routes;
    }
    setup.bucket_boundaries =
        partition::even_partition_boundaries(table, tcams);
    for (std::size_t i = 0; i < tcams; ++i) setup.bucket_to_tcam.push_back(i);
  }

  std::vector<Prefix> prefixes_of(std::size_t chip) const {
    std::vector<Prefix> out;
    for (const auto& route : setup.tcam_routes[chip]) {
      out.push_back(route.prefix);
    }
    return out;
  }
};

TEST(EngineBehavior, SkewedOfferedLoadProcessesEvenly) {
  // Fig. 15 as an invariant: all traffic homed at chip 0, yet under
  // saturation every chip ends up doing ~1/4 of the lookups.
  Fixture fixture(601);
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 602;
  traffic_config.zipf_skew = 1.1;
  workload::TrafficGenerator traffic(fixture.prefixes_of(0), traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 120'000);
  std::uint64_t total = 0;
  for (const auto count : metrics.per_tcam_lookups) total += count;
  for (std::size_t chip = 0; chip < 4; ++chip) {
    const double share = static_cast<double>(metrics.per_tcam_lookups[chip]) /
                         static_cast<double>(total);
    EXPECT_NEAR(share, 0.25, 0.02) << "chip " << chip;
  }
}

TEST(EngineBehavior, ClplModeAlsoObeysSpeedupLaw) {
  Fixture fixture(603);
  EngineConfig config;
  config.dred_capacity = 512;
  ParallelEngine engine(EngineMode::kClpl, config, fixture.setup,
                        &fixture.fib);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 604;
  traffic_config.zipf_skew = 1.1;
  workload::TrafficGenerator traffic(fixture.prefixes_of(0), traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 80'000);
  const double h = metrics.dred_hit_rate();
  const double t = metrics.speedup(config.service_clocks);
  EXPECT_GT(metrics.dred_lookups, 1000u);
  EXPECT_GE(t, 3.0 * h + 1.0 - 0.1);
}

TEST(EngineBehavior, LargerDredNeverHurtsHitRate) {
  Fixture fixture(605);
  double previous = -1.0;
  for (const std::size_t size : {32, 128, 512, 2048}) {
    EngineConfig config;
    config.dred_capacity = size;
    ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
    workload::TrafficConfig traffic_config;
    traffic_config.seed = 606;
    traffic_config.zipf_skew = 1.1;
    workload::TrafficGenerator traffic(fixture.prefixes_of(0),
                                       traffic_config);
    const auto metrics =
        engine.run([&traffic] { return traffic.next(); }, 60'000);
    // Monotone non-decreasing (plateaus once the working set fits).
    EXPECT_GE(metrics.dred_hit_rate(), previous - 1e-9) << "size " << size;
    previous = metrics.dred_hit_rate();
  }
}

TEST(EngineBehavior, DredsNeverExceedCapacity) {
  Fixture fixture(607);
  EngineConfig config;
  config.dred_capacity = 64;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 608;
  workload::TrafficGenerator traffic(fixture.prefixes_of(0), traffic_config);
  engine.run([&traffic] { return traffic.next(); }, 40'000);
  for (std::size_t chip = 0; chip < 4; ++chip) {
    EXPECT_LE(engine.dred(chip).size(), 64u);
  }
}

TEST(EngineBehavior, TwoChipsStillBalance) {
  Fixture fixture(609, 2'000, 2);
  EngineConfig config;
  config.tcam_count = 2;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 610;
  traffic_config.zipf_skew = 1.1;
  workload::TrafficGenerator traffic(fixture.prefixes_of(0), traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 60'000);
  const double h = metrics.dred_hit_rate();
  const double t = metrics.speedup(config.service_clocks);
  // N = 2: t = h + 1.
  EXPECT_NEAR(t, h + 1.0, 0.1);
}

TEST(EngineBehavior, UniformTrafficNeedsAlmostNoDiversion) {
  Fixture fixture(611);
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  // Perfectly uniform traffic over all partitions, below saturation is
  // impossible (arrival = capacity), but diversions should stay a small
  // fraction of lookups.
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 612;
  traffic_config.zipf_skew = 0.0;  // uniform popularity
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 60'000);
  EXPECT_LT(static_cast<double>(metrics.dred_lookups) /
                static_cast<double>(metrics.packets_offered),
            0.35);
  EXPECT_GT(metrics.speedup(config.service_clocks), 3.4);
}

}  // namespace
}  // namespace clue::engine
