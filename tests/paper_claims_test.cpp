// The paper's headline claims as automated regressions. Each test names
// the claim it guards; sizes are scaled down so the whole file runs in
// seconds (the full-scale numbers live in bench_output.txt /
// EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "engine/parallel_engine.hpp"
#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "update/clpl_pipeline.hpp"
#include "update/clue_pipeline.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue {
namespace {

using netbase::Prefix;

// "The compressed prefix number is 71% of the original in average."
TEST(PaperClaims, CompressionNearSeventyOnePercent) {
  workload::RibConfig config;
  config.table_size = 100'000;
  config.seed = 101;  // rrc01's seed
  const auto fib = workload::generate_rib(config);
  const auto ratio = onrtc::compress_with_stats(fib).stats.ratio();
  // At 100K (quarter scale) the generator sits slightly below the
  // full-scale calibration point; accept a 60-78% band.
  EXPECT_GT(ratio, 0.60);
  EXPECT_LT(ratio, 0.78);
}

// "TCAM partitions can be split exactly evenly without redundancy."
TEST(PaperClaims, EvenPartitionNoRedundancy) {
  workload::RibConfig config;
  config.table_size = 20'000;
  config.seed = 102;
  const auto table = onrtc::compress(workload::generate_rib(config));
  for (const std::size_t n : {4, 8, 32}) {
    const auto result = partition::even_partition(table, n);
    EXPECT_LE(result.max_bucket() - result.min_bucket(), 1u);
    EXPECT_EQ(result.redundancy, 0u);
  }
}

// "The priority encoder is no longer needed" — at most one match line
// rises on an ONRTC table, in any slot order.
TEST(PaperClaims, NoPriorityEncoderNeeded) {
  workload::RibConfig config;
  config.table_size = 5'000;
  config.seed = 103;
  const auto fib = workload::generate_rib(config);
  trie::BinaryTrie image;
  for (const auto& route : onrtc::compress(fib)) {
    image.insert(route.prefix, route.next_hop);
  }
  netbase::Pcg32 rng(104);
  for (int probe = 0; probe < 5'000; ++probe) {
    const netbase::Ipv4Address address(rng.next());
    std::size_t matches = 0;
    image.for_each_match(address, [&matches](const netbase::Route&) {
      ++matches;
    });
    ASSERT_LE(matches, 1u);
  }
}

// "In the worst case t = (N-1)h + 1" (eq. 5) — measured speedup must sit
// on the line within a small tolerance.
TEST(PaperClaims, SpeedupLawHolds) {
  workload::RibConfig rib_config;
  rib_config.table_size = 20'000;
  rib_config.seed = 105;
  const auto table = onrtc::compress(workload::generate_rib(rib_config));
  const auto partitions = partition::even_partition(table, 4);
  engine::EngineSetup setup;
  setup.tcam_routes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries = partition::even_partition_boundaries(table, 4);
  for (std::size_t i = 0; i < 4; ++i) setup.bucket_to_tcam.push_back(i);

  for (const std::size_t dred : {64, 1024}) {
    engine::EngineConfig config;
    config.dred_capacity = dred;
    engine::ParallelEngine engine(engine::EngineMode::kClue, config, setup);
    workload::TrafficConfig traffic_config;
    traffic_config.seed = 106;
    traffic_config.zipf_skew = 1.1;
    std::vector<Prefix> hot;
    for (const auto& route : setup.tcam_routes[0]) hot.push_back(route.prefix);
    workload::TrafficGenerator traffic(hot, traffic_config);
    const auto metrics =
        engine.run([&traffic] { return traffic.next(); }, 80'000);
    const double h = metrics.dred_hit_rate();
    const double t = metrics.speedup(config.service_clocks);
    EXPECT_NEAR(t, 3.0 * h + 1.0, 0.05) << "dred " << dred;
  }
}

// "DRed i doesn't store TCAM i's prefixes ... 1/4 TCAM space can be
// saved when using four TCAMs" — the exclusion rule, enforced live.
TEST(PaperClaims, DredExclusionRule) {
  workload::RibConfig rib_config;
  rib_config.table_size = 10'000;
  rib_config.seed = 107;
  const auto table = onrtc::compress(workload::generate_rib(rib_config));
  const auto partitions = partition::even_partition(table, 4);
  engine::EngineSetup setup;
  setup.tcam_routes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries = partition::even_partition_boundaries(table, 4);
  for (std::size_t i = 0; i < 4; ++i) setup.bucket_to_tcam.push_back(i);
  engine::EngineConfig config;
  engine::ParallelEngine engine(engine::EngineMode::kClue, config, setup);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 108;
  std::vector<Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, traffic_config);
  engine.run([&traffic] { return traffic.next(); }, 30'000);
  for (std::size_t chip = 0; chip < 4; ++chip) {
    for (const auto& cached : engine.dred(chip).contents()) {
      ASSERT_NE(engine.indexing().tcam_of(cached.range_low()), chip);
    }
  }
}

// "The interactions between control plane and data plane caused by DRed
// update can be totally avoided."
TEST(PaperClaims, NoControlPlaneInteractionsInClueMode) {
  workload::RibConfig rib_config;
  rib_config.table_size = 5'000;
  rib_config.seed = 109;
  const auto table = onrtc::compress(workload::generate_rib(rib_config));
  const auto partitions = partition::even_partition(table, 4);
  engine::EngineSetup setup;
  setup.tcam_routes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries = partition::even_partition_boundaries(table, 4);
  for (std::size_t i = 0; i < 4; ++i) setup.bucket_to_tcam.push_back(i);
  engine::EngineConfig config;
  engine::ParallelEngine engine(engine::EngineMode::kClue, config, setup);
  workload::TrafficConfig traffic_config;
  traffic_config.seed = 110;
  std::vector<Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 20'000);
  EXPECT_EQ(metrics.control_plane_interactions, 0u);
}

// "CLUE needs one shift at most to handle an update message" — per
// TCAM operation, on the order-free layout.
TEST(PaperClaims, OneShiftPerTcamOperation) {
  tcam::ClueUpdater updater(1024);
  netbase::Pcg32 rng(111);
  std::vector<Prefix> stored;
  for (int i = 0; i < 2'000; ++i) {
    const Prefix prefix(netbase::Ipv4Address(rng.next()), 24);
    if (rng.chance(0.6) && updater.size() < 1000) {
      const auto before = updater.chip().stats().moves;
      updater.insert(tcam::TcamEntry{prefix, netbase::make_next_hop(1)});
      EXPECT_LE(updater.chip().stats().moves - before, 1u);
      stored.push_back(prefix);
    } else if (!stored.empty()) {
      const auto victim = stored.back();
      stored.pop_back();
      const auto before = updater.chip().stats().moves;
      updater.erase(victim);
      EXPECT_LE(updater.chip().stats().moves - before, 1u);
    }
  }
}

// "TTF2+TTF3 of CLUE is [a small fraction] of CLPL" — the data-plane
// update advantage, end to end through both pipelines.
TEST(PaperClaims, DataPlaneUpdateAdvantage) {
  workload::RibConfig rib_config;
  rib_config.table_size = 10'000;
  rib_config.seed = 112;
  const auto fib = workload::generate_rib(rib_config);
  update::CluePipeline clue_pipeline(fib, update::PipelineConfig{});
  update::ClplPipeline clpl_pipeline(fib, update::PipelineConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 113;
  workload::UpdateGenerator clue_updates(fib, update_config);
  workload::UpdateGenerator clpl_updates(fib, update_config);
  double clue_dp = 0;
  double clpl_dp = 0;
  for (int i = 0; i < 2'000; ++i) {
    clue_dp += clue_pipeline.apply(clue_updates.next()).data_plane_ns();
    clpl_dp += clpl_pipeline.apply(clpl_updates.next()).data_plane_ns();
  }
  EXPECT_LT(clue_dp, 0.3 * clpl_dp);
}

}  // namespace
}  // namespace clue
