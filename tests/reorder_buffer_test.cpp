#include "engine/reorder_buffer.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"

namespace clue::engine {
namespace {

using netbase::make_next_hop;

TEST(ReorderBuffer, InOrderStreamPassesThrough) {
  ReorderBuffer buffer;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    buffer.accept(seq, make_next_hop(1), seq * 10);
    const auto released = buffer.drain(seq * 10);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].sequence, seq);
    EXPECT_EQ(released[0].released_clock - released[0].completed_clock, 0u);
  }
  EXPECT_EQ(buffer.stats().max_occupancy, 1u);
  EXPECT_DOUBLE_EQ(buffer.stats().mean_hold_clocks(), 0.0);
}

TEST(ReorderBuffer, HoldsUntilGapFills) {
  ReorderBuffer buffer;
  buffer.accept(1, make_next_hop(1), 10);
  buffer.accept(2, make_next_hop(2), 11);
  EXPECT_TRUE(buffer.drain(12).empty());  // 0 missing
  EXPECT_EQ(buffer.occupancy(), 2u);
  buffer.accept(0, make_next_hop(3), 20);
  const auto released = buffer.drain(20);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0].sequence, 0u);
  EXPECT_EQ(released[1].sequence, 1u);
  EXPECT_EQ(released[2].sequence, 2u);
  // Sequence 1 waited from clock 10 to clock 20.
  EXPECT_EQ(released[1].released_clock - released[1].completed_clock, 10u);
}

TEST(ReorderBuffer, RejectsDuplicatesAndStale) {
  ReorderBuffer buffer;
  buffer.accept(0, make_next_hop(1), 1);
  buffer.drain(1);
  EXPECT_THROW(buffer.accept(0, make_next_hop(1), 2), std::logic_error);
  buffer.accept(3, make_next_hop(1), 2);
  EXPECT_THROW(buffer.accept(3, make_next_hop(2), 3), std::logic_error);
}

TEST(ReorderBuffer, FirstSequenceOffset) {
  ReorderBuffer buffer(100);
  buffer.accept(100, make_next_hop(1), 0);
  EXPECT_EQ(buffer.drain(0).size(), 1u);
  EXPECT_EQ(buffer.next_release_sequence(), 101u);
}

TEST(ReorderBuffer, RandomPermutationReleasesInOrder) {
  netbase::Pcg32 rng(303);
  constexpr std::uint64_t kCount = 2'000;
  std::vector<std::uint64_t> order(kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) order[i] = i;
  // Shuffle within independent blocks of 32: displacement (and thus the
  // buffer occupancy) is bounded by the block size.
  for (std::size_t block = 0; block < order.size(); block += 32) {
    const std::size_t end = std::min(order.size(), block + 32);
    for (std::size_t i = end - block; i > 1; --i) {
      const std::size_t j = rng.next_below(static_cast<std::uint32_t>(i));
      std::swap(order[block + i - 1], order[block + j]);
    }
  }
  ReorderBuffer buffer;
  std::uint64_t expected = 0;
  for (std::size_t clock = 0; clock < order.size(); ++clock) {
    buffer.accept(order[clock], make_next_hop(1), clock);
    for (const auto& released : buffer.drain(clock)) {
      ASSERT_EQ(released.sequence, expected++);
    }
  }
  EXPECT_EQ(expected, kCount);
  EXPECT_EQ(buffer.occupancy(), 0u);
  // Bounded skew implies bounded buffer.
  EXPECT_LE(buffer.stats().max_occupancy, 33u);
}

TEST(ReorderBuffer, DrainIntoReusesCapacityAndMatchesDrain) {
  ReorderBuffer buffer;
  std::vector<ReorderBuffer::Released> scratch;
  buffer.accept(2, make_next_hop(3), 0);
  buffer.accept(0, make_next_hop(1), 1);
  buffer.accept(1, make_next_hop(2), 2);

  EXPECT_EQ(buffer.drain_into(5, scratch), 3u);
  ASSERT_EQ(scratch.size(), 3u);
  EXPECT_EQ(scratch[0].sequence, 0u);
  EXPECT_EQ(scratch[1].sequence, 1u);
  EXPECT_EQ(scratch[2].sequence, 2u);
  EXPECT_EQ(scratch[1].next_hop, make_next_hop(2));
  EXPECT_EQ(scratch[2].released_clock, 5u);
  const std::size_t capacity = scratch.capacity();

  // An empty drain clears the scratch without shrinking it.
  EXPECT_EQ(buffer.drain_into(6, scratch), 0u);
  EXPECT_TRUE(scratch.empty());
  EXPECT_EQ(scratch.capacity(), capacity);

  // Stats flow through drain_into exactly as through drain().
  EXPECT_EQ(buffer.stats().released, 3u);
  EXPECT_EQ(buffer.stats().total_hold_clocks, (5u - 0) + (5u - 1) + (5u - 2));
}

TEST(ReorderBuffer, StatsAccumulate) {
  ReorderBuffer buffer;
  buffer.accept(1, make_next_hop(1), 0);
  buffer.accept(0, make_next_hop(1), 4);
  buffer.drain(4);
  EXPECT_EQ(buffer.stats().accepted, 2u);
  EXPECT_EQ(buffer.stats().released, 2u);
  EXPECT_EQ(buffer.stats().max_occupancy, 2u);
  EXPECT_DOUBLE_EQ(buffer.stats().mean_hold_clocks(), 2.0);  // (4-0 + 0)/2
}

}  // namespace
}  // namespace clue::engine
