#include "engine/parallel_engine.hpp"

#include <gtest/gtest.h>

#include "engine/indexing_logic.hpp"
#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace clue::engine {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;
using netbase::Prefix;

// ---------------------------------------------------------------------------
// IndexingLogic

TEST(IndexingLogic, ValidatesArguments) {
  EXPECT_THROW(IndexingLogic({}, {}), std::invalid_argument);
  EXPECT_THROW(IndexingLogic({Ipv4Address(5)}, {0}), std::invalid_argument);
  EXPECT_THROW(IndexingLogic({Ipv4Address(9), Ipv4Address(3)}, {0, 1, 2}),
               std::invalid_argument);
}

TEST(IndexingLogic, SingleBucketTakesAll) {
  const IndexingLogic logic({}, {0});
  EXPECT_EQ(logic.bucket_of(Ipv4Address(0)), 0u);
  EXPECT_EQ(logic.bucket_of(Ipv4Address(~0u)), 0u);
}

TEST(IndexingLogic, BoundariesAreHalfOpen) {
  const IndexingLogic logic({Ipv4Address(100), Ipv4Address(200)}, {0, 1, 2});
  EXPECT_EQ(logic.bucket_of(Ipv4Address(99)), 0u);
  EXPECT_EQ(logic.bucket_of(Ipv4Address(100)), 1u);
  EXPECT_EQ(logic.bucket_of(Ipv4Address(199)), 1u);
  EXPECT_EQ(logic.bucket_of(Ipv4Address(200)), 2u);
}

TEST(IndexingLogic, TcamMappingApplied) {
  const IndexingLogic logic({Ipv4Address(100)}, {3, 1});
  EXPECT_EQ(logic.tcam_of(Ipv4Address(5)), 3u);
  EXPECT_EQ(logic.tcam_of(Ipv4Address(500)), 1u);
}

// ---------------------------------------------------------------------------
// Engine fixtures

struct EngineFixture {
  EngineSetup setup;
  trie::BinaryTrie full;
  std::vector<netbase::Route> table;

  explicit EngineFixture(std::size_t tcams = 4, std::size_t routes = 2000,
                         std::uint64_t seed = 1) {
    workload::RibConfig config;
    config.table_size = routes;
    config.seed = seed;
    full = workload::generate_rib(config);
    table = onrtc::compress(full);
    const auto partitions = partition::even_partition(table, tcams);
    setup.tcam_routes.resize(tcams);
    for (std::size_t i = 0; i < tcams; ++i) {
      setup.tcam_routes[i] = partitions.buckets[i].routes;
    }
    setup.bucket_boundaries = partition::even_partition_boundaries(table, tcams);
    setup.bucket_to_tcam.resize(tcams);
    for (std::size_t i = 0; i < tcams; ++i) setup.bucket_to_tcam[i] = i;
  }
};

TEST(ParallelEngine, ValidatesConfiguration) {
  EngineFixture fixture;
  EngineConfig config;
  config.tcam_count = 1;
  EXPECT_THROW(
      ParallelEngine(EngineMode::kClue, config, fixture.setup),
      std::invalid_argument);
  config.tcam_count = 4;
  EXPECT_THROW(ParallelEngine(EngineMode::kClpl, config, fixture.setup,
                              nullptr),
               std::invalid_argument);
}

TEST(ParallelEngine, CompletesAllPacketsUnderUniformTraffic) {
  EngineFixture fixture;
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  workload::TrafficConfig traffic_config;
  traffic_config.zipf_skew = 0.8;
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 20'000);
  EXPECT_EQ(metrics.packets_offered, 20'000u);
  EXPECT_EQ(metrics.packets_completed + metrics.packets_dropped, 20'000u);
  EXPECT_GT(metrics.packets_completed, 19'000u);
  // 4 TCAMs at 4 clocks each, 1 arrival/clock: speedup near 4.
  EXPECT_GT(metrics.speedup(config.service_clocks), 3.0);
}

TEST(ParallelEngine, SpeedupBoundedByTcamCount) {
  EngineFixture fixture;
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  Pcg32 rng(5);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 10'000);
  EXPECT_LE(metrics.speedup(config.service_clocks),
            static_cast<double>(config.tcam_count) + 1e-9);
}

TEST(ParallelEngine, WorstCaseSpeedupRespectsTheoreticalBound) {
  // All traffic homed at one TCAM: t >= (N-1)h + 1 (paper eq. 5).
  EngineFixture fixture(4, 4000, 3);
  EngineConfig config;
  config.dred_capacity = 512;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);

  // Traffic restricted to TCAM 0's routes.
  std::vector<Prefix> hot;
  for (const auto& route : fixture.setup.tcam_routes[0]) {
    hot.push_back(route.prefix);
  }
  workload::TrafficConfig traffic_config;
  traffic_config.zipf_skew = 1.1;
  workload::TrafficGenerator traffic(hot, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 60'000);
  const double h = metrics.dred_hit_rate();
  const double t = metrics.speedup(config.service_clocks);
  EXPECT_GT(metrics.dred_lookups, 0u);
  EXPECT_GE(t, 3.0 * h + 1.0 - 0.15) << "h=" << h << " t=" << t;
}

TEST(ParallelEngine, ClueModeNeverFillsHomeDred) {
  EngineFixture fixture(4, 1500, 7);
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  engine.run([&traffic] { return traffic.next(); }, 15'000);
  // No DRed may contain a prefix homed at its own TCAM.
  for (std::size_t i = 0; i < 4; ++i) {
    for (const auto& cached : engine.dred(i).contents()) {
      EXPECT_NE(engine.indexing().tcam_of(cached.range_low()), i)
          << "DRed " << i << " caches its own " << cached.to_string();
    }
  }
}

TEST(ParallelEngine, ClplModeFillsAllCachesViaControlPlane) {
  EngineFixture fixture(4, 1500, 9);
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClpl, config, fixture.setup,
                        &fixture.full);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 10'000);
  EXPECT_GT(metrics.control_plane_interactions, 0u);
  EXPECT_GT(metrics.control_plane_sram_accesses,
            metrics.control_plane_interactions);
  // Fills go to all 4 caches: fills = 4 × interactions (when matched).
  EXPECT_EQ(metrics.dred_fills % 4, 0u);
}

TEST(ParallelEngine, ClueModeHasNoControlPlaneInteractions) {
  EngineFixture fixture;
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 10'000);
  EXPECT_EQ(metrics.control_plane_interactions, 0u);
  EXPECT_EQ(metrics.control_plane_sram_accesses, 0u);
}

TEST(ParallelEngine, DrainsCompletely) {
  EngineFixture fixture;
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 1'000);
  EXPECT_EQ(metrics.packets_completed + metrics.packets_dropped,
            metrics.packets_offered);
  // Drain adds a bounded tail beyond the arrival window.
  EXPECT_LT(metrics.clocks, 1'000u + 5'000u);
}

TEST(ParallelEngine, ReorderMetricsTrackDiversions) {
  EngineFixture fixture(4, 3000, 15);
  EngineConfig config;
  config.fifo_depth = 8;  // tiny FIFOs force diversions and reorder
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  std::vector<Prefix> hot;
  for (const auto& route : fixture.setup.tcam_routes[0]) {
    hot.push_back(route.prefix);
  }
  workload::TrafficGenerator traffic(hot, workload::TrafficConfig{});
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 20'000);
  EXPECT_GT(metrics.out_of_order_completions, 0u);
  EXPECT_GT(metrics.max_reorder_distance, 0u);
}

TEST(ParallelEngine, EraseFromDredsSynchronisesUpdates) {
  EngineFixture fixture;
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  engine.run([&traffic] { return traffic.next(); }, 15'000);
  // Find a cached prefix and erase it everywhere.
  Prefix victim;
  bool found = false;
  for (std::size_t i = 0; i < 4 && !found; ++i) {
    const auto contents = engine.dred(i).contents();
    if (!contents.empty()) {
      victim = contents.front();
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_GE(engine.erase_from_dreds(victim), 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(engine.dred(i).contains(victim));
  }
}

TEST(ParallelEngine, PerTcamMetricsAddUp) {
  EngineFixture fixture;
  EngineConfig config;
  ParallelEngine engine(EngineMode::kClue, config, fixture.setup);
  std::vector<Prefix> prefixes;
  for (const auto& route : fixture.table) prefixes.push_back(route.prefix);
  workload::TrafficGenerator traffic(prefixes, workload::TrafficConfig{});
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 8'000);
  std::uint64_t lookups = 0;
  std::uint64_t home = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    lookups += metrics.per_tcam_lookups[i];
    home += metrics.per_tcam_home[i];
  }
  EXPECT_EQ(lookups, home + metrics.dred_lookups);
  EXPECT_EQ(metrics.packets_completed, home + metrics.dred_hits);
}

}  // namespace
}  // namespace clue::engine
