// LookupRuntime observability and shutdown-safety tests:
//  - stop() unblocks a lookup_batch in flight on another thread (the
//    backpressure-spin regression), counted in batches_aborted;
//  - after churn quiesces, no DRed holds a stale route (the mid-fill
//    publish race) and every store's structural invariants hold;
//  - export_metrics() carries counters, per-worker service histograms,
//    the client latency histogram, and the TTF trace.
#include "runtime/lookup_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/dred.hpp"
#include "netbase/rng.hpp"
#include "obs/metrics_registry.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using clue::netbase::Ipv4Address;
using clue::netbase::Pcg32;
using clue::runtime::LookupRuntime;
using clue::runtime::RuntimeConfig;

clue::trie::BinaryTrie make_fib(std::size_t routes, std::uint64_t seed) {
  clue::workload::RibConfig config;
  config.table_size = routes;
  config.seed = seed;
  return clue::workload::generate_rib(config);
}

std::vector<Ipv4Address> random_addresses(std::size_t count,
                                          std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.emplace_back(rng.next());
  return out;
}

TEST(LookupRuntimeTest, StopUnblocksBatchInFlight) {
  const auto fib = make_fib(10'000, 7001);
  RuntimeConfig config;
  config.worker_count = 1;
  config.fifo_depth = 32;
  LookupRuntime runtime(fib, config);

  // A batch big enough that it is certainly still in flight when stop()
  // lands. Before the stop-aware spin bound, this join never returned:
  // the client spun on full rings whose consumer had exited.
  const auto addresses = random_addresses(2'000'000, 7002);
  std::vector<clue::netbase::NextHop> hops;
  std::thread client([&] { hops = runtime.lookup_batch(addresses); });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  runtime.stop();
  client.join();

  // Every address got a slot; the unanswered tail is kNoRoute.
  ASSERT_EQ(hops.size(), addresses.size());
  const auto metrics = runtime.metrics();
  EXPECT_GE(metrics.batches_aborted, 1u);

  // After stop(), further batches return immediately instead of hanging.
  const auto after = runtime.lookup_batch(random_addresses(64, 7003));
  EXPECT_EQ(after.size(), 64u);
  EXPECT_TRUE(runtime.stopped());
}

TEST(LookupRuntimeTest, StopIsIdempotentAndDestructorSafe) {
  const auto fib = make_fib(2'000, 7101);
  RuntimeConfig config;
  config.worker_count = 2;
  LookupRuntime runtime(fib, config);
  runtime.lookup_batch(random_addresses(1'000, 7102));
  runtime.stop();
  runtime.stop();  // second call is a no-op
  EXPECT_TRUE(runtime.stopped());
}

TEST(LookupRuntimeTest, NoStaleDredRouteAfterChurnQuiesces) {
  const auto fib = make_fib(20'000, 7201);
  RuntimeConfig config;
  config.worker_count = 4;
  config.fifo_depth = 16;      // force diversions -> DRed traffic
  config.dred_capacity = 256;  // force evictions too
  config.fill_depth = 32;      // keep fill rings small
  LookupRuntime runtime(fib, config);

  // Churn thread: a steady update stream racing the lookups below, so
  // fills produced against version v regularly arrive after the home
  // chip published v+1.
  std::atomic<bool> done{false};
  std::thread control([&] {
    clue::workload::UpdateConfig update_config;
    update_config.seed = 7202;
    clue::workload::UpdateGenerator updates(fib, update_config);
    for (int i = 0; i < 4'000; ++i) runtime.apply(updates.next());
    done.store(true, std::memory_order_release);
  });

  Pcg32 rng(7203);
  while (!done.load(std::memory_order_acquire)) {
    std::vector<Ipv4Address> batch;
    for (int i = 0; i < 4096; ++i) batch.emplace_back(rng.next());
    runtime.lookup_batch(batch);
  }
  control.join();

  // Quiesced: updates are fully applied (apply() waits for DRed acks).
  // One more sweep must agree exactly with the final control plane.
  const auto& truth = runtime.fib().ground_truth();
  const auto sweep = random_addresses(20'000, 7204);
  const auto hops = runtime.lookup_batch(sweep);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(sweep[i]))
        << "address " << sweep[i].to_string();
  }

  const auto metrics = runtime.metrics();
  EXPECT_GT(metrics.diverted, 0u) << "test never exercised the DRed path";
  EXPECT_GT(metrics.fills_sent, 0u);

  // Workers joined: their DReds are now safe to inspect directly. Every
  // cached route must carry the *current* next hop — a stale fill that
  // slipped past the version check would sit here with an old hop.
  runtime.stop();
  for (std::size_t w = 0; w < runtime.worker_count(); ++w) {
    // dred() is const; lookup() bumps LRU/stats, harmless post-stop.
    auto* dred = const_cast<clue::engine::DredStore*>(runtime.dred(w));
    ASSERT_NE(dred, nullptr);
    EXPECT_TRUE(dred->invariants_ok());
    for (const auto& prefix : dred->contents()) {
      const auto cached = dred->lookup(prefix.range_low());
      ASSERT_TRUE(cached.has_value());
      EXPECT_EQ(*cached, truth.lookup(prefix.range_low()))
          << "stale DRed route for " << prefix.to_string() << " on worker "
          << w;
    }
  }
}

TEST(LookupRuntimeTest, ExportMetricsCarriesAllSections) {
  const auto fib = make_fib(10'000, 7301);
  RuntimeConfig config;
  config.worker_count = 2;
  config.latency_sample_every = 1;  // sample every job
  LookupRuntime runtime(fib, config);

  const auto addresses = random_addresses(8'192, 7302);
  std::vector<double> latency_ns;
  runtime.lookup_batch(addresses, &latency_ns);
  EXPECT_EQ(latency_ns.size(), addresses.size());

  // Apply until at least 20 updates took effect (no-op announcements
  // record no trace).
  clue::workload::UpdateConfig update_config;
  update_config.seed = 7303;
  clue::workload::UpdateGenerator updates(fib, update_config);
  for (int i = 0; i < 1'000 && runtime.updates_completed() < 20; ++i) {
    runtime.apply(updates.next());
  }
  ASSERT_GE(runtime.updates_completed(), 20u);

  clue::obs::MetricsRegistry registry;
  runtime.export_metrics(registry);

  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : registry.counters()) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("runtime.lookups_completed"), addresses.size());
  EXPECT_EQ(counter("runtime.updates_applied"), runtime.updates_completed());

  // Per-worker service histograms: with 1-in-1 sampling, the merged
  // totals equal the jobs processed (>= lookups; misses re-enqueue).
  std::uint64_t sampled = 0;
  bool client_hist_seen = false;
  for (const auto& [name, snap] : registry.histograms()) {
    if (name.find(".service_ns") != std::string::npos) sampled += snap.total;
    if (name == "runtime.client.latency_ns") {
      client_hist_seen = true;
      EXPECT_EQ(snap.total, addresses.size());
      EXPECT_GT(snap.quantile_ns(0.5), 0.0);
    }
  }
  EXPECT_GE(sampled, addresses.size());
  EXPECT_TRUE(client_hist_seen);

  // The TTF trace retains the most recent applies, oldest first, each
  // with non-negative stage spans.
  bool trace_seen = false;
  for (const auto& [name, entries] : registry.ttf_traces()) {
    if (name != "runtime.ttf") continue;
    trace_seen = true;
    ASSERT_FALSE(entries.empty());
    EXPECT_LE(entries.size(), config.ttf_trace_depth);
    EXPECT_EQ(entries.back().seq, runtime.updates_started());
    for (const auto& e : entries) {
      EXPECT_GE(e.ttf1_ns, 0.0);
      EXPECT_GE(e.ttf2_ns, 0.0);
      EXPECT_GE(e.ttf3_ns, 0.0);
      EXPECT_LE(e.chips_touched, runtime.worker_count());
    }
  }
  EXPECT_TRUE(trace_seen);

  // A second export overwrites in place instead of duplicating names.
  runtime.export_metrics(registry);
  EXPECT_EQ(counter("runtime.lookups_completed"), addresses.size());
}

TEST(LookupRuntimeTest, RejectsBadSampleStride) {
  const auto fib = make_fib(1'000, 7401);
  RuntimeConfig config;
  config.latency_sample_every = 48;  // not a power of two
  EXPECT_THROW(LookupRuntime(fib, config), std::invalid_argument);
}

TEST(LookupRuntimeTest, TtfTraceDepthZeroDisablesTracing) {
  const auto fib = make_fib(2'000, 7501);
  RuntimeConfig config;
  config.worker_count = 1;
  config.ttf_trace_depth = 0;
  LookupRuntime runtime(fib, config);
  clue::workload::UpdateConfig update_config;
  update_config.seed = 7502;
  clue::workload::UpdateGenerator updates(fib, update_config);
  for (int i = 0; i < 50; ++i) runtime.apply(updates.next());
  EXPECT_TRUE(runtime.ttf_trace().empty());
  EXPECT_EQ(runtime.metrics().updates_applied, runtime.updates_completed());
  EXPECT_GT(runtime.updates_completed(), 0u);
}

}  // namespace
