#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "stats/stats.hpp"

namespace clue::stats {
namespace {

TEST(Percentiles, ThrowsWhenEmpty) {
  Percentiles percentiles;
  EXPECT_THROW(percentiles.quantile(0.5), std::logic_error);
}

TEST(Percentiles, ExactOnKnownData) {
  Percentiles percentiles;
  for (int i = 100; i >= 1; --i) percentiles.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(percentiles.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentiles.quantile(1.0), 100.0);
  EXPECT_NEAR(percentiles.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(percentiles.quantile(0.99), 99.0, 1.0);
}

TEST(Percentiles, ClampsOutOfRangeQ) {
  Percentiles percentiles;
  percentiles.add(7);
  EXPECT_DOUBLE_EQ(percentiles.quantile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(percentiles.quantile(2.0), 7.0);
}

TEST(Polyfit, RecoversExactLine) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};  // y = 1 + 2x
  const auto c = polyfit(xs, ys, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
}

TEST(Polyfit, RecoversExactCubic) {
  // y = 2 - x + 0.5x^2 + 0.25x^3
  const std::vector<double> reference{2.0, -1.0, 0.5, 0.25};
  std::vector<double> xs, ys;
  for (int i = -4; i <= 5; ++i) {
    xs.push_back(i);
    ys.push_back(polyval(reference, i));
  }
  const auto c = polyfit(xs, ys, 3);
  ASSERT_EQ(c.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(c[i], reference[i], 1e-6);
}

TEST(Polyfit, LeastSquaresOnNoisyData) {
  netbase::Pcg32 rng(41);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.next_double() * 10;
    xs.push_back(x);
    ys.push_back(3.0 + 0.5 * x + (rng.next_double() - 0.5) * 0.01);
  }
  const auto c = polyfit(xs, ys, 1);
  EXPECT_NEAR(c[0], 3.0, 0.01);
  EXPECT_NEAR(c[1], 0.5, 0.01);
}

TEST(Polyfit, RejectsUnderdeterminedAndMismatched) {
  EXPECT_THROW(polyfit({1, 2}, {1, 2}, 2), std::invalid_argument);
  EXPECT_THROW(polyfit({1, 2, 3}, {1, 2}, 1), std::invalid_argument);
}

TEST(Polyfit, RejectsDegenerateXs) {
  EXPECT_THROW(polyfit({2, 2, 2}, {1, 2, 3}, 1), std::invalid_argument);
}

TEST(Polyval, HornerMatchesDirectEvaluation) {
  const std::vector<double> c{1, -2, 3};
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 1 - 4 + 12);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
}

}  // namespace
}  // namespace clue::stats
