#include "rrcme/rrc_me.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"

namespace clue::rrcme {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;
using trie::BinaryTrie;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

Ipv4Address a(const char* text) {
  const auto parsed = Ipv4Address::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(RrcMe, NoRouteReturnsNothing) {
  BinaryTrie fib;
  EXPECT_FALSE(minimal_expansion(fib, a("1.2.3.4")).has_value());
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_FALSE(minimal_expansion(fib, a("11.0.0.0")).has_value());
}

TEST(RrcMe, LeafMatchIsDirectlyCacheable) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto fill = minimal_expansion(fib, a("10.1.2.3"));
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->prefix, p("10.0.0.0/8"));
  EXPECT_EQ(fill->next_hop, make_next_hop(1));
}

TEST(RrcMe, PaperFigure2Shape) {
  // p = 1* (A), q = 101 (B); looking up 100xxx should yield p' = 100*.
  BinaryTrie fib;
  fib.insert(p("128.0.0.0/1"), make_next_hop(1));   // 1*
  fib.insert(p("160.0.0.0/3"), make_next_hop(2));   // 101
  const auto fill = minimal_expansion(fib, a("128.0.0.1"));  // 100...
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->prefix, p("128.0.0.0/3"));  // 100*
  EXPECT_EQ(fill->next_hop, make_next_hop(1));
}

TEST(RrcMe, MoreSpecificRouteWinsAndIsCacheable) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.0.0/16"), make_next_hop(2));
  const auto fill = minimal_expansion(fib, a("10.1.2.3"));
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->prefix, p("10.1.0.0/16"));
  EXPECT_EQ(fill->next_hop, make_next_hop(2));
}

TEST(RrcMe, ExpansionStopsJustPastConflictingSubtrees) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.2.0/24"), make_next_hop(2));
  // 10.0.x.x shares only the /15-level path with 10.1/16's subtree.
  const auto fill = minimal_expansion(fib, a("10.0.9.9"));
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->next_hop, make_next_hop(1));
  // Safe: nothing more specific under the returned prefix…
  EXPECT_TRUE(fill->prefix.contains(a("10.0.9.9")));
  EXPECT_FALSE(fill->prefix.contains(p("10.1.2.0/24")));
  // …and minimal: one bit shorter would cover the conflicting subtree's
  // path (both addresses agree on the first 15 bits).
  EXPECT_EQ(fill->prefix.length(), 16u);
}

TEST(RrcMe, HostRouteExpansionIsExact) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.0.0.1/32"), make_next_hop(2));
  const auto fill = minimal_expansion(fib, a("10.0.0.1"));
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->prefix, p("10.0.0.1/32"));
  EXPECT_EQ(fill->next_hop, make_next_hop(2));
}

TEST(RrcMe, SramAccessesAreCounted) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto fill = minimal_expansion(fib, a("10.1.2.3"));
  ASSERT_TRUE(fill.has_value());
  // Root + 8 path nodes (the /8 is a leaf, walk stops there).
  EXPECT_EQ(fill->sram_accesses, 9u);
}

// Property: a cached fill must answer LPM correctly for EVERY address it
// covers — that is the whole contract of minimal expansion.
TEST(RrcMe, FillIsSafeForAllCoveredAddresses) {
  Pcg32 rng(61);
  for (int round = 0; round < 15; ++round) {
    BinaryTrie fib;
    for (int i = 0; i < 50; ++i) {
      fib.insert(Prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        8 + rng.next_below(18)),
                 make_next_hop(1 + rng.next_below(4)));
    }
    for (int probe = 0; probe < 50; ++probe) {
      const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
      const auto fill = minimal_expansion(fib, address);
      if (!fill) continue;
      ASSERT_TRUE(fill->prefix.contains(address));
      for (int inner = 0; inner < 30; ++inner) {
        const std::uint32_t offset =
            fill->prefix.length() == 32
                ? 0
                : rng.next_below(std::uint32_t{1}
                                 << (32 - fill->prefix.length()));
        const Ipv4Address covered(fill->prefix.bits() | offset);
        ASSERT_EQ(fib.lookup(covered), fill->next_hop)
            << "fill " << fill->prefix.to_string() << " addr "
            << covered.to_string();
      }
      // Boundaries of the fill too.
      ASSERT_EQ(fib.lookup(fill->prefix.range_low()), fill->next_hop);
      ASSERT_EQ(fib.lookup(fill->prefix.range_high()), fill->next_hop);
    }
  }
}

// Property: minimality — one bit shorter must be unsafe (cover an
// address with a different LPM result) unless it would outgrow the match.
TEST(RrcMe, FillIsMinimal) {
  Pcg32 rng(67);
  for (int round = 0; round < 10; ++round) {
    BinaryTrie fib;
    for (int i = 0; i < 60; ++i) {
      fib.insert(Prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        8 + rng.next_below(20)),
                 make_next_hop(1 + rng.next_below(4)));
    }
    for (int probe = 0; probe < 40; ++probe) {
      const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
      const auto fill = minimal_expansion(fib, address);
      if (!fill) continue;
      const auto matched = fib.lookup_route(address);
      ASSERT_TRUE(matched.has_value());
      if (fill->prefix.length() <= matched->prefix.length()) continue;
      // The one-bit-shorter candidate must cover some route node deeper
      // than the match (i.e. the trie has a node there), else the walk
      // would have stopped earlier.
      const Prefix shorter = fill->prefix.parent();
      EXPECT_NE(fib.node_at(shorter), nullptr)
          << shorter.to_string() << " should not have been expandable";
    }
  }
}

// The CLUE observation: on a non-overlapping table RRC-ME always returns
// exactly the matched prefix — the control-plane round trip is vacuous.
TEST(RrcMe, OnDisjointTableFillEqualsMatch) {
  Pcg32 rng(71);
  BinaryTrie fib;
  for (int i = 0; i < 80; ++i) {
    fib.insert(Prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                      8 + rng.next_below(18)),
               make_next_hop(1 + rng.next_below(4)));
  }
  BinaryTrie disjoint;
  for (const auto& route : onrtc::compress(fib)) {
    disjoint.insert(route.prefix, route.next_hop);
  }
  ASSERT_TRUE(disjoint.is_disjoint());
  for (int probe = 0; probe < 300; ++probe) {
    const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
    const auto fill = minimal_expansion(disjoint, address);
    const auto matched = disjoint.lookup_route(address);
    ASSERT_EQ(fill.has_value(), matched.has_value());
    if (fill) {
      EXPECT_EQ(fill->prefix, matched->prefix);
      EXPECT_EQ(fill->next_hop, matched->next_hop);
    }
  }
}

TEST(RrcMe, InvalidationFlagsExactlyOverlappingEntries) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  fib.insert(p("10.1.0.0/16"), make_next_hop(2));
  const std::vector<Prefix> cached = {p("10.1.2.0/24"), p("10.2.0.0/16"),
                                      p("11.0.0.0/8"), p("10.0.0.0/8")};
  const auto result = invalidate_on_update(fib, p("10.1.0.0/16"), cached);
  ASSERT_EQ(result.stale.size(), 2u);
  EXPECT_EQ(result.stale[0], p("10.1.2.0/24"));  // descendant
  EXPECT_EQ(result.stale[1], p("10.0.0.0/8"));   // ancestor
  EXPECT_GT(result.sram_accesses, cached.size());
}

TEST(RrcMe, InvalidationOnEmptyCacheOnlyWalks) {
  BinaryTrie fib;
  fib.insert(p("10.0.0.0/8"), make_next_hop(1));
  const auto result = invalidate_on_update(fib, p("10.1.0.0/16"), {});
  EXPECT_TRUE(result.stale.empty());
  EXPECT_GT(result.sram_accesses, 0u);
}

}  // namespace
}  // namespace clue::rrcme
