#include "engine/dred.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"

namespace clue::engine {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

Ipv4Address a(const char* text) {
  const auto parsed = Ipv4Address::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(DredStore, RejectsZeroCapacity) {
  EXPECT_THROW(DredStore(0), std::invalid_argument);
}

TEST(DredStore, MissOnEmpty) {
  DredStore dred(4);
  EXPECT_FALSE(dred.lookup(a("1.2.3.4")).has_value());
  EXPECT_EQ(dred.stats().lookups, 1u);
  EXPECT_EQ(dred.stats().hits, 0u);
}

TEST(DredStore, InsertThenHit) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  const auto hop = dred.lookup(a("10.1.2.3"));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, make_next_hop(1));
  EXPECT_DOUBLE_EQ(dred.stats().hit_rate(), 1.0);
}

TEST(DredStore, LookupIsLongestMatch) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("10.1.0.0/16"), make_next_hop(2)});
  EXPECT_EQ(dred.lookup(a("10.1.2.3")), make_next_hop(2));
  EXPECT_EQ(dred.lookup(a("10.2.0.1")), make_next_hop(1));
}

TEST(DredStore, EvictsLeastRecentlyUsed) {
  DredStore dred(2);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("11.0.0.0/8"), make_next_hop(2)});
  // Touch 10/8 so 11/8 becomes the LRU victim.
  dred.lookup(a("10.0.0.1"));
  dred.insert(Route{p("12.0.0.0/8"), make_next_hop(3)});
  EXPECT_TRUE(dred.contains(p("10.0.0.0/8")));
  EXPECT_FALSE(dred.contains(p("11.0.0.0/8")));
  EXPECT_TRUE(dred.contains(p("12.0.0.0/8")));
  EXPECT_EQ(dred.stats().evictions, 1u);
}

TEST(DredStore, ReinsertRefreshesRecencyAndHop) {
  DredStore dred(2);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("11.0.0.0/8"), make_next_hop(2)});
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(9)});  // refresh
  dred.insert(Route{p("12.0.0.0/8"), make_next_hop(3)});  // evicts 11/8
  EXPECT_TRUE(dred.contains(p("10.0.0.0/8")));
  EXPECT_FALSE(dred.contains(p("11.0.0.0/8")));
  EXPECT_EQ(dred.lookup(a("10.0.0.1")), make_next_hop(9));
}

TEST(DredStore, EraseRemoves) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_TRUE(dred.erase(p("10.0.0.0/8")));
  EXPECT_FALSE(dred.erase(p("10.0.0.0/8")));
  EXPECT_FALSE(dred.lookup(a("10.0.0.1")).has_value());
  EXPECT_EQ(dred.size(), 0u);
}

TEST(DredStore, SizeNeverExceedsCapacity) {
  Pcg32 rng(37);
  DredStore dred(16);
  for (int i = 0; i < 500; ++i) {
    dred.insert(Route{Prefix(Ipv4Address(rng.next()), 24),
                      make_next_hop(1 + rng.next_below(4))});
    ASSERT_LE(dred.size(), 16u);
  }
  EXPECT_EQ(dred.size(), 16u);
}

TEST(DredStore, ContentsAreMruFirst) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("11.0.0.0/8"), make_next_hop(2)});
  dred.lookup(a("10.0.0.1"));  // 10/8 becomes MRU
  const auto contents = dred.contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], p("10.0.0.0/8"));
  EXPECT_EQ(contents[1], p("11.0.0.0/8"));
}

TEST(DredStore, OverlappingFindsAncestorsAndDescendants) {
  DredStore dred(8);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("10.1.0.0/16"), make_next_hop(2)});
  dred.insert(Route{p("10.1.2.0/24"), make_next_hop(3)});
  dred.insert(Route{p("11.0.0.0/8"), make_next_hop(4)});
  const auto overlapping = dred.overlapping(p("10.1.0.0/16"));
  ASSERT_EQ(overlapping.size(), 3u);
  // Ancestors (shortest-first), then descendants.
  EXPECT_EQ(overlapping[0], p("10.0.0.0/8"));
  EXPECT_EQ(overlapping[1], p("10.1.0.0/16"));
  EXPECT_EQ(overlapping[2], p("10.1.2.0/24"));
}

TEST(DredStore, ReinsertCountsAsUpdateNotInsertion) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_EQ(dred.stats().insertions, 1u);
  EXPECT_EQ(dred.stats().updates, 0u);

  // Same prefix, same hop: idempotent — an update, not growth.
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_EQ(dred.size(), 1u);
  EXPECT_EQ(dred.stats().insertions, 1u);
  EXPECT_EQ(dred.stats().updates, 1u);
  EXPECT_TRUE(dred.invariants_ok());

  // Same prefix, new hop: still an update, hop rewritten.
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(2)});
  EXPECT_EQ(dred.size(), 1u);
  EXPECT_EQ(dred.stats().insertions, 1u);
  EXPECT_EQ(dred.stats().updates, 2u);
  EXPECT_EQ(*dred.lookup(a("10.1.2.3")), make_next_hop(2));
  EXPECT_TRUE(dred.invariants_ok());
}

TEST(DredStore, RepeatedReinsertKeepsIndexAndTrieInSync) {
  // The original insert() unconditionally re-inserted into the match
  // trie on the already-cached path; entries_ and match_ could drift.
  DredStore dred(4);
  for (int i = 0; i < 100; ++i) {
    dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1 + (i % 3))});
    ASSERT_TRUE(dred.invariants_ok()) << "iteration " << i;
    ASSERT_EQ(dred.size(), 1u);
  }
  EXPECT_EQ(dred.stats().insertions, 1u);
  EXPECT_EQ(dred.stats().updates, 99u);
}

TEST(DredStore, FixRewritesHopInPlace) {
  DredStore dred(2);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_TRUE(dred.fix(Route{p("10.0.0.0/8"), make_next_hop(9)}));
  EXPECT_EQ(*dred.lookup(a("10.0.0.1")), make_next_hop(9));
  EXPECT_TRUE(dred.invariants_ok());
}

TEST(DredStore, FixDoesNotPromote) {
  DredStore dred(2);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("11.0.0.0/8"), make_next_hop(2)});
  // LRU order now: 11/8 (MRU), 10/8 (LRU). A control-plane fix of 10/8
  // must leave 10/8 the eviction candidate (insert() would promote it).
  EXPECT_TRUE(dred.fix(Route{p("10.0.0.0/8"), make_next_hop(9)}));

  dred.insert(Route{p("12.0.0.0/8"), make_next_hop(3)});  // evicts the LRU
  EXPECT_EQ(dred.stats().evictions, 1u);
  EXPECT_FALSE(dred.contains(p("10.0.0.0/8")))
      << "fix() promoted 10/8 over 11/8";
  EXPECT_TRUE(dred.contains(p("11.0.0.0/8")));
  EXPECT_TRUE(dred.contains(p("12.0.0.0/8")));
  EXPECT_TRUE(dred.invariants_ok());
}

TEST(DredStore, FixOfUncachedPrefixIsRejected) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_FALSE(dred.fix(Route{p("11.0.0.0/8"), make_next_hop(2)}));
  EXPECT_EQ(dred.size(), 1u);
  EXPECT_EQ(dred.stats().insertions, 1u);
  EXPECT_TRUE(dred.invariants_ok());
}

TEST(DredStore, RepeatedLookupsCountLikeTrieLookups) {
  // The address fast path must be invisible in the stats: N identical
  // probes are N lookups and N hits whether they came from the trie or
  // the cache.
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dred.lookup(a("10.1.2.3")), make_next_hop(1));
  }
  EXPECT_EQ(dred.stats().lookups, 10u);
  EXPECT_EQ(dred.stats().hits, 10u);

  // Remembered misses count as lookups but never as hits.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(dred.lookup(a("99.0.0.1")).has_value());
  }
  EXPECT_EQ(dred.stats().lookups, 20u);
  EXPECT_EQ(dred.stats().hits, 10u);
}

TEST(DredStore, CachedHitsStillPromoteInLruOrder) {
  DredStore dred(2);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  dred.insert(Route{p("11.0.0.0/8"), make_next_hop(2)});
  // Two probes of the same address: the second is answered from the
  // address cache but must promote 10/8 exactly like the first did.
  dred.lookup(a("10.0.0.1"));
  dred.lookup(a("11.0.0.1"));
  dred.lookup(a("10.0.0.1"));  // cached — 10/8 back to MRU
  dred.insert(Route{p("12.0.0.0/8"), make_next_hop(3)});
  EXPECT_TRUE(dred.contains(p("10.0.0.0/8")))
      << "cached hit failed to refresh LRU position";
  EXPECT_FALSE(dred.contains(p("11.0.0.0/8")));
}

TEST(DredStore, MutationsInvalidateCachedAnswers) {
  DredStore dred(4);
  dred.insert(Route{p("10.0.0.0/8"), make_next_hop(1)});
  EXPECT_EQ(dred.lookup(a("10.1.2.3")), make_next_hop(1));

  // A longer covering prefix must override the cached /8 answer.
  dred.insert(Route{p("10.1.0.0/16"), make_next_hop(2)});
  EXPECT_EQ(dred.lookup(a("10.1.2.3")), make_next_hop(2));

  // fix() rewrites the hop behind the cached answer.
  EXPECT_TRUE(dred.fix(Route{p("10.1.0.0/16"), make_next_hop(7)}));
  EXPECT_EQ(dred.lookup(a("10.1.2.3")), make_next_hop(7));

  // erase() must flip a remembered hit back to the shorter match...
  EXPECT_TRUE(dred.erase(p("10.1.0.0/16")));
  EXPECT_EQ(dred.lookup(a("10.1.2.3")), make_next_hop(1));
  // ...and a remembered miss must turn into a hit after insert.
  EXPECT_FALSE(dred.lookup(a("99.0.0.1")).has_value());
  dred.insert(Route{p("99.0.0.0/8"), make_next_hop(5)});
  EXPECT_EQ(dred.lookup(a("99.0.0.1")), make_next_hop(5));
}

TEST(DredStore, RandomizedLookupsMatchTrieOracle) {
  // Drive the store through random mutations and probes, checking every
  // answer (cached or not) against a plain trie carrying the same
  // routes. A small address pool forces heavy cache reuse.
  Pcg32 rng(101);
  DredStore dred(32);
  trie::BinaryTrie oracle;
  std::vector<Prefix> pool;
  for (int round = 0; round < 5000; ++round) {
    const auto dice = rng.next_below(100);
    if (dice < 20 || pool.empty()) {
      const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0x3FFF00)),
                          24);
      const Route route{prefix, make_next_hop(1 + rng.next_below(8))};
      dred.insert(route);
      oracle.insert(route.prefix, route.next_hop);
      pool.push_back(prefix);
      // Mirror evictions: the oracle only keeps what the store kept.
      while (oracle.size() > dred.size()) {
        bool erased = false;
        for (auto it = pool.begin(); it != pool.end(); ++it) {
          if (!dred.contains(*it) && oracle.lookup_route(it->range_low())) {
            oracle.erase(*it);
            pool.erase(it);
            erased = true;
            break;
          }
        }
        ASSERT_TRUE(erased);
      }
    } else if (dice < 25) {
      const auto& victim = pool[rng.next_below(pool.size())];
      const bool erased = dred.erase(victim);
      if (erased) oracle.erase(victim);
    } else if (dice < 30) {
      const auto& target = pool[rng.next_below(pool.size())];
      const Route route{target, make_next_hop(1 + rng.next_below(8))};
      if (dred.fix(route)) oracle.insert(route.prefix, route.next_hop);
    } else {
      const auto& base = pool[rng.next_below(pool.size())];
      const Ipv4Address addr(base.range_low().value() + rng.next_below(512));
      const auto got = dred.lookup(addr);
      const auto want = oracle.lookup_route(addr);
      ASSERT_EQ(got.has_value(), want.has_value()) << "round " << round;
      if (want) {
        ASSERT_EQ(*got, want->next_hop) << "round " << round;
      }
    }
    ASSERT_TRUE(dred.invariants_ok());
  }
}

TEST(DredStore, EvictionKeepsMatchIndexConsistent) {
  Pcg32 rng(41);
  DredStore dred(8);
  for (int i = 0; i < 2000; ++i) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFF00)),
                        24);
    dred.insert(Route{prefix, make_next_hop(1)});
    // Every cached prefix must be findable; every evicted one must not.
    for (const auto& cached : dred.contents()) {
      ASSERT_TRUE(dred.contains(cached));
      const auto hop = dred.lookup(cached.range_low());
      ASSERT_TRUE(hop.has_value());
    }
  }
}

}  // namespace
}  // namespace clue::engine
