#include "netbase/ipv4.hpp"

#include <gtest/gtest.h>

namespace clue::netbase {
namespace {

TEST(Ipv4Address, DefaultIsZero) {
  EXPECT_EQ(Ipv4Address().value(), 0u);
}

TEST(Ipv4Address, FromOctetsComposesHostOrder) {
  EXPECT_EQ(Ipv4Address::from_octets(192, 0, 2, 1).value(), 0xC0000201u);
  EXPECT_EQ(Ipv4Address::from_octets(255, 255, 255, 255).value(),
            0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Address::from_octets(0, 0, 0, 1).value(), 1u);
}

TEST(Ipv4Address, ParseRoundTrips) {
  for (const char* text :
       {"0.0.0.0", "192.0.2.1", "255.255.255.255", "10.0.0.1", "1.2.3.4"}) {
    const auto address = Ipv4Address::parse(text);
    ASSERT_TRUE(address.has_value()) << text;
    EXPECT_EQ(address->to_string(), text);
  }
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.999", "a.b.c.d",
        "1..2.3", "1.2.3.4 ", " 1.2.3.4", "1.2.3.4x", "-1.2.3.4"}) {
    EXPECT_FALSE(Ipv4Address::parse(text).has_value()) << text;
  }
}

TEST(Ipv4Address, BitIndexesFromMostSignificant) {
  const auto address = Ipv4Address(0x80000001u);
  EXPECT_EQ(address.bit(0), 1u);
  EXPECT_EQ(address.bit(1), 0u);
  EXPECT_EQ(address.bit(31), 1u);
}

TEST(Ipv4Address, OrderingFollowsValue) {
  EXPECT_LT(Ipv4Address(1), Ipv4Address(2));
  EXPECT_EQ(Ipv4Address(7), Ipv4Address(7));
  EXPECT_GT(Ipv4Address::from_octets(128, 0, 0, 0),
            Ipv4Address::from_octets(127, 255, 255, 255));
}

}  // namespace
}  // namespace clue::netbase
