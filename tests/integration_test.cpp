// Full-stack scenario: everything wired together the way a deployment
// would be — generate a FIB, build the ClueSystem, serve traffic via an
// engine snapshot, churn through BGP updates, re-serve traffic from the
// mutated table, and verify the data plane against the control plane at
// every stage. If any module's contract drifts, this is the test that
// notices the seam.
#include <gtest/gtest.h>

#include <sstream>

#include "netbase/rng.hpp"
#include "stats/stats.hpp"
#include "system/clue_system.hpp"
#include "workload/rib_gen.hpp"
#include "workload/rib_io.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue {
namespace {

TEST(Integration, FullLifecycle) {
  // 1. Control plane boots from a serialized RIB (I/O round trip).
  workload::RibConfig rib_config;
  rib_config.table_size = 8'000;
  rib_config.seed = 5001;
  const auto generated = workload::generate_rib(rib_config);
  std::stringstream wire;
  workload::write_rib(wire, generated.routes());
  const auto fib = workload::read_rib_trie(wire);
  ASSERT_EQ(fib.routes(), generated.routes());

  // 2. System boots; chips hold exactly the compressed table.
  system::ClueSystem router(fib, system::SystemConfig{});
  EXPECT_EQ(router.total_tcam_entries(), router.fib().size());
  EXPECT_LT(router.fib().size(), fib.size());  // compression happened

  // 3. Serve a traffic burst through an engine snapshot.
  auto serve = [&router](std::uint64_t seed) {
    const auto setup = router.engine_setup();
    engine::EngineConfig config;
    engine::ParallelEngine engine(engine::EngineMode::kClue, config, setup);
    std::vector<netbase::Prefix> prefixes;
    for (const auto& route : router.fib().compressed().routes()) {
      prefixes.push_back(route.prefix);
    }
    workload::TrafficConfig traffic_config;
    traffic_config.seed = seed;
    workload::TrafficGenerator traffic(prefixes, traffic_config);
    return engine.run([&traffic] { return traffic.next(); }, 40'000);
  };
  const auto before = serve(5002);
  EXPECT_GT(before.speedup(4), 3.0);
  EXPECT_EQ(before.packets_completed + before.packets_dropped,
            before.packets_offered);

  // 4. A BGP churn phase; every update's diff applies cleanly.
  workload::UpdateConfig update_config;
  update_config.seed = 5003;
  workload::UpdateGenerator updates(fib, update_config);
  stats::Summary data_plane_ns;
  for (int i = 0; i < 4'000; ++i) {
    data_plane_ns.add(router.apply(updates.next()).data_plane_ns());
  }
  // CLUE's promise: tens of nanoseconds of TCAM time per update.
  EXPECT_LT(data_plane_ns.mean(), 150.0);

  // 5. The mutated table still serves at full speed.
  const auto after = serve(5004);
  EXPECT_GT(after.speedup(4), 3.0);

  // 6. Data plane == control plane, everywhere we can afford to look.
  netbase::Pcg32 rng(5005);
  for (int probe = 0; probe < 10'000; ++probe) {
    const netbase::Ipv4Address address(rng.next());
    ASSERT_EQ(router.lookup(address),
              router.fib().ground_truth().lookup(address))
        << address.to_string();
  }
  // …including the compressed invariant one last time.
  EXPECT_EQ(router.fib().compressed().routes(),
            onrtc::compress(router.fib().ground_truth()));
}

}  // namespace
}  // namespace clue
