#include "netbase/prefix.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "netbase/rng.hpp"

namespace clue::netbase {
namespace {

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(Prefix, MasksHostBitsOnConstruction) {
  const Prefix prefix(Ipv4Address::from_octets(192, 0, 2, 255), 24);
  EXPECT_EQ(prefix.to_string(), "192.0.2.0/24");
}

TEST(Prefix, ParseHandlesBareAddressAsHostRoute) {
  EXPECT_EQ(p("10.1.2.3").length(), 32u);
  EXPECT_EQ(p("10.1.2.3").to_string(), "10.1.2.3/32");
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/2x").has_value());
}

TEST(Prefix, DefaultPrefixCoversEverything) {
  const Prefix all;
  EXPECT_EQ(all.length(), 0u);
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(all.contains(Ipv4Address(0)));
  EXPECT_TRUE(all.contains(Ipv4Address(~std::uint32_t{0})));
}

TEST(Prefix, ContainsAddress) {
  const auto prefix = p("10.0.0.0/8");
  EXPECT_TRUE(prefix.contains(Ipv4Address::from_octets(10, 255, 0, 1)));
  EXPECT_FALSE(prefix.contains(Ipv4Address::from_octets(11, 0, 0, 0)));
}

TEST(Prefix, ContainsPrefixIsPartialOrder) {
  EXPECT_TRUE(p("10.0.0.0/8").contains(p("10.1.0.0/16")));
  EXPECT_TRUE(p("10.0.0.0/8").contains(p("10.0.0.0/8")));
  EXPECT_FALSE(p("10.1.0.0/16").contains(p("10.0.0.0/8")));
  EXPECT_FALSE(p("10.0.0.0/8").contains(p("11.0.0.0/16")));
}

TEST(Prefix, OverlapsIsSymmetric) {
  EXPECT_TRUE(p("10.0.0.0/8").overlaps(p("10.1.0.0/16")));
  EXPECT_TRUE(p("10.1.0.0/16").overlaps(p("10.0.0.0/8")));
  EXPECT_FALSE(p("10.0.0.0/16").overlaps(p("10.1.0.0/16")));
}

TEST(Prefix, RangeEndpoints) {
  const auto prefix = p("192.0.2.0/24");
  EXPECT_EQ(prefix.range_low().to_string(), "192.0.2.0");
  EXPECT_EQ(prefix.range_high().to_string(), "192.0.2.255");
  EXPECT_EQ(prefix.size(), 256u);
}

TEST(Prefix, ChildParentSiblingRelations) {
  const auto prefix = p("10.0.0.0/8");
  EXPECT_EQ(prefix.child(0).to_string(), "10.0.0.0/9");
  EXPECT_EQ(prefix.child(1).to_string(), "10.128.0.0/9");
  EXPECT_EQ(prefix.child(1).parent(), prefix);
  EXPECT_EQ(prefix.child(0).sibling(), prefix.child(1));
  EXPECT_EQ(prefix.child(1).sibling(), prefix.child(0));
}

TEST(Prefix, ChildrenPartitionParent) {
  netbase::Pcg32 rng(42);
  for (int i = 0; i < 200; ++i) {
    const Prefix parent(Ipv4Address(rng.next()), rng.next_below(32));
    const auto left = parent.child(0);
    const auto right = parent.child(1);
    EXPECT_TRUE(parent.contains(left));
    EXPECT_TRUE(parent.contains(right));
    EXPECT_FALSE(left.overlaps(right));
    EXPECT_EQ(left.size() + right.size(), parent.size());
    EXPECT_EQ(left.range_low(), parent.range_low());
    EXPECT_EQ(right.range_high(), parent.range_high());
  }
}

TEST(Prefix, OrderingIsInOrderTraversalOrder) {
  // Address first, then shorter-before-longer at the same address.
  EXPECT_LT(p("10.0.0.0/8"), p("10.0.0.0/16"));
  EXPECT_LT(p("10.0.0.0/16"), p("10.1.0.0/16"));
  EXPECT_LT(p("9.0.0.0/8"), p("10.0.0.0/32"));
}

TEST(Prefix, HashSpreadsAndMatchesEquality) {
  std::unordered_set<Prefix> set;
  Pcg32 rng(7);
  std::set<std::pair<std::uint32_t, unsigned>> reference;
  for (int i = 0; i < 2000; ++i) {
    const Prefix prefix(Ipv4Address(rng.next()), 8 + rng.next_below(25));
    set.insert(prefix);
    reference.emplace(prefix.bits(), prefix.length());
  }
  EXPECT_EQ(set.size(), reference.size());
}

TEST(Prefix, BitAccessor) {
  const auto prefix = p("128.0.0.0/1");
  EXPECT_EQ(prefix.bit(0), 1u);
  const auto deep = p("0.0.0.1/32");
  EXPECT_EQ(deep.bit(31), 1u);
  EXPECT_EQ(deep.bit(30), 0u);
}

}  // namespace
}  // namespace clue::netbase
