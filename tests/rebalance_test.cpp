// Online boundary rebalancer: planner unit tests, migration correctness
// on the concurrent runtime and the serial system, overflow rejection
// with trie rollback on all three hosts, and the churn-soak — sustained
// skewed updates under concurrent lookups with a windowed version
// oracle (sized by CLUE_SOAK_UPDATES; see ci/check.sh's soak stage).
#include "runtime/rebalancer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "netbase/rng.hpp"
#include "runtime/lookup_runtime.hpp"
#include "system/clue_system.hpp"
#include "tcam/updater.hpp"
#include "update/clue_pipeline.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using clue::netbase::Ipv4Address;
using clue::netbase::make_next_hop;
using clue::netbase::NextHop;
using clue::netbase::Pcg32;
using clue::netbase::Prefix;
using clue::runtime::LookupRuntime;
using clue::runtime::MigrationStep;
using clue::runtime::RebalanceConfig;
using clue::runtime::RebalancePlanner;
using clue::runtime::RuntimeConfig;
using clue::workload::UpdateKind;
using clue::workload::UpdateMsg;

clue::trie::BinaryTrie make_fib(std::size_t routes, std::uint64_t seed) {
  clue::workload::RibConfig config;
  config.table_size = routes;
  config.seed = seed;
  return clue::workload::generate_rib(config);
}

std::vector<Ipv4Address> random_addresses(std::size_t count,
                                          std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.emplace_back(rng.next());
  return out;
}

/// A fresh announce below `bound` (chip 0's range): the hot-churn shape
/// that drives occupancy skew.
UpdateMsg hot_announce(Pcg32& rng, std::uint32_t bound) {
  UpdateMsg msg;
  msg.kind = UpdateKind::kAnnounce;
  msg.prefix = Prefix(Ipv4Address(rng.next_below(bound)), 24);
  msg.next_hop = make_next_hop(1 + rng.next_below(250));
  return msg;
}

// ---------------------------------------------------------------------------
// Planner unit tests.

TEST(RebalancePlannerTest, SkewRatioCountsEmptyChipsAsOne) {
  const std::vector<std::size_t> even{100, 100, 100};
  EXPECT_DOUBLE_EQ(RebalancePlanner::skew(even), 1.0);
  const std::vector<std::size_t> two{200, 100};
  EXPECT_DOUBLE_EQ(RebalancePlanner::skew(two), 2.0);
  const std::vector<std::size_t> with_empty{0, 50};
  EXPECT_DOUBLE_EQ(RebalancePlanner::skew(with_empty), 50.0);
  const std::vector<std::size_t> single{123};
  EXPECT_DOUBLE_EQ(RebalancePlanner::skew(single), 1.0);
  EXPECT_DOUBLE_EQ(RebalancePlanner::skew({}), 1.0);
}

TEST(RebalancePlannerTest, EvenTargetsFrontLoadRemainder) {
  const std::vector<std::size_t> occupancy{14, 0, 0, 0};
  const auto targets = RebalancePlanner::even_targets(occupancy);
  EXPECT_EQ(targets, (std::vector<std::size_t>{4, 4, 3, 3}));
}

TEST(RebalancePlannerTest, EvenTargetsDegeneratePutsSingletonsAtEnd) {
  // Mirrors partition::even_partition's degenerate layout: occupied
  // buckets at the end so the top chip keeps owning the address-space
  // top (a trailing empty bucket has no representable boundary).
  const std::vector<std::size_t> occupancy{2, 0, 0, 0};
  const auto targets = RebalancePlanner::even_targets(occupancy);
  EXPECT_EQ(targets, (std::vector<std::size_t>{0, 0, 1, 1}));
}

TEST(RebalancePlannerTest, ShouldRebalanceRespectsWatermarksAndSwitch) {
  RebalanceConfig config;
  config.skew_watermark = 1.25;
  config.min_total_entries = 100;
  RebalancePlanner planner(config);

  const std::vector<std::size_t> skewed{300, 100};
  EXPECT_TRUE(planner.should_rebalance(skewed));
  const std::vector<std::size_t> even{200, 200};
  EXPECT_FALSE(planner.should_rebalance(even));
  // Below min_total_entries the skew trigger stays quiet...
  const std::vector<std::size_t> tiny{30, 10};
  EXPECT_FALSE(planner.should_rebalance(tiny));
  // ...but the headroom trigger still fires when capacity says so.
  EXPECT_TRUE(planner.should_rebalance(tiny, 32));

  RebalanceConfig off = config;
  off.enabled = false;
  RebalancePlanner disabled(off);
  EXPECT_FALSE(disabled.should_rebalance(skewed));
  EXPECT_FALSE(disabled.should_rebalance(tiny, 32));
}

TEST(RebalancePlannerTest, PlanStepNulloptWhenBalanced) {
  RebalancePlanner planner;
  const std::vector<std::size_t> even{100, 100, 100, 100};
  EXPECT_FALSE(planner.plan_step(even).has_value());
  const std::vector<std::size_t> off_by_remainder{101, 100, 100};
  EXPECT_FALSE(planner.plan_step(off_by_remainder).has_value());
}

TEST(RebalancePlannerTest, PlanStepConvergesToEvenFromAnySkew) {
  RebalancePlanner planner;
  Pcg32 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.next_below(6);
    std::vector<std::size_t> occupancy(n);
    for (auto& o : occupancy) o = rng.next_below(2000);
    // Simulate: every planned step must be executable as stated and the
    // loop must terminate at the even targets.
    for (int steps = 0; steps < 1000; ++steps) {
      const auto step = planner.plan_step(occupancy);
      if (!step) break;
      ASSERT_TRUE(step->receiver == step->donor + 1 ||
                  step->donor == step->receiver + 1);
      ASSERT_GT(step->count, 0u);
      ASSERT_LE(step->count, occupancy[step->donor]);
      if (step->receiver < step->donor) {
        // Leftward donors must keep their top entry.
        ASSERT_LT(step->count, occupancy[step->donor]);
      }
      occupancy[step->donor] -= step->count;
      occupancy[step->receiver] += step->count;
    }
    EXPECT_FALSE(planner.plan_step(occupancy).has_value());
    const auto targets = RebalancePlanner::even_targets(occupancy);
    EXPECT_EQ(occupancy, targets) << "trial " << trial;
  }
}

TEST(RebalancePlannerTest, PlanStepHonorsEntryCap) {
  RebalanceConfig config;
  config.max_entries_per_step = 10;
  RebalancePlanner planner(config);
  const std::vector<std::size_t> occupancy{500, 100};
  const auto step = planner.plan_step(occupancy);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->donor, 0u);
  EXPECT_EQ(step->receiver, 1u);
  EXPECT_EQ(step->count, 10u);
}

// ---------------------------------------------------------------------------
// Concurrent runtime: migrations keep lookups exact, shed skew, and
// preserve the DRed exclusion invariant.

TEST(RebalanceTest, RuntimeShedsSkewUnderHotChurnAndStaysExact) {
  const auto fib = make_fib(8'000, 2101);
  RuntimeConfig config;
  config.worker_count = 4;
  config.fifo_depth = 16;  // small FIFOs: hot lookups divert -> DRed fills
  LookupRuntime runtime(fib, config);
  ASSERT_FALSE(runtime.boundaries().empty());
  const std::uint32_t bound = runtime.boundaries().front().value();

  Pcg32 rng(2102);
  // Warm the DReds with hot traffic so later migrations must uphold the
  // exclusion invariant against populated caches.
  std::vector<Ipv4Address> hot;
  for (int i = 0; i < 8'192; ++i) hot.emplace_back(rng.next_below(bound));
  runtime.lookup_batch(hot);

  for (int u = 0; u < 2'000; ++u) {
    runtime.apply(hot_announce(rng, bound));
    if (u % 64 == 0) runtime.lookup_batch(hot);
  }

  const auto metrics = runtime.metrics();
  EXPECT_GT(metrics.rebalance_passes, 0u) << "hot churn never tripped skew";
  EXPECT_GT(metrics.entries_migrated, 0u);
  EXPECT_EQ(metrics.updates_rejected, 0u);
  runtime.rebalance_now();
  EXPECT_LE(runtime.skew(), 1.25);

  // Every lookup answer must match the ground truth exactly (the data
  // plane is quiescent between batches).
  const auto sweep = random_addresses(20'000, 2103);
  const auto hops = runtime.lookup_batch(sweep);
  const auto& truth = runtime.fib().ground_truth();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(sweep[i]))
        << "address " << sweep[i].to_string();
  }

  // DRed exclusion (§IV-C): after migrations, no worker's DRed caches a
  // prefix that now homes on that same worker.
  runtime.stop();
  const auto& indexing = runtime.indexing();
  for (std::size_t w = 0; w < runtime.worker_count(); ++w) {
    const auto* dred = runtime.dred(w);
    ASSERT_NE(dred, nullptr);
    for (const auto& prefix : dred->contents()) {
      EXPECT_NE(indexing.tcam_of(prefix.range_low()), w)
          << "worker " << w << " caches its own " << prefix.to_string();
    }
  }
}

TEST(RebalanceTest, RebalanceNowIsNoopWhenAlreadyEven) {
  const auto fib = make_fib(4'000, 2201);
  RuntimeConfig config;
  config.worker_count = 4;
  LookupRuntime runtime(fib, config);
  EXPECT_EQ(runtime.rebalance_now(), 0u);
  const auto metrics = runtime.metrics();
  EXPECT_EQ(metrics.entries_migrated, 0u);
}

TEST(RebalanceTest, RuntimeRejectsOverflowAfterEmergencyRebalance) {
  const auto fib = make_fib(1'000, 2301);
  RuntimeConfig config;
  config.worker_count = 2;
  config.chip_capacity = 700;  // tight: full table ~>1000 entries
  LookupRuntime runtime(fib, config);
  ASSERT_FALSE(runtime.boundaries().empty());
  const std::uint32_t bound = runtime.boundaries().front().value();

  Pcg32 rng(2302);
  bool rejected = false;
  Prefix rejected_prefix;
  for (int u = 0; u < 3'000 && !rejected; ++u) {
    const auto msg = hot_announce(rng, bound);
    try {
      runtime.apply(msg);
    } catch (const clue::tcam::TcamFullError& error) {
      rejected = true;
      rejected_prefix = msg.prefix;
      EXPECT_EQ(error.capacity(), runtime.chip_capacity());
    }
  }
  ASSERT_TRUE(rejected) << "capacity 700 x2 never filled";
  const auto metrics = runtime.metrics();
  EXPECT_GE(metrics.updates_rejected, 1u);
  // The emergency path rebalanced before giving up.
  EXPECT_GT(metrics.rebalance_passes, 0u);

  // Rollback left trie, chips and DReds mutually consistent: the
  // rejected prefix is not in the ground truth, and the data plane still
  // answers exactly.
  EXPECT_FALSE(
      runtime.fib().ground_truth().find(rejected_prefix).has_value());
  const auto sweep = random_addresses(10'000, 2303);
  const auto hops = runtime.lookup_batch(sweep);
  const auto& truth = runtime.fib().ground_truth();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(sweep[i]));
  }

  // Still usable: withdrawals free space, then announces land again.
  UpdateMsg withdraw;
  withdraw.kind = UpdateKind::kWithdraw;
  withdraw.prefix = rejected_prefix;  // absorbed (never made it in)
  runtime.apply(withdraw);
}

// ---------------------------------------------------------------------------
// Serial system mirror.

TEST(RebalanceTest, SystemShedsSkewUnderHotChurnAndStaysExact) {
  const auto fib = make_fib(8'000, 2401);
  clue::system::SystemConfig config;
  config.tcam_count = 4;
  clue::system::ClueSystem system(fib, config);

  Pcg32 rng(2402);
  // The serial system homes addresses below the first boundary at chip 0
  // just like the runtime; reuse the hottest /8s of the generated rib.
  const std::uint32_t bound = 0x20000000u;
  for (int u = 0; u < 2'000; ++u) {
    system.apply(hot_announce(rng, bound));
  }
  system.rebalance_now();
  EXPECT_LE(system.skew(), 1.25);
  EXPECT_EQ(system.updates_rejected(), 0u);

  const auto sweep = random_addresses(20'000, 2403);
  const auto& truth = system.fib().ground_truth();
  for (const auto address : sweep) {
    ASSERT_EQ(system.lookup(address), truth.lookup(address))
        << "address " << address.to_string();
  }
  // Chip contents and trie agree entry for entry (after splits).
  EXPECT_GE(system.total_tcam_entries(), system.fib().size());

  clue::obs::MetricsRegistry registry;
  system.export_metrics(registry);
  bool found_skew = false;
  for (const auto& [name, value] : registry.gauges()) {
    if (name == "system.skew") {
      found_skew = true;
      EXPECT_LE(value, 1.25);
    }
  }
  EXPECT_TRUE(found_skew);
}

TEST(RebalanceTest, SystemRejectsOverflowAndRollsBackTrie) {
  const auto fib = make_fib(1'000, 2501);
  clue::system::SystemConfig config;
  config.tcam_count = 2;
  config.tcam_capacity = 700;
  clue::system::ClueSystem system(fib, config);

  Pcg32 rng(2502);
  bool rejected = false;
  Prefix rejected_prefix;
  for (int u = 0; u < 3'000 && !rejected; ++u) {
    const auto msg = hot_announce(rng, 0x20000000u);
    try {
      system.apply(msg);
    } catch (const clue::tcam::TcamFullError&) {
      rejected = true;
      rejected_prefix = msg.prefix;
    }
  }
  ASSERT_TRUE(rejected);
  EXPECT_GE(system.updates_rejected(), 1u);
  EXPECT_FALSE(
      system.fib().ground_truth().find(rejected_prefix).has_value());

  const auto sweep = random_addresses(10'000, 2503);
  const auto& truth = system.fib().ground_truth();
  for (const auto address : sweep) {
    ASSERT_EQ(system.lookup(address), truth.lookup(address));
  }
}

// ---------------------------------------------------------------------------
// Single-chip pipeline: recoverable overflow.

TEST(RebalanceTest, PipelineRejectsOverflowAndRollsBackTrie) {
  const auto fib = make_fib(1'000, 2601);
  clue::update::PipelineConfig config;
  clue::update::CluePipeline sized(fib, config);  // probe the table size
  config.tcam_capacity = sized.chip().occupied() + 2;
  clue::update::CluePipeline pipeline(fib, config);

  Pcg32 rng(2602);
  bool rejected = false;
  Prefix rejected_prefix;
  for (int u = 0; u < 200 && !rejected; ++u) {
    const auto msg = hot_announce(rng, 0xFFFFFFFFu);
    try {
      pipeline.apply(msg);
    } catch (const clue::tcam::TcamFullError& error) {
      rejected = true;
      rejected_prefix = msg.prefix;
      EXPECT_EQ(error.capacity(), pipeline.tcam_capacity());
    }
  }
  ASSERT_TRUE(rejected);
  EXPECT_EQ(pipeline.updates_rejected(), 1u);
  EXPECT_FALSE(
      pipeline.fib().ground_truth().find(rejected_prefix).has_value());

  const auto sweep = random_addresses(10'000, 2603);
  const auto& truth = pipeline.fib().ground_truth();
  for (const auto address : sweep) {
    ASSERT_EQ(pipeline.lookup(address), truth.lookup(address));
  }

  clue::obs::MetricsRegistry registry;
  pipeline.export_metrics(registry);
  bool found_headroom = false;
  for (const auto& [name, value] : registry.gauges()) {
    if (name == "pipeline.headroom_remaining") {
      found_headroom = true;
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, 1.0);
    }
  }
  EXPECT_TRUE(found_headroom);
}

// ---------------------------------------------------------------------------
// The churn-soak: sustained skewed announce/withdraw churn applied from
// a control thread while the client hammers lookups. Every answer must
// match the ground truth of *some* update version the data plane could
// have exposed during its batch (windowed oracle over a bounded ring of
// recent versions), no apply may throw, and the final occupancy must be
// even after rebalancing. CLUE_SOAK_UPDATES scales the run (ci/check.sh
// sets 500000 in the soak stage; the default keeps ctest quick).

std::size_t soak_updates() {
  if (const char* env = std::getenv("CLUE_SOAK_UPDATES")) {
    const auto parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 20'000;
}

TEST(RebalanceSoakTest, ChurnSoakKeepsSkewBoundedAndAnswersInWindow) {
  const std::size_t kUpdates = soak_updates();
  const auto fib = make_fib(4'000, 2701);
  RuntimeConfig config;
  config.worker_count = 4;
  config.fifo_depth = 64;
  LookupRuntime runtime(fib, config);
  ASSERT_FALSE(runtime.boundaries().empty());
  const std::uint32_t bound = runtime.boundaries().front().value();

  // Lookup pool: half uniform, half hot, so migrated regions stay under
  // constant lookup pressure.
  constexpr std::size_t kPool = 256;
  std::vector<Ipv4Address> pool = random_addresses(kPool / 2, 2702);
  {
    Pcg32 rng(2703);
    while (pool.size() < kPool) pool.emplace_back(rng.next_below(bound));
  }

  // Windowed oracle over the last kRing published versions. The control
  // thread records each version's pool answers (release-published via
  // `latest`); the client checks its batch against every version in
  // [g0, g1]. Relaxed atomics keep the ring TSan-clean.
  constexpr std::size_t kRing = 1024;
  constexpr std::size_t kGuard = 64;  // overwrite safety margin
  std::vector<std::array<std::atomic<std::uint32_t>, kPool>> ring(kRing);
  std::atomic<std::uint64_t> latest{0};
  const auto record = [&](std::uint64_t version,
                          const clue::trie::BinaryTrie& truth) {
    auto& slot = ring[version % kRing];
    for (std::size_t i = 0; i < kPool; ++i) {
      slot[i].store(static_cast<std::uint32_t>(truth.lookup(pool[i])),
                    std::memory_order_relaxed);
    }
    latest.store(version, std::memory_order_release);
  };
  record(0, fib);

  std::atomic<bool> done{false};
  std::atomic<bool> apply_threw{false};
  std::thread control([&] {
    Pcg32 rng(2704);
    std::vector<Prefix> hot_live;  // announced and not yet withdrawn
    const std::size_t kHotTarget = 2'000;
    std::uint64_t recorded = 0;
    for (std::size_t u = 0; u < kUpdates; ++u) {
      UpdateMsg msg;
      const bool announce =
          hot_live.size() < kHotTarget || rng.next_below(2) == 0;
      if (announce) {
        msg = hot_announce(rng, bound);
        hot_live.push_back(msg.prefix);
      } else {
        const std::size_t pick = rng.next_below(
            static_cast<std::uint32_t>(hot_live.size()));
        msg.kind = UpdateKind::kWithdraw;
        msg.prefix = hot_live[pick];
        hot_live[pick] = hot_live.back();
        hot_live.pop_back();
      }
      try {
        runtime.apply(msg);
      } catch (...) {
        apply_threw.store(true, std::memory_order_release);
        break;
      }
      const std::uint64_t completed = runtime.updates_completed();
      if (completed > recorded) {
        recorded = completed;
        record(recorded, runtime.fib().ground_truth());
      }
    }
    done.store(true, std::memory_order_release);
  });

  Pcg32 rng(2705);
  std::size_t checked = 0;
  std::size_t skipped = 0;
  std::size_t mismatches = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::array<std::uint32_t, 128> picks;
    std::vector<Ipv4Address> batch;
    batch.reserve(picks.size());
    for (auto& pick : picks) {
      pick = rng.next_below(kPool);
      batch.push_back(pool[pick]);
    }
    const std::uint64_t g0 = runtime.updates_completed();
    const auto hops = runtime.lookup_batch(batch);
    const std::uint64_t g1 = runtime.updates_started();
    // The oracle for g1 is written slightly after apply() returns; wait
    // for it (the control thread is actively publishing).
    while (latest.load(std::memory_order_acquire) < g1 &&
           !done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    if (latest.load(std::memory_order_acquire) < g1 ||
        g1 - g0 >= kRing - kGuard) {
      ++skipped;
      continue;
    }
    std::size_t batch_mismatches = 0;
    for (std::size_t i = 0; i < picks.size(); ++i) {
      bool matched = false;
      for (std::uint64_t v = g0; v <= g1 && !matched; ++v) {
        matched = ring[v % kRing][picks[i]].load(
                      std::memory_order_relaxed) ==
                  static_cast<std::uint32_t>(hops[i]);
      }
      if (!matched) ++batch_mismatches;
      ++checked;
    }
    // Discard the batch if the ring could have been overwritten under
    // the comparison (client fell > kRing-kGuard versions behind).
    if (runtime.updates_completed() >= g0 + (kRing - kGuard)) {
      ++skipped;
      checked -= picks.size();
      continue;
    }
    mismatches += batch_mismatches;
  }
  control.join();

  EXPECT_FALSE(apply_threw.load()) << "apply() threw during the soak";
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(checked, 0u);

  const auto metrics = runtime.metrics();
  EXPECT_EQ(metrics.updates_rejected, 0u);
  EXPECT_GT(metrics.rebalance_passes, 0u) << "soak never tripped a watermark";
  EXPECT_GT(metrics.entries_migrated, 0u);

  // Post-rebalance evenness (the ISSUE's acceptance bound).
  runtime.rebalance_now();
  EXPECT_LE(runtime.skew(), 1.25);

  // Quiescent exact sweep + epoch accounting.
  const auto sweep = random_addresses(10'000, 2706);
  const auto hops = runtime.lookup_batch(sweep);
  const auto& truth = runtime.fib().ground_truth();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(hops[i], truth.lookup(sweep[i]))
        << "address " << sweep[i].to_string();
  }
  runtime.reclaim();
  const auto final_metrics = runtime.metrics();
  EXPECT_EQ(final_metrics.tables_pending, 0u);
  EXPECT_EQ(final_metrics.tables_reclaimed, final_metrics.tables_published);

  // DRed exclusion survives the whole soak.
  runtime.stop();
  const auto& indexing = runtime.indexing();
  for (std::size_t w = 0; w < runtime.worker_count(); ++w) {
    const auto* dred = runtime.dred(w);
    ASSERT_NE(dred, nullptr);
    for (const auto& prefix : dred->contents()) {
      EXPECT_NE(indexing.tcam_of(prefix.range_low()), w)
          << "worker " << w << " caches its own " << prefix.to_string();
    }
  }
}

}  // namespace
