#include "system/clue_system.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netbase/rng.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace clue::system {
namespace {

using netbase::cidr_cover;
using netbase::make_next_hop;
using netbase::Pcg32;
using workload::UpdateKind;
using workload::UpdateMsg;

// ---------------------------------------------------------------------------
// cidr_cover (the boundary-splitting primitive)

TEST(CidrCover, SingleAddress) {
  const auto cover = cidr_cover(Ipv4Address(5), Ipv4Address(5));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Prefix(Ipv4Address(5), 32));
}

TEST(CidrCover, AlignedBlockIsOnePrefix) {
  const auto cover = cidr_cover(*Ipv4Address::parse("10.0.0.0"),
                                *Ipv4Address::parse("10.0.0.255"));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].to_string(), "10.0.0.0/24");
}

TEST(CidrCover, WholeSpace) {
  const auto cover =
      cidr_cover(Ipv4Address(0), Ipv4Address(~std::uint32_t{0}));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 0u);
}

TEST(CidrCover, UnalignedRangeDecomposes) {
  // [10.0.0.1 .. 10.0.0.6] = .1/32 .2/31 .4/31 .6/32
  const auto cover = cidr_cover(*Ipv4Address::parse("10.0.0.1"),
                                *Ipv4Address::parse("10.0.0.6"));
  ASSERT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover[0].to_string(), "10.0.0.1/32");
  EXPECT_EQ(cover[1].to_string(), "10.0.0.2/31");
  EXPECT_EQ(cover[2].to_string(), "10.0.0.4/31");
  EXPECT_EQ(cover[3].to_string(), "10.0.0.6/32");
}

TEST(CidrCover, RejectsReversedRange) {
  EXPECT_THROW(cidr_cover(Ipv4Address(2), Ipv4Address(1)),
               std::invalid_argument);
}

TEST(CidrCover, PropertyExactDisjointCover) {
  Pcg32 rng(401);
  for (int round = 0; round < 200; ++round) {
    std::uint32_t a = rng.next();
    std::uint32_t b = rng.next() & 0xFFFFu;  // modest ranges
    const Ipv4Address low(std::min(a, a + b));
    const Ipv4Address high(std::max(a, a + b));
    const auto cover = cidr_cover(low, high);
    // Pieces are sorted, adjacent, and cover exactly [low, high].
    std::uint64_t cursor = low.value();
    for (const auto& piece : cover) {
      ASSERT_EQ(piece.range_low().value(), cursor);
      cursor = std::uint64_t{piece.range_high().value()} + 1;
    }
    ASSERT_EQ(cursor, std::uint64_t{high.value()} + 1);
  }
}

// ---------------------------------------------------------------------------
// ClueSystem

trie::BinaryTrie test_fib(std::size_t size, std::uint64_t seed) {
  workload::RibConfig config;
  config.table_size = size;
  config.seed = seed;
  return workload::generate_rib(config);
}

TEST(ClueSystem, InitialChipsHoldWholeCompressedTable) {
  const auto fib = test_fib(3'000, 411);
  ClueSystem system(fib, SystemConfig{});
  EXPECT_EQ(system.total_tcam_entries(), system.fib().size());
  EXPECT_EQ(system.tcam_count(), 4u);
}

TEST(ClueSystem, LookupMatchesGroundTruth) {
  const auto fib = test_fib(3'000, 413);
  ClueSystem system(fib, SystemConfig{});
  Pcg32 rng(414);
  for (int probe = 0; probe < 3'000; ++probe) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(system.lookup(address), fib.lookup(address))
        << address.to_string();
  }
}

TEST(ClueSystem, LookupMatchesGroundTruthAfterUpdateStream) {
  const auto fib = test_fib(3'000, 415);
  ClueSystem system(fib, SystemConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 416;
  workload::UpdateGenerator updates(fib, update_config);
  Pcg32 rng(417);
  for (int i = 0; i < 2'000; ++i) {
    system.apply(updates.next());
    if (i % 50 == 0) {
      for (int probe = 0; probe < 30; ++probe) {
        const Ipv4Address address(rng.next());
        ASSERT_EQ(system.lookup(address),
                  system.fib().ground_truth().lookup(address))
            << "update " << i << " " << address.to_string();
      }
    }
  }
}

TEST(ClueSystem, BoundarySpanningRegionsAreSplitNotLost) {
  const auto fib = test_fib(3'000, 419);
  ClueSystem system(fib, SystemConfig{});
  // Force boundary-spanning regions: announce short prefixes until one
  // covers a partition boundary, then verify lookups on both sides.
  Pcg32 rng(420);
  for (int i = 0; i < 200; ++i) {
    const Prefix wide(Ipv4Address(rng.next()), 6 + rng.next_below(6));
    system.apply(UpdateMsg{UpdateKind::kAnnounce, wide,
                           make_next_hop(1 + rng.next_below(8))});
  }
  // Total entries may exceed the compressed size (splits), never shrink
  // below it.
  EXPECT_GE(system.total_tcam_entries(), system.fib().size());
  for (int probe = 0; probe < 5'000; ++probe) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(system.lookup(address),
              system.fib().ground_truth().lookup(address))
        << address.to_string();
  }
}

TEST(ClueSystem, WithdrawingEverythingEmptiesChips) {
  trie::BinaryTrie fib;
  fib.insert(*Prefix::parse("10.0.0.0/8"), make_next_hop(1));
  fib.insert(*Prefix::parse("99.0.0.0/8"), make_next_hop(2));
  ClueSystem system(fib, SystemConfig{});
  system.apply(UpdateMsg{UpdateKind::kWithdraw, *Prefix::parse("10.0.0.0/8"),
                         netbase::kNoRoute});
  system.apply(UpdateMsg{UpdateKind::kWithdraw, *Prefix::parse("99.0.0.0/8"),
                         netbase::kNoRoute});
  EXPECT_EQ(system.total_tcam_entries(), 0u);
  EXPECT_EQ(system.lookup(*Ipv4Address::parse("10.1.1.1")), netbase::kNoRoute);
}

TEST(ClueSystem, TtfAccountingUsesCriticalPath) {
  const auto fib = test_fib(2'000, 421);
  ClueSystem system(fib, SystemConfig{});
  workload::UpdateConfig update_config;
  update_config.seed = 422;
  workload::UpdateGenerator updates(fib, update_config);
  for (int i = 0; i < 500; ++i) {
    const auto sample = system.apply(updates.next());
    EXPECT_GE(sample.ttf1_ns, 0.0);
    // TTF2 is a multiple of the 24 ns op cost.
    const double ops = sample.ttf2_ns / update::CostModel::kTcamOpNs;
    EXPECT_DOUBLE_EQ(ops, std::round(ops));
  }
}

TEST(ClueSystem, EngineSetupSnapshotIsRunnable) {
  const auto fib = test_fib(2'000, 423);
  ClueSystem system(fib, SystemConfig{});
  const auto setup = system.engine_setup();
  engine::EngineConfig config;
  engine::ParallelEngine engine(engine::EngineMode::kClue, config, setup);
  Pcg32 rng(424);
  const auto routes = system.fib().compressed().routes();
  const auto metrics = engine.run(
      [&rng, &routes] {
        const auto& route =
            routes[rng.next_below(static_cast<std::uint32_t>(routes.size()))];
        return route.prefix.range_low();
      },
      5'000);
  EXPECT_EQ(metrics.packets_completed + metrics.packets_dropped, 5'000u);
  EXPECT_GT(metrics.packets_completed, 4'000u);
}

}  // namespace
}  // namespace clue::system
