#include "trie/multibit_trie.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "workload/rib_gen.hpp"

namespace clue::trie {
namespace {

using netbase::Ipv4Address;
using netbase::kNoRoute;
using netbase::make_next_hop;
using netbase::Pcg32;

Prefix p(const char* text) {
  const auto parsed = Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

Ipv4Address a(const char* text) {
  const auto parsed = Ipv4Address::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(MultibitTrie, EmptyMissesEverything) {
  MultibitTrie trie;
  EXPECT_EQ(trie.lookup(a("1.2.3.4")), kNoRoute);
  EXPECT_EQ(trie.size(), 0u);
}

TEST(MultibitTrie, StrideAlignedInsertAndLookup) {
  MultibitTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.0.0/16"), make_next_hop(2));
  trie.insert(p("10.1.2.0/24"), make_next_hop(3));
  trie.insert(p("10.1.2.3/32"), make_next_hop(4));
  EXPECT_EQ(trie.lookup(a("10.9.9.9")), make_next_hop(1));
  EXPECT_EQ(trie.lookup(a("10.1.9.9")), make_next_hop(2));
  EXPECT_EQ(trie.lookup(a("10.1.2.9")), make_next_hop(3));
  EXPECT_EQ(trie.lookup(a("10.1.2.3")), make_next_hop(4));
  EXPECT_EQ(trie.lookup(a("11.0.0.0")), kNoRoute);
}

TEST(MultibitTrie, UnalignedPrefixesExpandWithinNode) {
  MultibitTrie trie;
  trie.insert(p("128.0.0.0/1"), make_next_hop(1));
  trie.insert(p("192.0.0.0/3"), make_next_hop(2));
  EXPECT_EQ(trie.lookup(a("129.0.0.1")), make_next_hop(1));
  EXPECT_EQ(trie.lookup(a("200.0.0.1")), make_next_hop(2));
  EXPECT_EQ(trie.lookup(a("1.0.0.1")), kNoRoute);
}

TEST(MultibitTrie, LongerExpansionWinsWithinSlotRange) {
  MultibitTrie trie;
  trie.insert(p("10.0.0.0/9"), make_next_hop(1));   // slots 0..127 of byte 2
  trie.insert(p("10.0.0.0/10"), make_next_hop(2));  // slots 0..63
  EXPECT_EQ(trie.lookup(a("10.10.0.0")), make_next_hop(2));   // byte1=10<64
  EXPECT_EQ(trie.lookup(a("10.100.0.0")), make_next_hop(1));  // 64<=100<128
  EXPECT_EQ(trie.lookup(a("10.200.0.0")), kNoRoute);          // >=128
}

TEST(MultibitTrie, InsertionOrderIrrelevant) {
  MultibitTrie forward, backward;
  forward.insert(p("10.0.0.0/10"), make_next_hop(2));
  forward.insert(p("10.0.0.0/9"), make_next_hop(1));
  backward.insert(p("10.0.0.0/9"), make_next_hop(1));
  backward.insert(p("10.0.0.0/10"), make_next_hop(2));
  for (const char* probe : {"10.10.0.0", "10.100.0.0", "10.200.0.0"}) {
    EXPECT_EQ(forward.lookup(a(probe)), backward.lookup(a(probe))) << probe;
  }
}

TEST(MultibitTrie, DefaultRoute) {
  MultibitTrie trie;
  trie.insert(Prefix(), make_next_hop(9));
  EXPECT_EQ(trie.lookup(a("0.0.0.0")), make_next_hop(9));
  EXPECT_EQ(trie.lookup(a("255.255.255.255")), make_next_hop(9));
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_EQ(trie.lookup(a("10.1.1.1")), make_next_hop(1));
  EXPECT_TRUE(trie.erase(Prefix()));
  EXPECT_EQ(trie.lookup(a("99.0.0.1")), kNoRoute);
  EXPECT_EQ(trie.lookup(a("10.1.1.1")), make_next_hop(1));
}

TEST(MultibitTrie, EraseUncoversShorterPrefix) {
  MultibitTrie trie;
  trie.insert(p("10.0.0.0/9"), make_next_hop(1));
  trie.insert(p("10.0.0.0/10"), make_next_hop(2));
  EXPECT_TRUE(trie.erase(p("10.0.0.0/10")));
  EXPECT_EQ(trie.lookup(a("10.10.0.0")), make_next_hop(1));
  EXPECT_FALSE(trie.erase(p("10.0.0.0/10")));
}

TEST(MultibitTrie, EraseKeepsDeeperChildrenReachable) {
  MultibitTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  trie.insert(p("10.1.2.0/24"), make_next_hop(2));
  EXPECT_TRUE(trie.erase(p("10.0.0.0/8")));
  EXPECT_EQ(trie.lookup(a("10.1.2.9")), make_next_hop(2));
  EXPECT_EQ(trie.lookup(a("10.9.9.9")), kNoRoute);
}

TEST(MultibitTrie, OverwriteChangesHop) {
  MultibitTrie trie;
  trie.insert(p("10.0.0.0/8"), make_next_hop(1));
  EXPECT_FALSE(trie.insert(p("10.0.0.0/8"), make_next_hop(7)));
  EXPECT_EQ(trie.lookup(a("10.1.1.1")), make_next_hop(7));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(MultibitTrie, RandomizedDifferentialAgainstBinaryTrie) {
  Pcg32 rng(811);
  MultibitTrie multibit;
  BinaryTrie reference;
  for (int step = 0; step < 6'000; ++step) {
    const Prefix prefix(Ipv4Address(0x0A000000u | (rng.next() & 0xFFFFFF)),
                        rng.next_below(33));
    if (rng.chance(0.65)) {
      const auto hop = make_next_hop(1 + rng.next_below(8));
      EXPECT_EQ(multibit.insert(prefix, hop), reference.insert(prefix, hop));
    } else {
      EXPECT_EQ(multibit.erase(prefix), reference.erase(prefix));
    }
    if (step % 100 == 0) {
      for (int probe = 0; probe < 25; ++probe) {
        const Ipv4Address address(0x0A000000u | (rng.next() & 0xFFFFFF));
        ASSERT_EQ(multibit.lookup(address), reference.lookup(address))
            << "step " << step << " " << address.to_string();
      }
    }
  }
  EXPECT_EQ(multibit.size(), reference.size());
}

TEST(MultibitTrie, HandlesBgpShapedTable) {
  workload::RibConfig config;
  config.table_size = 10'000;
  config.seed = 813;
  const auto fib = workload::generate_rib(config);
  MultibitTrie multibit;
  fib.for_each_route([&multibit](const netbase::Route& route) {
    multibit.insert(route.prefix, route.next_hop);
  });
  EXPECT_EQ(multibit.size(), fib.size());
  Pcg32 rng(814);
  for (int probe = 0; probe < 20'000; ++probe) {
    const Ipv4Address address(rng.next());
    ASSERT_EQ(multibit.lookup(address), fib.lookup(address))
        << address.to_string();
  }
}

}  // namespace
}  // namespace clue::trie
