#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "workload/rib_gen.hpp"

namespace clue::partition {
namespace {

using netbase::Ipv4Address;
using netbase::make_next_hop;
using netbase::Pcg32;
using trie::BinaryTrie;

BinaryTrie small_fib(Pcg32& rng, std::size_t routes) {
  BinaryTrie fib;
  while (fib.size() < routes) {
    fib.insert(Prefix(Ipv4Address(rng.next()), 8 + rng.next_below(18)),
               make_next_hop(1 + rng.next_below(8)));
  }
  return fib;
}

std::vector<Route> disjoint_table(Pcg32& rng, std::size_t routes) {
  return onrtc::compress(small_fib(rng, routes));
}

TEST(EvenPartition, RejectsZeroBuckets) {
  EXPECT_THROW(even_partition({}, 0), std::invalid_argument);
}

TEST(EvenPartition, SplitsExactlyEvenly) {
  Pcg32 rng(3);
  const auto table = disjoint_table(rng, 1000);
  const auto result = even_partition(table, 4);
  ASSERT_EQ(result.buckets.size(), 4u);
  EXPECT_EQ(result.redundancy, 0u);
  EXPECT_LE(result.max_bucket() - result.min_bucket(), 1u);
  EXPECT_EQ(result.total_entries(), table.size());
}

TEST(EvenPartition, PreservesOrderAndContent) {
  Pcg32 rng(5);
  const auto table = disjoint_table(rng, 500);
  const auto result = even_partition(table, 8);
  std::vector<Route> flattened;
  for (const auto& bucket : result.buckets) {
    flattened.insert(flattened.end(), bucket.routes.begin(),
                     bucket.routes.end());
  }
  EXPECT_EQ(flattened, table);
}

TEST(EvenPartition, BucketsAreAddressRanges) {
  Pcg32 rng(7);
  const auto table = disjoint_table(rng, 600);
  const auto result = even_partition(table, 4);
  for (std::size_t b = 0; b + 1 < result.buckets.size(); ++b) {
    ASSERT_FALSE(result.buckets[b].routes.empty());
    EXPECT_LT(result.buckets[b].routes.back().prefix.range_high(),
              result.buckets[b + 1].routes.front().prefix.range_low());
  }
}

TEST(EvenPartition, MoreBucketsThanRoutesLeavesEmpties) {
  Pcg32 rng(9);
  const auto table = disjoint_table(rng, 3);
  const auto result = even_partition(table, 8);
  EXPECT_EQ(result.total_entries(), table.size());
  EXPECT_EQ(result.max_bucket(), 1u);
}

// Regression: the degenerate layout (fewer routes than buckets) must put
// the empty buckets FIRST. A trailing empty bucket would need a boundary
// one past the top of the address space — unrepresentable, historically
// faked with 255.255.255.255, which claimed that address for an empty
// bucket and produced duplicate boundaries.
TEST(EvenPartition, DegenerateLayoutPutsOccupiedBucketsAtEnd) {
  Pcg32 rng(37);
  const auto table = disjoint_table(rng, 3);
  const std::size_t m = table.size();  // compression may merge below 3
  ASSERT_GE(m, 1u);
  ASSERT_LT(m, 8u);
  const auto result = even_partition(table, 8);
  ASSERT_EQ(result.buckets.size(), 8u);
  for (std::size_t b = 0; b < 8 - m; ++b) {
    EXPECT_TRUE(result.buckets[b].routes.empty()) << "bucket " << b;
  }
  for (std::size_t b = 8 - m; b < 8; ++b) {
    ASSERT_EQ(result.buckets[b].routes.size(), 1u) << "bucket " << b;
    EXPECT_EQ(result.buckets[b].routes.front(), table[b - (8 - m)]);
  }
  // The top bucket owns the top of the table (and so the top of the
  // address space under range indexing).
  EXPECT_EQ(result.buckets.back().routes.back(), table.back());
}

TEST(EvenPartitionBoundaries, DegenerateBoundariesSortedNoSentinel) {
  Pcg32 rng(41);
  const auto table = disjoint_table(rng, 3);
  const std::size_t n = 8;
  const auto boundaries = even_partition_boundaries(table, n);
  ASSERT_EQ(boundaries.size(), n - 1);
  // Non-decreasing, and never the old 255.255.255.255 sentinel.
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    EXPECT_LE(boundaries[i], boundaries[i + 1]);
  }
  for (const auto boundary : boundaries) {
    EXPECT_LT(boundary, Ipv4Address(~std::uint32_t{0}));
  }
}

TEST(EvenPartitionBoundaries, DegenerateBoundariesHomeEveryRoute) {
  Pcg32 rng(43);
  for (const std::size_t routes : {1u, 2u, 3u, 5u, 7u}) {
    const auto table = disjoint_table(rng, routes);
    const std::size_t n = 8;
    const auto result = even_partition(table, n);
    const auto boundaries = even_partition_boundaries(table, n);
    for (std::size_t b = 0; b < n; ++b) {
      for (const auto& route : result.buckets[b].routes) {
        std::size_t index = 0;
        while (index < boundaries.size() &&
               route.prefix.range_low() >= boundaries[index]) {
          ++index;
        }
        ASSERT_EQ(index, b)
            << routes << " routes: " << route.prefix.to_string();
      }
    }
  }
}

TEST(EvenPartitionBoundaries, RouteEveryAddressToItsBucket) {
  Pcg32 rng(11);
  const auto table = disjoint_table(rng, 800);
  const std::size_t n = 4;
  const auto result = even_partition(table, n);
  const auto boundaries = even_partition_boundaries(table, n);
  ASSERT_EQ(boundaries.size(), n - 1);
  for (std::size_t b = 0; b < n; ++b) {
    for (const auto& route : result.buckets[b].routes) {
      // Bucket index from the boundaries must match the dealt bucket.
      std::size_t index = 0;
      while (index < boundaries.size() &&
             route.prefix.range_low() >= boundaries[index]) {
        ++index;
      }
      ASSERT_EQ(index, b) << route.prefix.to_string();
    }
  }
}

// ---------------------------------------------------------------------------

// Every bucket of a sub-tree partition must answer LPM stand-alone:
// route each address to the bucket owning its carved range and compare
// against the full-table answer. We approximate "owning bucket" as any
// bucket whose answer we check — the partition contract is that the
// bucket holding the longest matching (non-replica) prefix answers
// exactly like the full FIB.
TEST(SubtreePartition, BucketsAnswerLpmStandalone) {
  Pcg32 rng(13);
  const auto fib = small_fib(rng, 400);
  const auto result = subtree_partition(fib, 4);
  ASSERT_EQ(result.buckets.size(), 4u);

  // Build per-bucket tries.
  std::vector<BinaryTrie> tries(result.buckets.size());
  for (std::size_t b = 0; b < result.buckets.size(); ++b) {
    for (const auto& route : result.buckets[b].routes) {
      tries[b].insert(route.prefix, route.next_hop);
    }
  }
  for (int probe = 0; probe < 3000; ++probe) {
    const Ipv4Address address(rng.next());
    const auto expected = fib.lookup(address);
    if (expected == netbase::kNoRoute) continue;
    // The bucket that contains the winning prefix must answer correctly.
    const auto winner = fib.lookup_route(address);
    ASSERT_TRUE(winner.has_value());
    bool found = false;
    for (std::size_t b = 0; b < tries.size(); ++b) {
      if (tries[b].find(winner->prefix).has_value()) {
        ASSERT_EQ(tries[b].lookup(address), expected)
            << "bucket " << b << " " << address.to_string();
        found = true;
      }
    }
    ASSERT_TRUE(found) << winner->prefix.to_string();
  }
}

TEST(SubtreePartition, CoversAllRoutes) {
  Pcg32 rng(17);
  const auto fib = small_fib(rng, 300);
  const auto result = subtree_partition(fib, 4);
  // Every original route appears somewhere.
  std::size_t found = 0;
  fib.for_each_route([&](const Route& route) {
    for (const auto& bucket : result.buckets) {
      if (std::find(bucket.routes.begin(), bucket.routes.end(), route) !=
          bucket.routes.end()) {
        ++found;
        return;
      }
    }
  });
  EXPECT_EQ(found, fib.size());
  EXPECT_EQ(result.total_entries(), fib.size() + result.redundancy);
}

TEST(SubtreePartition, IntroducesRedundancyOnOverlappingTables) {
  // One huge covering aggregate whose subtree cannot fit in a single
  // bucket: its route must be replicated into every bucket that receives
  // a carved piece of the subtree (Lin et al.'s redundancy).
  BinaryTrie fib;
  fib.insert(Prefix(Ipv4Address(0x0A000000u), 8), make_next_hop(1));
  for (std::uint32_t i = 0; i < 200; ++i) {
    fib.insert(Prefix(Ipv4Address(0x0A000000u | (i << 8)), 24),
               make_next_hop(2 + (i % 3)));
  }
  const auto result = subtree_partition(fib, 8);
  EXPECT_GT(result.redundancy, 0u);
  EXPECT_EQ(result.total_entries(), fib.size() + result.redundancy);
}

TEST(SubtreePartition, NoRedundancyNeededOnDisjointTables) {
  Pcg32 rng(23);
  const auto table = disjoint_table(rng, 200);
  BinaryTrie disjoint;
  for (const auto& route : table) disjoint.insert(route.prefix, route.next_hop);
  const auto result = subtree_partition(disjoint, 4);
  EXPECT_EQ(result.redundancy, 0u);
}

TEST(SubtreePartition, PrimaryCountsRoughlyEven) {
  Pcg32 rng(29);
  const auto fib = small_fib(rng, 1000);
  const auto result = subtree_partition(fib, 4);
  // Replica-inclusive sizes may vary, but no bucket should dwarf the
  // target of M/n by more than the carve granularity allows.
  EXPECT_LT(result.max_bucket(), fib.size());
  EXPECT_GT(result.min_bucket(), 0u);
}

// ---------------------------------------------------------------------------

TEST(IdbitPartition, RejectsNonPowerOfTwo) {
  BinaryTrie fib;
  fib.insert(Prefix(Ipv4Address(0x0A000000), 8), make_next_hop(1));
  EXPECT_THROW(idbit_partition(fib, 3), std::invalid_argument);
  EXPECT_THROW(idbit_partition(fib, 0), std::invalid_argument);
}

TEST(IdbitPartition, EveryAddressRoutableInItsBucket) {
  Pcg32 rng(31);
  const auto fib = small_fib(rng, 300);
  const auto result = idbit_partition(fib, 4);
  ASSERT_EQ(result.buckets.size(), 4u);
  // Each route is present in every bucket its addresses can hash to, so
  // the union must cover the table with multiplicity = redundancy.
  EXPECT_EQ(result.total_entries(), fib.size() + result.redundancy);
}

TEST(IdbitPartition, ShortPrefixesReplicate) {
  BinaryTrie fib;
  // A /4 is shorter than any selectable ID bit set from the first 16
  // bits unless all chosen bits are within the first 4 — force more.
  fib.insert(Prefix(Ipv4Address(0x00000000u), 1), make_next_hop(1));
  for (int i = 0; i < 32; ++i) {
    fib.insert(Prefix(Ipv4Address(0x80000000u | (std::uint32_t(i) << 20)), 16),
               make_next_hop(2));
  }
  const auto result = idbit_partition(fib, 4);
  // The /1 must appear in at least two buckets (at least one chosen bit
  // lies beyond its length).
  std::size_t copies = 0;
  for (const auto& bucket : result.buckets) {
    for (const auto& route : bucket.routes) {
      if (route.prefix.length() == 1) ++copies;
    }
  }
  EXPECT_GE(copies, 2u);
  EXPECT_GT(result.redundancy, 0u);
}

TEST(IdbitPartition, LessEvenThanCluePartition) {
  // Fig. 9's qualitative claim: SLPL cannot split evenly, CLUE can.
  workload::RibConfig config;
  config.table_size = 5'000;
  config.seed = 21;
  const auto fib = workload::generate_rib(config);
  const auto slpl = idbit_partition(fib, 8);
  const auto clue =
      even_partition(onrtc::compress(fib), 8);
  const double slpl_spread =
      static_cast<double>(slpl.max_bucket() - slpl.min_bucket());
  const double clue_spread =
      static_cast<double>(clue.max_bucket() - clue.min_bucket());
  EXPECT_GT(slpl_spread, clue_spread);
  EXPECT_LE(clue_spread, 1.0);
}

}  // namespace
}  // namespace clue::partition
