// FlatLookupTable differential fuzz: the flat direct-index image must
// agree with the authoritative BinaryTrie and with TcamChip's honest
// O(capacity) search_linear scan over randomized non-overlapping
// tables — including copy-on-write rebuilds after inserts, deletes,
// modifies, and simulated boundary migrations.
#include "engine/flat_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"
#include "netbase/rng.hpp"
#include "tcam/tcam_chip.hpp"
#include "trie/binary_trie.hpp"

namespace {

using clue::engine::FlatLookupTable;
using clue::engine::FlatTableConfig;
using clue::netbase::Ipv4Address;
using clue::netbase::make_next_hop;
using clue::netbase::NextHop;
using clue::netbase::Pcg32;
using clue::netbase::Prefix;
using clue::trie::BinaryTrie;

// A candidate prefix overlaps the stored set iff something at or above
// it covers its base, or something strictly below it lies within it.
bool overlaps_any(const BinaryTrie& table, const Prefix& prefix) {
  const auto cover = table.lookup_route(prefix.range_low());
  if (cover && cover->prefix.length() <= prefix.length()) return true;
  return !table.routes_within(prefix).empty();
}

Prefix random_prefix(Pcg32& rng, unsigned min_len, unsigned max_len) {
  const unsigned len = min_len + rng.next() % (max_len - min_len + 1);
  return Prefix(Ipv4Address(rng.next()), len);
}

// Builds a random non-overlapping table with lengths spanning both
// sides of the stride so level-2 blocks get real coverage.
BinaryTrie make_disjoint_table(std::size_t target, std::uint64_t seed) {
  BinaryTrie table;
  Pcg32 rng(seed);
  while (table.size() < target) {
    const Prefix candidate = random_prefix(rng, 8, 30);
    if (overlaps_any(table, candidate)) continue;
    table.insert(candidate, make_next_hop(1 + rng.next() % 255));
  }
  EXPECT_TRUE(table.is_disjoint());
  return table;
}

// Probe set: every route's range edges (where paint bugs live) plus
// their neighbours one address outside, plus uniform-random addresses.
std::vector<Ipv4Address> probe_addresses(const BinaryTrie& table,
                                         std::size_t random_count,
                                         std::uint64_t seed) {
  std::vector<Ipv4Address> probes;
  for (const auto& route : table.routes()) {
    const std::uint32_t lo = route.prefix.range_low().value();
    const std::uint32_t hi = route.prefix.range_high().value();
    probes.emplace_back(lo);
    probes.emplace_back(hi);
    if (lo != 0) probes.emplace_back(lo - 1);
    if (hi != 0xFFFF'FFFFu) probes.emplace_back(hi + 1);
  }
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < random_count; ++i) probes.emplace_back(rng.next());
  return probes;
}

void expect_matches_trie(const FlatLookupTable& flat, const BinaryTrie& table,
                         const std::vector<Ipv4Address>& probes) {
  for (const auto address : probes) {
    ASSERT_EQ(flat.lookup(address), table.lookup(address))
        << "address " << address.to_string();
  }
}

TEST(FlatTableTest, MatchesTrieAndLinearTcamScan) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto table = make_disjoint_table(2'000, seed);
    const FlatLookupTable flat(table);

    clue::tcam::TcamChip chip(4'096);
    std::size_t slot = 0;
    for (const auto& route : table.routes()) {
      chip.write(slot++, {route.prefix, route.next_hop});
    }

    const auto probes = probe_addresses(table, 4'000, seed * 7);
    for (const auto address : probes) {
      const NextHop expected = table.lookup(address);
      ASSERT_EQ(flat.lookup(address), expected)
          << "flat vs trie at " << address.to_string();
      const auto linear = chip.search_linear(address);
      const NextHop tcam_hop =
          linear.hit ? linear.next_hop : clue::netbase::kNoRoute;
      ASSERT_EQ(tcam_hop, expected)
          << "tcam linear vs trie at " << address.to_string();
    }
  }
}

TEST(FlatTableTest, NonDefaultStridesMatchTrie) {
  const auto table = make_disjoint_table(1'000, 44);
  for (const FlatTableConfig config :
       {FlatTableConfig{16, 8}, FlatTableConfig{20, 10},
        FlatTableConfig{28, 12}}) {
    const FlatLookupTable flat(table, config);
    expect_matches_trie(flat, table, probe_addresses(table, 2'000, 55));
  }
}

TEST(FlatTableTest, CowRebuildTracksInsertsDeletesAndModifies) {
  Pcg32 rng(0xF1A7);
  auto table = make_disjoint_table(1'500, 66);
  auto flat = std::make_unique<FlatLookupTable>(table);

  for (int round = 0; round < 40; ++round) {
    std::vector<Prefix> dirty;
    const auto routes = table.routes();
    for (int op = 0; op < 25; ++op) {
      const unsigned kind = rng.next() % 3;
      if (kind == 0) {  // insert somewhere free
        const Prefix candidate = random_prefix(rng, 8, 30);
        if (overlaps_any(table, candidate)) continue;
        table.insert(candidate, make_next_hop(1 + rng.next() % 255));
        dirty.push_back(candidate);
      } else if (!routes.empty()) {
        const auto& victim = routes[rng.next() % routes.size()];
        if (!table.find(victim.prefix)) continue;  // already erased
        if (kind == 1) {  // delete
          table.erase(victim.prefix);
        } else {  // modify in place
          table.insert(victim.prefix, make_next_hop(1 + rng.next() % 255));
        }
        dirty.push_back(victim.prefix);
      }
    }
    auto next = std::make_unique<FlatLookupTable>(*flat, table, dirty);
    flat = std::move(next);

    // The incremental snapshot must agree with the trie and with a
    // from-scratch build at the edges of every dirty region and beyond.
    std::vector<Ipv4Address> probes;
    for (const auto& prefix : dirty) {
      const std::uint32_t lo = prefix.range_low().value();
      const std::uint32_t hi = prefix.range_high().value();
      probes.emplace_back(lo);
      probes.emplace_back(hi);
      if (lo != 0) probes.emplace_back(lo - 1);
      if (hi != 0xFFFF'FFFFu) probes.emplace_back(hi + 1);
    }
    for (int i = 0; i < 512; ++i) probes.emplace_back(rng.next());
    expect_matches_trie(*flat, table, probes);
  }
  // After 40 rounds of drift, a final full sweep against a fresh build.
  const FlatLookupTable fresh(table);
  const auto probes = probe_addresses(table, 8'000, 77);
  expect_matches_trie(*flat, table, probes);
  for (const auto address : probes) {
    ASSERT_EQ(flat->lookup(address), fresh.lookup(address));
  }
}

TEST(FlatTableTest, MigrationRebuildMovesRangesBetweenSnapshots) {
  const auto whole = make_disjoint_table(2'000, 88);
  const auto routes = whole.routes();  // sorted by prefix ordering

  // Split at a boundary like the partitioner does, then migrate a band
  // of routes from the donor's bottom to the receiver's top.
  BinaryTrie donor;
  BinaryTrie receiver;
  const std::size_t split = routes.size() / 2;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    (i < split ? receiver : donor).insert(routes[i].prefix,
                                          routes[i].next_hop);
  }
  auto donor_flat = std::make_unique<FlatLookupTable>(donor);
  auto receiver_flat = std::make_unique<FlatLookupTable>(receiver);

  std::vector<Prefix> migrated;
  for (std::size_t i = split; i < split + 200 && i < routes.size(); ++i) {
    donor.erase(routes[i].prefix);
    receiver.insert(routes[i].prefix, routes[i].next_hop);
    migrated.push_back(routes[i].prefix);
  }
  // Receiver publishes fat first, donor shrinks after — both rebuilds
  // take the migrated prefixes as their dirty set.
  receiver_flat =
      std::make_unique<FlatLookupTable>(*receiver_flat, receiver, migrated);
  donor_flat = std::make_unique<FlatLookupTable>(*donor_flat, donor, migrated);

  expect_matches_trie(*receiver_flat, receiver,
                      probe_addresses(receiver, 4'000, 99));
  expect_matches_trie(*donor_flat, donor, probe_addresses(donor, 4'000, 111));
}

TEST(FlatTableTest, RejectsOverlapsBadHopsAndBadConfigs) {
  BinaryTrie overlapping;
  overlapping.insert(Prefix(Ipv4Address(0x0A000000u), 8), make_next_hop(1));
  overlapping.insert(Prefix(Ipv4Address(0x0A010000u), 16), make_next_hop(2));
  EXPECT_THROW(FlatLookupTable{overlapping}, std::invalid_argument);

  BinaryTrie bad_hop;
  bad_hop.insert(Prefix(Ipv4Address(0x0A000000u), 8),
                 NextHop{0x8000'0001u});
  EXPECT_FALSE(FlatLookupTable::hop_encodable(NextHop{0x8000'0001u}));
  EXPECT_THROW(FlatLookupTable{bad_hop}, std::invalid_argument);

  BinaryTrie ok;
  EXPECT_THROW(FlatLookupTable(ok, FlatTableConfig{4, 4}),
               std::invalid_argument);
  EXPECT_THROW(FlatLookupTable(ok, FlatTableConfig{30, 12}),
               std::invalid_argument);
  EXPECT_THROW(FlatLookupTable(ok, FlatTableConfig{24, 2}),
               std::invalid_argument);
  EXPECT_THROW(FlatLookupTable(ok, FlatTableConfig{16, 20}),
               std::invalid_argument);
}

TEST(FlatTableTest, EmptyTableAnswersNoRouteWithNoMemory) {
  BinaryTrie empty;
  const FlatLookupTable flat(empty);
  Pcg32 rng(123);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(flat.lookup(Ipv4Address(rng.next())), clue::netbase::kNoRoute);
  }
  EXPECT_EQ(flat.chunk_count(), 0u);
  EXPECT_EQ(flat.l2_block_count(), 0u);
}

TEST(FlatTableTest, DeletingLongRoutesReleasesLevel2AndChunks) {
  BinaryTrie table;
  // Three /26s inside one /24 slot -> one level-2 block; one /16 -> a
  // band of direct entries.
  const Prefix a(Ipv4Address(0xC0A80100u), 26);
  const Prefix b(Ipv4Address(0xC0A80140u), 26);
  const Prefix c(Ipv4Address(0xC0A801C0u), 26);
  const Prefix wide(Ipv4Address(0x0B000000u), 16);
  table.insert(a, make_next_hop(1));
  table.insert(b, make_next_hop(2));
  table.insert(c, make_next_hop(3));
  table.insert(wide, make_next_hop(4));

  auto flat = std::make_unique<FlatLookupTable>(table);
  EXPECT_EQ(flat->l2_block_count(), 1u);
  EXPECT_GT(flat->chunk_count(), 0u);

  table.erase(a);
  table.erase(b);
  table.erase(c);
  table.erase(wide);
  const std::vector<Prefix> dirty{a, b, c, wide};
  flat = std::make_unique<FlatLookupTable>(*flat, table, dirty);
  // Uniform collapse frees the level-2 block; whole-chunk clears drop
  // the chunks back to the null representation.
  EXPECT_EQ(flat->l2_block_count(), 0u);
  EXPECT_EQ(flat->chunk_count(), 0u);
  expect_matches_trie(*flat, table, probe_addresses(table, 2'000, 321));
}

TEST(FlatTableTest, SharesUntouchedChunksWithPreviousSnapshot) {
  auto table = make_disjoint_table(2'000, 444);
  const FlatLookupTable base(table);

  // One surgical modify: the rebuild may copy only chunks under it.
  const auto routes = table.routes();
  const Prefix touched = routes[routes.size() / 2].prefix;
  table.insert(touched, make_next_hop(200));
  const FlatLookupTable next(base, table, std::vector<Prefix>{touched});

  const std::size_t before = base.memory_bytes();
  const std::size_t after = next.memory_bytes();
  // Shared chunks are counted in both snapshots; the delta between the
  // two must be far below one full rebuild's worth of chunks.
  EXPECT_LT(after, before + (before / 4) + 64 * 1024);
  expect_matches_trie(next, table, probe_addresses(table, 2'000, 555));
}

}  // namespace
