file(REMOVE_RECURSE
  "CMakeFiles/clue_engine.dir/address_cache.cpp.o"
  "CMakeFiles/clue_engine.dir/address_cache.cpp.o.d"
  "CMakeFiles/clue_engine.dir/dred.cpp.o"
  "CMakeFiles/clue_engine.dir/dred.cpp.o.d"
  "CMakeFiles/clue_engine.dir/indexing_logic.cpp.o"
  "CMakeFiles/clue_engine.dir/indexing_logic.cpp.o.d"
  "CMakeFiles/clue_engine.dir/parallel_engine.cpp.o"
  "CMakeFiles/clue_engine.dir/parallel_engine.cpp.o.d"
  "CMakeFiles/clue_engine.dir/reorder_buffer.cpp.o"
  "CMakeFiles/clue_engine.dir/reorder_buffer.cpp.o.d"
  "CMakeFiles/clue_engine.dir/slpl_setup.cpp.o"
  "CMakeFiles/clue_engine.dir/slpl_setup.cpp.o.d"
  "libclue_engine.a"
  "libclue_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
