file(REMOVE_RECURSE
  "libclue_engine.a"
)
