
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/address_cache.cpp" "src/engine/CMakeFiles/clue_engine.dir/address_cache.cpp.o" "gcc" "src/engine/CMakeFiles/clue_engine.dir/address_cache.cpp.o.d"
  "/root/repo/src/engine/dred.cpp" "src/engine/CMakeFiles/clue_engine.dir/dred.cpp.o" "gcc" "src/engine/CMakeFiles/clue_engine.dir/dred.cpp.o.d"
  "/root/repo/src/engine/indexing_logic.cpp" "src/engine/CMakeFiles/clue_engine.dir/indexing_logic.cpp.o" "gcc" "src/engine/CMakeFiles/clue_engine.dir/indexing_logic.cpp.o.d"
  "/root/repo/src/engine/parallel_engine.cpp" "src/engine/CMakeFiles/clue_engine.dir/parallel_engine.cpp.o" "gcc" "src/engine/CMakeFiles/clue_engine.dir/parallel_engine.cpp.o.d"
  "/root/repo/src/engine/reorder_buffer.cpp" "src/engine/CMakeFiles/clue_engine.dir/reorder_buffer.cpp.o" "gcc" "src/engine/CMakeFiles/clue_engine.dir/reorder_buffer.cpp.o.d"
  "/root/repo/src/engine/slpl_setup.cpp" "src/engine/CMakeFiles/clue_engine.dir/slpl_setup.cpp.o" "gcc" "src/engine/CMakeFiles/clue_engine.dir/slpl_setup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trie/CMakeFiles/clue_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/rrcme/CMakeFiles/clue_rrcme.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/clue_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/clue_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
