# Empty dependencies file for clue_engine.
# This may be replaced when dependencies are built.
