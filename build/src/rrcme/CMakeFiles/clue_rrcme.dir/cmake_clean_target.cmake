file(REMOVE_RECURSE
  "libclue_rrcme.a"
)
