# Empty dependencies file for clue_rrcme.
# This may be replaced when dependencies are built.
