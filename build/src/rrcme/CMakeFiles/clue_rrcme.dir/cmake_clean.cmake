file(REMOVE_RECURSE
  "CMakeFiles/clue_rrcme.dir/rrc_me.cpp.o"
  "CMakeFiles/clue_rrcme.dir/rrc_me.cpp.o.d"
  "libclue_rrcme.a"
  "libclue_rrcme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_rrcme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
