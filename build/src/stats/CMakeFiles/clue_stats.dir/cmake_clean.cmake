file(REMOVE_RECURSE
  "CMakeFiles/clue_stats.dir/stats.cpp.o"
  "CMakeFiles/clue_stats.dir/stats.cpp.o.d"
  "libclue_stats.a"
  "libclue_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
