file(REMOVE_RECURSE
  "libclue_stats.a"
)
