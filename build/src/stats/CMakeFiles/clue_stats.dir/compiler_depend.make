# Empty compiler generated dependencies file for clue_stats.
# This may be replaced when dependencies are built.
