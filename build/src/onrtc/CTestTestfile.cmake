# CMake generated Testfile for 
# Source directory: /root/repo/src/onrtc
# Build directory: /root/repo/build/src/onrtc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
