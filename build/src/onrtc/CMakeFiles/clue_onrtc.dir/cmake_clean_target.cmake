file(REMOVE_RECURSE
  "libclue_onrtc.a"
)
