file(REMOVE_RECURSE
  "CMakeFiles/clue_onrtc.dir/baselines.cpp.o"
  "CMakeFiles/clue_onrtc.dir/baselines.cpp.o.d"
  "CMakeFiles/clue_onrtc.dir/compressed_fib.cpp.o"
  "CMakeFiles/clue_onrtc.dir/compressed_fib.cpp.o.d"
  "CMakeFiles/clue_onrtc.dir/onrtc.cpp.o"
  "CMakeFiles/clue_onrtc.dir/onrtc.cpp.o.d"
  "libclue_onrtc.a"
  "libclue_onrtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_onrtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
