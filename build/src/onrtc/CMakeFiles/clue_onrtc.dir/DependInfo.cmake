
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/onrtc/baselines.cpp" "src/onrtc/CMakeFiles/clue_onrtc.dir/baselines.cpp.o" "gcc" "src/onrtc/CMakeFiles/clue_onrtc.dir/baselines.cpp.o.d"
  "/root/repo/src/onrtc/compressed_fib.cpp" "src/onrtc/CMakeFiles/clue_onrtc.dir/compressed_fib.cpp.o" "gcc" "src/onrtc/CMakeFiles/clue_onrtc.dir/compressed_fib.cpp.o.d"
  "/root/repo/src/onrtc/onrtc.cpp" "src/onrtc/CMakeFiles/clue_onrtc.dir/onrtc.cpp.o" "gcc" "src/onrtc/CMakeFiles/clue_onrtc.dir/onrtc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trie/CMakeFiles/clue_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/clue_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
