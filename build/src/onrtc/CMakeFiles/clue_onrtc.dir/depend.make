# Empty dependencies file for clue_onrtc.
# This may be replaced when dependencies are built.
