# Empty dependencies file for clue_partition.
# This may be replaced when dependencies are built.
