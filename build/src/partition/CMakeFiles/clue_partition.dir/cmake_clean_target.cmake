file(REMOVE_RECURSE
  "libclue_partition.a"
)
