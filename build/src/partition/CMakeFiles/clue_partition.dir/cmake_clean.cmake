file(REMOVE_RECURSE
  "CMakeFiles/clue_partition.dir/partition.cpp.o"
  "CMakeFiles/clue_partition.dir/partition.cpp.o.d"
  "libclue_partition.a"
  "libclue_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
