# Empty dependencies file for clue_tcam.
# This may be replaced when dependencies are built.
