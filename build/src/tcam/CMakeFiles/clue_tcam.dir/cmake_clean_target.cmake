file(REMOVE_RECURSE
  "libclue_tcam.a"
)
