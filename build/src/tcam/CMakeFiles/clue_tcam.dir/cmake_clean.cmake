file(REMOVE_RECURSE
  "CMakeFiles/clue_tcam.dir/tcam_chip.cpp.o"
  "CMakeFiles/clue_tcam.dir/tcam_chip.cpp.o.d"
  "CMakeFiles/clue_tcam.dir/updater.cpp.o"
  "CMakeFiles/clue_tcam.dir/updater.cpp.o.d"
  "libclue_tcam.a"
  "libclue_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
