file(REMOVE_RECURSE
  "CMakeFiles/clue_netbase.dir/ipv4.cpp.o"
  "CMakeFiles/clue_netbase.dir/ipv4.cpp.o.d"
  "CMakeFiles/clue_netbase.dir/prefix.cpp.o"
  "CMakeFiles/clue_netbase.dir/prefix.cpp.o.d"
  "CMakeFiles/clue_netbase.dir/rng.cpp.o"
  "CMakeFiles/clue_netbase.dir/rng.cpp.o.d"
  "libclue_netbase.a"
  "libclue_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
