file(REMOVE_RECURSE
  "libclue_netbase.a"
)
