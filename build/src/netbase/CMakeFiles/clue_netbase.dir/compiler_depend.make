# Empty compiler generated dependencies file for clue_netbase.
# This may be replaced when dependencies are built.
