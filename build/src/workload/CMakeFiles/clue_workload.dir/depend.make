# Empty dependencies file for clue_workload.
# This may be replaced when dependencies are built.
