file(REMOVE_RECURSE
  "libclue_workload.a"
)
