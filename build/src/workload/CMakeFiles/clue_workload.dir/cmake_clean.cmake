file(REMOVE_RECURSE
  "CMakeFiles/clue_workload.dir/rib_gen.cpp.o"
  "CMakeFiles/clue_workload.dir/rib_gen.cpp.o.d"
  "CMakeFiles/clue_workload.dir/rib_io.cpp.o"
  "CMakeFiles/clue_workload.dir/rib_io.cpp.o.d"
  "CMakeFiles/clue_workload.dir/traffic_gen.cpp.o"
  "CMakeFiles/clue_workload.dir/traffic_gen.cpp.o.d"
  "CMakeFiles/clue_workload.dir/update_gen.cpp.o"
  "CMakeFiles/clue_workload.dir/update_gen.cpp.o.d"
  "libclue_workload.a"
  "libclue_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
