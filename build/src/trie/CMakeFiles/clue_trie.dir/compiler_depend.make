# Empty compiler generated dependencies file for clue_trie.
# This may be replaced when dependencies are built.
