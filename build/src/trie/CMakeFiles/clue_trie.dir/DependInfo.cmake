
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trie/binary_trie.cpp" "src/trie/CMakeFiles/clue_trie.dir/binary_trie.cpp.o" "gcc" "src/trie/CMakeFiles/clue_trie.dir/binary_trie.cpp.o.d"
  "/root/repo/src/trie/multibit_trie.cpp" "src/trie/CMakeFiles/clue_trie.dir/multibit_trie.cpp.o" "gcc" "src/trie/CMakeFiles/clue_trie.dir/multibit_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/clue_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
