file(REMOVE_RECURSE
  "libclue_trie.a"
)
