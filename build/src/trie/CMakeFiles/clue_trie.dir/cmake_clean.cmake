file(REMOVE_RECURSE
  "CMakeFiles/clue_trie.dir/binary_trie.cpp.o"
  "CMakeFiles/clue_trie.dir/binary_trie.cpp.o.d"
  "CMakeFiles/clue_trie.dir/multibit_trie.cpp.o"
  "CMakeFiles/clue_trie.dir/multibit_trie.cpp.o.d"
  "libclue_trie.a"
  "libclue_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
