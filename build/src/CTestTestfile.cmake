# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netbase")
subdirs("trie")
subdirs("onrtc")
subdirs("rrcme")
subdirs("tcam")
subdirs("partition")
subdirs("engine")
subdirs("update")
subdirs("system")
subdirs("workload")
subdirs("stats")
