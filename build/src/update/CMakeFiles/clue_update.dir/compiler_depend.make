# Empty compiler generated dependencies file for clue_update.
# This may be replaced when dependencies are built.
