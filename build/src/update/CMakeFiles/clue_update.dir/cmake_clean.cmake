file(REMOVE_RECURSE
  "CMakeFiles/clue_update.dir/clpl_pipeline.cpp.o"
  "CMakeFiles/clue_update.dir/clpl_pipeline.cpp.o.d"
  "CMakeFiles/clue_update.dir/clue_pipeline.cpp.o"
  "CMakeFiles/clue_update.dir/clue_pipeline.cpp.o.d"
  "libclue_update.a"
  "libclue_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
