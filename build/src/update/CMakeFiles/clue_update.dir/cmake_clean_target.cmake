file(REMOVE_RECURSE
  "libclue_update.a"
)
