# Empty compiler generated dependencies file for clue_system.
# This may be replaced when dependencies are built.
