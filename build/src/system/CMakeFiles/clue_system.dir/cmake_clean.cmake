file(REMOVE_RECURSE
  "CMakeFiles/clue_system.dir/clpl_system.cpp.o"
  "CMakeFiles/clue_system.dir/clpl_system.cpp.o.d"
  "CMakeFiles/clue_system.dir/clue_system.cpp.o"
  "CMakeFiles/clue_system.dir/clue_system.cpp.o.d"
  "libclue_system.a"
  "libclue_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
