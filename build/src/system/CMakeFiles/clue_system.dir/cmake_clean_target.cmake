file(REMOVE_RECURSE
  "libclue_system.a"
)
