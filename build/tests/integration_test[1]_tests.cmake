add_test([=[Integration.FullLifecycle]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=Integration.FullLifecycle]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Integration.FullLifecycle]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS Integration.FullLifecycle)
