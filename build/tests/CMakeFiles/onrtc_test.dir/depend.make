# Empty dependencies file for onrtc_test.
# This may be replaced when dependencies are built.
