file(REMOVE_RECURSE
  "CMakeFiles/onrtc_test.dir/onrtc_test.cpp.o"
  "CMakeFiles/onrtc_test.dir/onrtc_test.cpp.o.d"
  "onrtc_test"
  "onrtc_test.pdb"
  "onrtc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onrtc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
