# Empty compiler generated dependencies file for dred_test.
# This may be replaced when dependencies are built.
