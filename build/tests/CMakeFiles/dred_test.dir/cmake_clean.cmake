file(REMOVE_RECURSE
  "CMakeFiles/dred_test.dir/dred_test.cpp.o"
  "CMakeFiles/dred_test.dir/dred_test.cpp.o.d"
  "dred_test"
  "dred_test.pdb"
  "dred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
