file(REMOVE_RECURSE
  "CMakeFiles/binary_trie_test.dir/binary_trie_test.cpp.o"
  "CMakeFiles/binary_trie_test.dir/binary_trie_test.cpp.o.d"
  "binary_trie_test"
  "binary_trie_test.pdb"
  "binary_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
