# Empty compiler generated dependencies file for binary_trie_test.
# This may be replaced when dependencies are built.
