file(REMOVE_RECURSE
  "CMakeFiles/engine_config_test.dir/engine_config_test.cpp.o"
  "CMakeFiles/engine_config_test.dir/engine_config_test.cpp.o.d"
  "engine_config_test"
  "engine_config_test.pdb"
  "engine_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
