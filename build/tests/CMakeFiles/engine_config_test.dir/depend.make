# Empty dependencies file for engine_config_test.
# This may be replaced when dependencies are built.
