# Empty compiler generated dependencies file for clue_system_test.
# This may be replaced when dependencies are built.
