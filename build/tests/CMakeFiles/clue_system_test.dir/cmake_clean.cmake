file(REMOVE_RECURSE
  "CMakeFiles/clue_system_test.dir/clue_system_test.cpp.o"
  "CMakeFiles/clue_system_test.dir/clue_system_test.cpp.o.d"
  "clue_system_test"
  "clue_system_test.pdb"
  "clue_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clue_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
