# Empty dependencies file for rrcme_test.
# This may be replaced when dependencies are built.
