file(REMOVE_RECURSE
  "CMakeFiles/rrcme_test.dir/rrcme_test.cpp.o"
  "CMakeFiles/rrcme_test.dir/rrcme_test.cpp.o.d"
  "rrcme_test"
  "rrcme_test.pdb"
  "rrcme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrcme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
