# Empty dependencies file for rib_io_test.
# This may be replaced when dependencies are built.
