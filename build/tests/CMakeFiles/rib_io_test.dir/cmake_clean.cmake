file(REMOVE_RECURSE
  "CMakeFiles/rib_io_test.dir/rib_io_test.cpp.o"
  "CMakeFiles/rib_io_test.dir/rib_io_test.cpp.o.d"
  "rib_io_test"
  "rib_io_test.pdb"
  "rib_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rib_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
