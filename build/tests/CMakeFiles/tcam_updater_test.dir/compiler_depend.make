# Empty compiler generated dependencies file for tcam_updater_test.
# This may be replaced when dependencies are built.
