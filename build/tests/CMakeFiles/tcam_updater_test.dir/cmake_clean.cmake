file(REMOVE_RECURSE
  "CMakeFiles/tcam_updater_test.dir/tcam_updater_test.cpp.o"
  "CMakeFiles/tcam_updater_test.dir/tcam_updater_test.cpp.o.d"
  "tcam_updater_test"
  "tcam_updater_test.pdb"
  "tcam_updater_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcam_updater_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
