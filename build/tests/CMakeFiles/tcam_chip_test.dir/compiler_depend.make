# Empty compiler generated dependencies file for tcam_chip_test.
# This may be replaced when dependencies are built.
