file(REMOVE_RECURSE
  "CMakeFiles/tcam_chip_test.dir/tcam_chip_test.cpp.o"
  "CMakeFiles/tcam_chip_test.dir/tcam_chip_test.cpp.o.d"
  "tcam_chip_test"
  "tcam_chip_test.pdb"
  "tcam_chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcam_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
