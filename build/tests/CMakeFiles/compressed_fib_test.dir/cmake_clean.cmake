file(REMOVE_RECURSE
  "CMakeFiles/compressed_fib_test.dir/compressed_fib_test.cpp.o"
  "CMakeFiles/compressed_fib_test.dir/compressed_fib_test.cpp.o.d"
  "compressed_fib_test"
  "compressed_fib_test.pdb"
  "compressed_fib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_fib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
