file(REMOVE_RECURSE
  "CMakeFiles/clpl_system_test.dir/clpl_system_test.cpp.o"
  "CMakeFiles/clpl_system_test.dir/clpl_system_test.cpp.o.d"
  "clpl_system_test"
  "clpl_system_test.pdb"
  "clpl_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpl_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
