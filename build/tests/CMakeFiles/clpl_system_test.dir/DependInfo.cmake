
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/clpl_system_test.cpp" "tests/CMakeFiles/clpl_system_test.dir/clpl_system_test.cpp.o" "gcc" "tests/CMakeFiles/clpl_system_test.dir/clpl_system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/clue_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/clue_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/onrtc/CMakeFiles/clue_onrtc.dir/DependInfo.cmake"
  "/root/repo/build/src/rrcme/CMakeFiles/clue_rrcme.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/clue_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/clue_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/clue_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/clue_update.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clue_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clue_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/clue_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
