# Empty compiler generated dependencies file for clpl_system_test.
# This may be replaced when dependencies are built.
