file(REMOVE_RECURSE
  "CMakeFiles/multibit_trie_test.dir/multibit_trie_test.cpp.o"
  "CMakeFiles/multibit_trie_test.dir/multibit_trie_test.cpp.o.d"
  "multibit_trie_test"
  "multibit_trie_test.pdb"
  "multibit_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibit_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
