# Empty compiler generated dependencies file for multibit_trie_test.
# This may be replaced when dependencies are built.
