# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for multibit_trie_test.
