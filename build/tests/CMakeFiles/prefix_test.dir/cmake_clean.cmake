file(REMOVE_RECURSE
  "CMakeFiles/prefix_test.dir/prefix_test.cpp.o"
  "CMakeFiles/prefix_test.dir/prefix_test.cpp.o.d"
  "prefix_test"
  "prefix_test.pdb"
  "prefix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
