# Empty dependencies file for prefix_test.
# This may be replaced when dependencies are built.
