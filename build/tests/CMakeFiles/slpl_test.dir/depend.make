# Empty dependencies file for slpl_test.
# This may be replaced when dependencies are built.
