file(REMOVE_RECURSE
  "CMakeFiles/slpl_test.dir/slpl_test.cpp.o"
  "CMakeFiles/slpl_test.dir/slpl_test.cpp.o.d"
  "slpl_test"
  "slpl_test.pdb"
  "slpl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
