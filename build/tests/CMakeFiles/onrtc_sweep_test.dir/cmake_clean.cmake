file(REMOVE_RECURSE
  "CMakeFiles/onrtc_sweep_test.dir/onrtc_sweep_test.cpp.o"
  "CMakeFiles/onrtc_sweep_test.dir/onrtc_sweep_test.cpp.o.d"
  "onrtc_sweep_test"
  "onrtc_sweep_test.pdb"
  "onrtc_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onrtc_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
