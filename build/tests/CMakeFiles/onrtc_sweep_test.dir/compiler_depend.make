# Empty compiler generated dependencies file for onrtc_sweep_test.
# This may be replaced when dependencies are built.
