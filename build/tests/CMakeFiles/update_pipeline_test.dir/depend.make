# Empty dependencies file for update_pipeline_test.
# This may be replaced when dependencies are built.
