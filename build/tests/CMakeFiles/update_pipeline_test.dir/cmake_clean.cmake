file(REMOVE_RECURSE
  "CMakeFiles/update_pipeline_test.dir/update_pipeline_test.cpp.o"
  "CMakeFiles/update_pipeline_test.dir/update_pipeline_test.cpp.o.d"
  "update_pipeline_test"
  "update_pipeline_test.pdb"
  "update_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
