file(REMOVE_RECURSE
  "CMakeFiles/compressed_fib_fastpath_test.dir/compressed_fib_fastpath_test.cpp.o"
  "CMakeFiles/compressed_fib_fastpath_test.dir/compressed_fib_fastpath_test.cpp.o.d"
  "compressed_fib_fastpath_test"
  "compressed_fib_fastpath_test.pdb"
  "compressed_fib_fastpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_fib_fastpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
