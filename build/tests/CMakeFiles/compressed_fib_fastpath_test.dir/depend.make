# Empty dependencies file for compressed_fib_fastpath_test.
# This may be replaced when dependencies are built.
