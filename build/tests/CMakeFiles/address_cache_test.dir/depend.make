# Empty dependencies file for address_cache_test.
# This may be replaced when dependencies are built.
