file(REMOVE_RECURSE
  "CMakeFiles/address_cache_test.dir/address_cache_test.cpp.o"
  "CMakeFiles/address_cache_test.dir/address_cache_test.cpp.o.d"
  "address_cache_test"
  "address_cache_test.pdb"
  "address_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
