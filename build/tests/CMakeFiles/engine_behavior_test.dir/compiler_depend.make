# Empty compiler generated dependencies file for engine_behavior_test.
# This may be replaced when dependencies are built.
