file(REMOVE_RECURSE
  "CMakeFiles/engine_behavior_test.dir/engine_behavior_test.cpp.o"
  "CMakeFiles/engine_behavior_test.dir/engine_behavior_test.cpp.o.d"
  "engine_behavior_test"
  "engine_behavior_test.pdb"
  "engine_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
