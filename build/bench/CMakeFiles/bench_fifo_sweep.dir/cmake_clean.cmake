file(REMOVE_RECURSE
  "CMakeFiles/bench_fifo_sweep.dir/bench_fifo_sweep.cpp.o"
  "CMakeFiles/bench_fifo_sweep.dir/bench_fifo_sweep.cpp.o.d"
  "bench_fifo_sweep"
  "bench_fifo_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifo_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
