# Empty dependencies file for bench_fifo_sweep.
# This may be replaced when dependencies are built.
