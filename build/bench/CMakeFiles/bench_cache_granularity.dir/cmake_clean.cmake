file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_granularity.dir/bench_cache_granularity.cpp.o"
  "CMakeFiles/bench_cache_granularity.dir/bench_cache_granularity.cpp.o.d"
  "bench_cache_granularity"
  "bench_cache_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
