# Empty compiler generated dependencies file for bench_cache_granularity.
# This may be replaced when dependencies are built.
