# Empty dependencies file for bench_dred_exclusion.
# This may be replaced when dependencies are built.
