file(REMOVE_RECURSE
  "CMakeFiles/bench_dred_exclusion.dir/bench_dred_exclusion.cpp.o"
  "CMakeFiles/bench_dred_exclusion.dir/bench_dred_exclusion.cpp.o.d"
  "bench_dred_exclusion"
  "bench_dred_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dred_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
