file(REMOVE_RECURSE
  "CMakeFiles/bench_tcam_update.dir/bench_tcam_update.cpp.o"
  "CMakeFiles/bench_tcam_update.dir/bench_tcam_update.cpp.o.d"
  "bench_tcam_update"
  "bench_tcam_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcam_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
