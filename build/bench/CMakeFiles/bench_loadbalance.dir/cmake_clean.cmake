file(REMOVE_RECURSE
  "CMakeFiles/bench_loadbalance.dir/bench_loadbalance.cpp.o"
  "CMakeFiles/bench_loadbalance.dir/bench_loadbalance.cpp.o.d"
  "bench_loadbalance"
  "bench_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
