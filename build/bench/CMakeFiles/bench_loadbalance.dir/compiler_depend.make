# Empty compiler generated dependencies file for bench_loadbalance.
# This may be replaced when dependencies are built.
