# Empty dependencies file for bench_update_interference.
# This may be replaced when dependencies are built.
