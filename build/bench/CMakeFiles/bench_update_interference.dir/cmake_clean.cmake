file(REMOVE_RECURSE
  "CMakeFiles/bench_update_interference.dir/bench_update_interference.cpp.o"
  "CMakeFiles/bench_update_interference.dir/bench_update_interference.cpp.o.d"
  "bench_update_interference"
  "bench_update_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
