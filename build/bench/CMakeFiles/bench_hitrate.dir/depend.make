# Empty dependencies file for bench_hitrate.
# This may be replaced when dependencies are built.
