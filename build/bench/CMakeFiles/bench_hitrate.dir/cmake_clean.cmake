file(REMOVE_RECURSE
  "CMakeFiles/bench_hitrate.dir/bench_hitrate.cpp.o"
  "CMakeFiles/bench_hitrate.dir/bench_hitrate.cpp.o.d"
  "bench_hitrate"
  "bench_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
