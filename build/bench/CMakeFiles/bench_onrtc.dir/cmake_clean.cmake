file(REMOVE_RECURSE
  "CMakeFiles/bench_onrtc.dir/bench_onrtc.cpp.o"
  "CMakeFiles/bench_onrtc.dir/bench_onrtc.cpp.o.d"
  "bench_onrtc"
  "bench_onrtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_onrtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
