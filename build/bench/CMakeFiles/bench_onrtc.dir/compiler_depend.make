# Empty compiler generated dependencies file for bench_onrtc.
# This may be replaced when dependencies are built.
