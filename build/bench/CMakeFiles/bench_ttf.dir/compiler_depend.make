# Empty compiler generated dependencies file for bench_ttf.
# This may be replaced when dependencies are built.
