file(REMOVE_RECURSE
  "CMakeFiles/bench_ttf.dir/bench_ttf.cpp.o"
  "CMakeFiles/bench_ttf.dir/bench_ttf.cpp.o.d"
  "bench_ttf"
  "bench_ttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
