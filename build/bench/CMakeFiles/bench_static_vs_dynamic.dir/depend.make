# Empty dependencies file for bench_static_vs_dynamic.
# This may be replaced when dependencies are built.
