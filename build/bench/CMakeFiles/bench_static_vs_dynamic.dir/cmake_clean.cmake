file(REMOVE_RECURSE
  "CMakeFiles/bench_static_vs_dynamic.dir/bench_static_vs_dynamic.cpp.o"
  "CMakeFiles/bench_static_vs_dynamic.dir/bench_static_vs_dynamic.cpp.o.d"
  "bench_static_vs_dynamic"
  "bench_static_vs_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
