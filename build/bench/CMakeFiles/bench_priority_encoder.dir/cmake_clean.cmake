file(REMOVE_RECURSE
  "CMakeFiles/bench_priority_encoder.dir/bench_priority_encoder.cpp.o"
  "CMakeFiles/bench_priority_encoder.dir/bench_priority_encoder.cpp.o.d"
  "bench_priority_encoder"
  "bench_priority_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
