# Empty compiler generated dependencies file for bench_priority_encoder.
# This may be replaced when dependencies are built.
