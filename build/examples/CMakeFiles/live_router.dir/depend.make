# Empty dependencies file for live_router.
# This may be replaced when dependencies are built.
