file(REMOVE_RECURSE
  "CMakeFiles/live_router.dir/live_router.cpp.o"
  "CMakeFiles/live_router.dir/live_router.cpp.o.d"
  "live_router"
  "live_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
