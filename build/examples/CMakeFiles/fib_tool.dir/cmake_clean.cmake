file(REMOVE_RECURSE
  "CMakeFiles/fib_tool.dir/fib_tool.cpp.o"
  "CMakeFiles/fib_tool.dir/fib_tool.cpp.o.d"
  "fib_tool"
  "fib_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fib_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
