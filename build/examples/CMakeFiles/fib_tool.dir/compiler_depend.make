# Empty compiler generated dependencies file for fib_tool.
# This may be replaced when dependencies are built.
