# Empty compiler generated dependencies file for router_linecard.
# This may be replaced when dependencies are built.
