file(REMOVE_RECURSE
  "CMakeFiles/router_linecard.dir/router_linecard.cpp.o"
  "CMakeFiles/router_linecard.dir/router_linecard.cpp.o.d"
  "router_linecard"
  "router_linecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_linecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
