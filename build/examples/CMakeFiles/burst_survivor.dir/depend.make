# Empty dependencies file for burst_survivor.
# This may be replaced when dependencies are built.
