file(REMOVE_RECURSE
  "CMakeFiles/burst_survivor.dir/burst_survivor.cpp.o"
  "CMakeFiles/burst_survivor.dir/burst_survivor.cpp.o.d"
  "burst_survivor"
  "burst_survivor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_survivor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
