file(REMOVE_RECURSE
  "CMakeFiles/update_storm.dir/update_storm.cpp.o"
  "CMakeFiles/update_storm.dir/update_storm.cpp.o.d"
  "update_storm"
  "update_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
