# Empty compiler generated dependencies file for update_storm.
# This may be replaced when dependencies are built.
