// A router living through a day: lookups and BGP churn interleaved.
//
// Drives the state-accurate ClueSystem through alternating phases —
// a traffic burst (snapshotting the live chips into the throughput
// engine), then a batch of BGP updates applied end to end — and shows
// that forwarding stays correct and fast while the table changes
// underneath.
//
//   $ ./examples/live_router
#include <iostream>

#include "stats/stats.hpp"
#include "system/clue_system.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 50'000;
  rib_config.seed = 3001;
  const auto fib = clue::workload::generate_rib(rib_config);

  clue::system::SystemConfig system_config;
  clue::system::ClueSystem router(fib, system_config);
  std::cout << "boot: " << fib.size() << " routes -> "
            << router.total_tcam_entries() << " TCAM entries over "
            << router.tcam_count() << " chips\n\n";

  clue::workload::UpdateConfig update_config;
  update_config.seed = 3002;
  clue::workload::UpdateGenerator updates(fib, update_config);

  clue::stats::TablePrinter out({"Phase", "Speedup", "DRedHit", "Updates",
                                 "TTF2+3 mean(us)", "Entries"});
  for (int phase = 0; phase < 6; ++phase) {
    // --- Traffic phase: snapshot the live table into the engine. ------
    const auto setup = router.engine_setup();
    clue::engine::EngineConfig engine_config;
    clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue,
                                        engine_config, setup);
    std::vector<clue::netbase::Prefix> prefixes;
    for (const auto& route : router.fib().compressed().routes()) {
      prefixes.push_back(route.prefix);
    }
    clue::workload::TrafficConfig traffic_config;
    traffic_config.seed = 3003 + static_cast<std::uint64_t>(phase);
    traffic_config.zipf_skew = 1.05;
    clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
    const auto metrics =
        engine.run([&traffic] { return traffic.next(); }, 100'000);

    // --- Update phase: a burst of BGP churn through the system. -------
    clue::stats::Summary data_plane;
    constexpr int kBatch = 5'000;
    for (int i = 0; i < kBatch; ++i) {
      const auto sample = router.apply(updates.next());
      data_plane.add(sample.data_plane_ns() / 1000.0);
    }

    out.add_row({std::to_string(phase + 1),
                 fixed(metrics.speedup(engine_config.service_clocks), 3),
                 percent(metrics.dred_hit_rate()), std::to_string(kBatch),
                 fixed(data_plane.mean(), 4),
                 std::to_string(router.total_tcam_entries())});
  }
  out.print(std::cout);

  // Sanity: after six phases of churn, the data plane still equals the
  // control plane everywhere we look.
  clue::netbase::Pcg32 rng(3010);
  std::size_t checked = 0;
  for (; checked < 20'000; ++checked) {
    const clue::netbase::Ipv4Address address(rng.next());
    if (router.lookup(address) !=
        router.fib().ground_truth().lookup(address)) {
      std::cout << "\nMISMATCH at " << address.to_string() << "!\n";
      return 1;
    }
  }
  std::cout << "\n" << checked
            << " random lookups verified against the control plane after "
               "30000 updates — data plane never skipped a beat.\n";
  return 0;
}
