// A router living through a day: lookups and BGP churn, concurrently.
//
// Drives the threaded LookupRuntime — one worker thread per TCAM chip,
// lock-free home FIFOs, RCU-style table snapshots — while a control
// thread applies BGP updates in bursts *during* the traffic. Forwarding
// never pauses for an update: workers read epoch-protected snapshots,
// the control plane publishes new chip tables with an atomic pointer
// swap, and DRed caches are patched through per-worker control rings.
//
//   $ ./examples/live_router
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "obs/metrics_registry.hpp"
#include "stats/stats.hpp"
#include "system/clue_system.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

int main() {
  using clue::netbase::Ipv4Address;
  using clue::stats::fixed;
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 50'000;
  rib_config.seed = 3001;
  const auto fib = clue::workload::generate_rib(rib_config);

  clue::system::SystemConfig system_config;
  clue::system::ClueSystem router(fib, system_config);
  const auto runtime = router.runtime();
  std::cout << "boot: " << fib.size() << " routes -> "
            << runtime->fib().compressed().size()
            << " compressed entries over " << runtime->worker_count()
            << " worker threads\n\n";

  // Control thread: six bursts of BGP churn, applied end to end (table
  // publish + DRed sync) while the client below keeps looking up.
  constexpr int kPhases = 6;
  constexpr int kBatch = 5'000;
  std::atomic<int> phases_done{0};
  clue::stats::Summary data_plane_us;
  std::thread control([&] {
    clue::workload::UpdateConfig update_config;
    update_config.seed = 3002;
    clue::workload::UpdateGenerator updates(fib, update_config);
    for (int phase = 0; phase < kPhases; ++phase) {
      for (int i = 0; i < kBatch; ++i) {
        const auto sample = runtime->apply(updates.next());
        data_plane_us.add(sample.data_plane_ns() / 1000.0);
      }
      phases_done.fetch_add(1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Client thread (this one): traffic batches until the churn is done,
  // with a live stats line at the end of each churn phase.
  clue::netbase::Pcg32 rng(3003);
  std::vector<Ipv4Address> batch;
  std::uint64_t looked_up = 0;
  int phases_reported = 0;
  const auto start = std::chrono::steady_clock::now();
  while (phases_done.load(std::memory_order_acquire) < kPhases) {
    batch.clear();
    for (int i = 0; i < 4096; ++i) batch.emplace_back(rng.next());
    runtime->lookup_batch(batch);
    looked_up += batch.size();
    const int phase = phases_done.load(std::memory_order_acquire);
    if (phase > phases_reported) {
      phases_reported = phase;
      const auto m = runtime->metrics();
      const double so_far = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
      std::cout << "[phase " << phase << "/" << kPhases << "] "
                << fixed(static_cast<double>(looked_up) / so_far / 1e6, 3)
                << " Mlookups/s, " << m.updates_applied << " updates, "
                << "DRed hit " << percent(m.dred_hit_rate()) << ", "
                << m.tables_published << " tables published\n";
    }
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  control.join();

  const auto metrics = runtime->metrics();
  std::cout << "\n";
  clue::stats::TablePrinter out({"Metric", "Value"});
  out.add_row({"lookups during churn", std::to_string(looked_up)});
  out.add_row({"throughput (Mlookups/s)",
               fixed(static_cast<double>(looked_up) / elapsed / 1e6, 3)});
  out.add_row({"updates applied", std::to_string(metrics.updates_applied)});
  out.add_row({"data-plane update mean (us)", fixed(data_plane_us.mean(), 4)});
  out.add_row({"chip tables published",
               std::to_string(metrics.tables_published)});
  out.add_row({"tables reclaimed (epoch)",
               std::to_string(metrics.tables_reclaimed)});
  out.add_row({"DRed hit rate", percent(metrics.dred_hit_rate())});
  out.add_row({"diverted lookups", std::to_string(metrics.diverted)});
  out.print(std::cout);

  // Sanity: with the churn finished, the data plane must equal the
  // control plane everywhere we look.
  const auto& truth = runtime->fib().ground_truth();
  clue::netbase::Pcg32 verify_rng(3010);
  std::vector<Ipv4Address> sweep;
  for (int i = 0; i < 20'000; ++i) sweep.emplace_back(verify_rng.next());
  // Ask for latency samples so the metrics dump below also shows the
  // client-side submit-to-completion histogram.
  std::vector<double> latency_ns;
  const auto hops = runtime->lookup_batch(sweep, &latency_ns);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (hops[i] != truth.lookup(sweep[i])) {
      std::cout << "\nMISMATCH at " << sweep[i].to_string() << "!\n";
      return 1;
    }
  }
  runtime->reclaim();
  std::cout << "\n" << sweep.size()
            << " random lookups verified against the control plane after "
            << kPhases * kBatch
            << " concurrent updates — forwarding never paused, and every "
               "retired table version was reclaimed.\n";

  // Full observability export: runtime counters, per-worker service-time
  // histograms, and the TTF trace ring, in the human-readable shape.
  clue::obs::MetricsRegistry registry;
  runtime->export_metrics(registry);
  std::cout << "\n=== Metrics dump ===\n";
  registry.dump(std::cout);
  return 0;
}
