// Surviving a BGP update storm (the paper's §I motivation: backbone
// routers see up to 35K updates/s at traffic peaks).
//
// Replays an identical storm of updates through the whole CLUE update
// path (incremental ONRTC trie -> order-free TCAM -> DRed) and through
// the CLPL baseline (plain trie -> Shah-Gupta TCAM -> RRC-ME caches),
// then reports whether each system could keep up at 35K updates/s and
// how much lookup capacity the updates would steal.
//
//   $ ./examples/update_storm
#include <iostream>

#include "stats/stats.hpp"
#include "update/clpl_pipeline.hpp"
#include "update/clue_pipeline.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  constexpr std::size_t kUpdates = 35'000;  // one peak second
  clue::workload::RibConfig rib_config;
  rib_config.table_size = 80'000;
  rib_config.seed = 500;
  const auto fib = clue::workload::generate_rib(rib_config);

  clue::update::PipelineConfig pipeline_config;
  clue::update::CluePipeline clue_pipeline(fib, pipeline_config);
  clue::update::ClplPipeline clpl_pipeline(fib, pipeline_config);

  // Warm the caches so invalidation costs are realistic.
  std::vector<clue::netbase::Prefix> prefixes;
  fib.for_each_route([&prefixes](const clue::netbase::Route& route) {
    prefixes.push_back(route.prefix);
  });
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 501;
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto warm = traffic.generate(6'000);
  clue_pipeline.warm(warm);
  clpl_pipeline.warm(warm);

  clue::workload::UpdateConfig update_config;
  update_config.seed = 502;
  clue::workload::UpdateGenerator clue_updates(fib, update_config);
  clue::workload::UpdateGenerator clpl_updates(fib, update_config);

  clue::stats::Summary clue_dp, clpl_dp, clue_total, clpl_total;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    const auto a = clue_pipeline.apply(clue_updates.next());
    const auto b = clpl_pipeline.apply(clpl_updates.next());
    clue_dp.add(a.data_plane_ns());
    clpl_dp.add(b.data_plane_ns());
    clue_total.add(a.total_ns());
    clpl_total.add(b.total_ns());
  }

  const auto report = [](const char* name, const clue::stats::Summary& dp,
                         const clue::stats::Summary& total) {
    // The TCAM is blocked for lookups while being updated: data-plane
    // time × 35K/s is lookup capacity lost to the storm.
    const double busy =
        dp.mean() * static_cast<double>(dp.count()) / 1e9;  // s per second
    std::cout << name << ":\n"
              << "  data-plane time per update: " << fixed(dp.mean(), 1)
              << " ns (max " << fixed(dp.max(), 0) << ")\n"
              << "  lookup capacity consumed at 35K upd/s: "
              << percent(busy) << "\n"
              << "  total control+data time for the storm: "
              << fixed(total.mean() * static_cast<double>(total.count()) / 1e6,
                       1)
              << " ms\n";
  };
  report("CLUE", clue_dp, clue_total);
  report("CLPL", clpl_dp, clpl_total);

  std::cout << "\nCLUE's data-plane update budget is "
            << percent(clue_dp.mean() / clpl_dp.mean())
            << " of CLPL's — the TCAMs keep forwarding while BGP melts "
               "down.\n";
  return 0;
}
