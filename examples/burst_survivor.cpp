// Dynamic vs static redundancy under a traffic flash crowd.
//
// The reason CLPL/CLUE use *dynamic* redundancy at all (paper §I, §II-B):
// statically provisioned redundancy (SLPL) balances the long-term
// average, but Internet traffic is bursty — when the hot set shifts to
// one chip's partitions, only an adaptive mechanism keeps throughput up.
//
// This example runs the same engine twice: first with traffic matching
// the long-term profile, then with a flash crowd concentrated on one
// chip's address ranges, and shows the speedup staying near (N-1)h+1.
//
//   $ ./examples/burst_survivor
#include <iostream>

#include "engine/parallel_engine.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace {

clue::engine::EngineSetup build_setup(
    const std::vector<clue::netbase::Route>& table, std::size_t tcams) {
  clue::engine::EngineSetup setup;
  const auto partitions = clue::partition::even_partition(table, tcams);
  setup.tcam_routes.resize(tcams);
  for (std::size_t i = 0; i < tcams; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries =
      clue::partition::even_partition_boundaries(table, tcams);
  for (std::size_t i = 0; i < tcams; ++i) setup.bucket_to_tcam.push_back(i);
  return setup;
}

}  // namespace

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  constexpr std::size_t kTcams = 4;
  constexpr std::size_t kPackets = 300'000;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 600;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  const auto setup = build_setup(table, kTcams);

  clue::engine::EngineConfig config;

  const auto run = [&](const char* label,
                       const std::vector<clue::netbase::Prefix>& prefixes) {
    clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue,
                                        config, setup);
    clue::workload::TrafficConfig traffic_config;
    traffic_config.seed = 601;
    traffic_config.zipf_skew = 1.1;
    clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
    const auto metrics =
        engine.run([&traffic] { return traffic.next(); }, kPackets);
    const double h = metrics.dred_hit_rate();
    const double t = metrics.speedup(config.service_clocks);
    std::cout << label << ": speedup " << fixed(t, 2) << " / " << kTcams
              << ", DRed hit rate " << percent(h) << ", bound (N-1)h+1 = "
              << fixed(3.0 * h + 1.0, 2) << ", drops "
              << metrics.packets_dropped << "\n";
  };

  // Normal day: traffic spread over the whole table.
  std::vector<clue::netbase::Prefix> everywhere;
  for (const auto& route : table) everywhere.push_back(route.prefix);
  run("steady traffic      ", everywhere);

  // Flash crowd: every packet lands in TCAM 1's ranges.
  std::vector<clue::netbase::Prefix> flash;
  for (const auto& route : setup.tcam_routes[0]) flash.push_back(route.prefix);
  run("flash crowd on chip1", flash);

  std::cout << "\nEven with every packet homed at one chip, the other "
               "chips' DReds absorb the burst and the speedup stays well "
               "above 1 (the single-chip rate).\n";
  return 0;
}
