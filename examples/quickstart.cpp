// Quickstart: the CLUE library in ~60 lines.
//
// Build a small FIB, compress it with ONRTC, look addresses up, and push
// an incremental update end to end — printing the exact TCAM operations
// the data plane would execute.
//
//   $ ./examples/quickstart
#include <iostream>

#include "netbase/prefix.hpp"
#include "onrtc/compressed_fib.hpp"

int main() {
  using clue::netbase::Ipv4Address;
  using clue::netbase::make_next_hop;
  using clue::netbase::Prefix;

  // 1. A toy routing table: an aggregate and some more-specifics.
  clue::onrtc::CompressedFib fib;
  const struct {
    const char* prefix;
    std::uint32_t hop;
  } kRoutes[] = {
      {"10.0.0.0/8", 1},    {"10.1.0.0/16", 1}, {"10.2.0.0/16", 2},
      {"192.0.2.0/24", 3},  {"192.0.2.0/25", 3}, {"192.0.2.128/25", 3},
      {"198.51.100.0/24", 2},
  };
  for (const auto& route : kRoutes) {
    fib.announce(*Prefix::parse(route.prefix), make_next_hop(route.hop));
  }

  std::cout << "Ground truth: " << fib.ground_truth().size()
            << " routes; ONRTC-compressed: " << fib.size()
            << " disjoint prefixes:\n";
  for (const auto& route : fib.compressed().routes()) {
    std::cout << "  " << route.prefix.to_string() << " -> nh"
              << clue::netbase::to_index(route.next_hop) << "\n";
  }
  // 10.1/16 duplicates its covering /8; the three 192.0.2.x routes merge
  // into one /24 — the compressed image is smaller AND non-overlapping.

  // 2. Lookups hit the compressed image and always agree with LPM.
  for (const char* addr : {"10.1.2.3", "10.2.2.3", "192.0.2.200", "8.8.8.8"}) {
    const auto address = *Ipv4Address::parse(addr);
    std::cout << addr << " -> nh"
              << clue::netbase::to_index(fib.lookup(address)) << "\n";
  }

  // 3. An incremental update returns the exact data-plane diff: O(1)
  //    TCAM writes, no domino effect, no priority encoder involved.
  std::cout << "\nannounce 10.2.2.0/24 -> nh4 produces TCAM ops:\n";
  for (const auto& op : fib.announce(*Prefix::parse("10.2.2.0/24"),
                                     make_next_hop(4))) {
    const char* kind = op.kind == clue::onrtc::FibOpKind::kInsert ? "INSERT"
                       : op.kind == clue::onrtc::FibOpKind::kDelete
                           ? "DELETE"
                           : "MODIFY";
    std::cout << "  " << kind << " " << op.route.prefix.to_string() << " nh"
              << clue::netbase::to_index(op.route.next_hop) << "\n";
  }
  std::cout << "compressed size now " << fib.size() << "\n";
  return 0;
}
