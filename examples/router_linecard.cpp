// A backbone-router linecard, end to end (the paper's Fig. 1 system).
//
// Builds a realistic 100K-route FIB, compresses it with ONRTC, splits it
// evenly over four simulated TCAM chips, and drives the parallel lookup
// engine with bursty Zipf traffic — printing throughput, per-chip load,
// DRed behaviour and reorder statistics.
//
//   $ ./examples/router_linecard
#include <iostream>

#include "engine/parallel_engine.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  // --- Control plane: build and compress the FIB. -------------------------
  clue::workload::RibConfig rib_config;
  rib_config.table_size = 100'000;
  rib_config.seed = 404;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  std::cout << "FIB: " << fib.size() << " routes -> " << table.size()
            << " disjoint TCAM entries ("
            << percent(static_cast<double>(table.size()) /
                       static_cast<double>(fib.size()))
            << ")\n";

  // --- Partition over 4 chips, build the engine. --------------------------
  constexpr std::size_t kTcams = 4;
  const auto partitions = clue::partition::even_partition(table, kTcams);
  clue::engine::EngineSetup setup;
  setup.tcam_routes.resize(kTcams);
  for (std::size_t i = 0; i < kTcams; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
    std::cout << "  TCAM " << i + 1 << ": "
              << setup.tcam_routes[i].size() << " entries, range "
              << setup.tcam_routes[i].front().prefix.range_low().to_string()
              << " - "
              << setup.tcam_routes[i].back().prefix.range_high().to_string()
              << "\n";
  }
  setup.bucket_boundaries =
      clue::partition::even_partition_boundaries(table, kTcams);
  for (std::size_t i = 0; i < kTcams; ++i) setup.bucket_to_tcam.push_back(i);

  clue::engine::EngineConfig config;  // paper defaults: FIFO 256, DRed 1024
  clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue, config,
                                      setup);

  // --- Data plane: bursty traffic, one packet per clock. ------------------
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 405;
  traffic_config.zipf_skew = 1.1;
  traffic_config.burst_period = 50'000;  // hot set rotates mid-run
  std::vector<clue::netbase::Prefix> prefixes;
  prefixes.reserve(table.size());
  for (const auto& route : table) prefixes.push_back(route.prefix);
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);

  constexpr std::size_t kPackets = 500'000;
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, kPackets);

  // --- Report. -------------------------------------------------------------
  std::cout << "\nRan " << metrics.clocks << " clocks, completed "
            << metrics.packets_completed << "/" << metrics.packets_offered
            << " packets (" << metrics.packets_dropped << " dropped)\n";
  std::cout << "Speedup factor: "
            << fixed(metrics.speedup(config.service_clocks), 2) << " of "
            << kTcams << " chips\n";
  std::cout << "DRed: " << metrics.dred_lookups << " diverted lookups, hit "
            << percent(metrics.dred_hit_rate()) << ", "
            << metrics.dred_fills << " fills, 0 control-plane round trips ("
            << metrics.control_plane_interactions << " observed)\n";
  std::cout << "Reorder: " << metrics.out_of_order_completions
            << " out-of-order completions, max distance "
            << metrics.max_reorder_distance << " (sequence tags, Fig. 1 step "
            << "III)\n";
  for (std::size_t i = 0; i < kTcams; ++i) {
    std::cout << "  TCAM " << i + 1 << ": "
              << metrics.per_tcam_lookups[i] << " lookups ("
              << metrics.per_tcam_home[i] << " home), busy "
              << percent(static_cast<double>(metrics.per_tcam_busy[i]) /
                         static_cast<double>(metrics.clocks))
              << "\n";
  }
  return 0;
}
