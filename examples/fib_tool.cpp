// fib_tool — a small CLI over the library, for working with routing
// tables in the plain-text RIB format (see workload/rib_io.hpp).
//
//   fib_tool gen <size> <seed>            # synthesize a RIB to stdout
//   fib_tool compress < in.rib            # ONRTC vs ORTC vs leaf-push
//   fib_tool compress --emit < in.rib     # print the ONRTC table itself
//   fib_tool partition <n> < in.rib       # even partition summary
//   fib_tool lookup <addr>... < in.rib    # LPM a few addresses
//   fib_tool simulate <tcams> <packets> [dred] < in.rib
//                                         # run the parallel engine
//   fib_tool verify <updates> [seed] < in.rib
//                                         # stress incremental ONRTC
//
// Exit status: 0 on success, 1 on usage/parse errors.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/parallel_engine.hpp"
#include "onrtc/baselines.hpp"
#include "onrtc/compressed_fib.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/rib_io.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

int usage() {
  std::cerr << "usage: fib_tool gen <size> <seed>\n"
               "       fib_tool compress [--emit] < in.rib\n"
               "       fib_tool partition <n> < in.rib\n"
               "       fib_tool lookup <addr>... < in.rib\n"
               "       fib_tool simulate <tcams> <packets> [dred] < in.rib\n"
               "       fib_tool verify <updates> [seed] < in.rib\n";
  return 1;
}

// Replays a synthetic update storm against the incremental compressor
// and checks, periodically and at the end, that the incrementally
// maintained table equals a from-scratch compression — the library's
// central invariant, runnable against any user-supplied RIB.
int cmd_verify(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::size_t count = std::stoull(argv[0]);
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 1;

  const auto fib = clue::workload::read_rib_trie(std::cin);
  clue::onrtc::CompressedFib compressed(fib);
  clue::workload::UpdateConfig update_config;
  update_config.seed = seed;
  clue::workload::UpdateGenerator updates(fib, update_config);

  const std::size_t checkpoint = std::max<std::size_t>(count / 10, 1);
  for (std::size_t i = 1; i <= count; ++i) {
    const auto msg = updates.next();
    if (msg.kind == clue::workload::UpdateKind::kAnnounce) {
      compressed.announce(msg.prefix, msg.next_hop);
    } else {
      compressed.withdraw(msg.prefix);
    }
    if (i % checkpoint == 0 || i == count) {
      const auto rebuilt = clue::onrtc::compress(compressed.ground_truth());
      if (compressed.compressed().routes() != rebuilt) {
        std::cerr << "INVARIANT VIOLATION after update " << i << "\n";
        return 1;
      }
      if (!compressed.compressed().is_disjoint()) {
        std::cerr << "DISJOINTNESS VIOLATION after update " << i << "\n";
        return 1;
      }
      std::cout << "after " << i << " updates: " << compressed.size()
                << " regions, incremental == rebuild OK\n";
    }
  }
  std::cout << "verified " << count << " updates against "
            << fib.size() << "-route table\n";
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::size_t tcams = std::stoull(argv[0]);
  const std::size_t packets = std::stoull(argv[1]);
  const std::size_t dred = argc > 2 ? std::stoull(argv[2]) : 1024;

  const auto fib = clue::workload::read_rib_trie(std::cin);
  const auto table = clue::onrtc::compress(fib);
  const auto partitions = clue::partition::even_partition(table, tcams);
  clue::engine::EngineSetup setup;
  setup.tcam_routes.resize(tcams);
  for (std::size_t i = 0; i < tcams; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries =
      clue::partition::even_partition_boundaries(table, tcams);
  for (std::size_t i = 0; i < tcams; ++i) setup.bucket_to_tcam.push_back(i);

  clue::engine::EngineConfig config;
  config.tcam_count = tcams;
  config.dred_capacity = dred;
  config.track_reorder = true;
  clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue,
                                      config, setup);

  clue::workload::TrafficConfig traffic_config;
  traffic_config.zipf_skew = 1.0;
  std::vector<clue::netbase::Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, packets);

  std::cout << "table " << fib.size() << " -> " << table.size()
            << " compressed entries over " << tcams << " chips (DRed "
            << dred << "/chip)\n"
            << "completed " << metrics.packets_completed << "/"
            << metrics.packets_offered << " (dropped "
            << metrics.packets_dropped << ")\n"
            << "speedup "
            << clue::stats::fixed(metrics.speedup(config.service_clocks), 3)
            << ", DRed hit rate "
            << clue::stats::percent(metrics.dred_hit_rate())
            << ", reorder buffer max " << metrics.reorder_max_occupancy
            << " entries, mean hold "
            << clue::stats::fixed(metrics.reorder_mean_hold_clocks, 1)
            << " clocks\n";
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 2) return usage();
  clue::workload::RibConfig config;
  config.table_size = static_cast<std::size_t>(std::stoull(argv[0]));
  config.seed = std::stoull(argv[1]);
  const auto fib = clue::workload::generate_rib(config);
  clue::workload::write_rib(std::cout, fib.routes());
  return 0;
}

int cmd_compress(int argc, char** argv) {
  const bool emit = argc > 0 && std::string(argv[0]) == "--emit";
  const auto fib = clue::workload::read_rib_trie(std::cin);
  const auto onrtc = clue::onrtc::compress(fib);
  if (emit) {
    clue::workload::write_rib(std::cout, onrtc);
    return 0;
  }
  const auto ortc = clue::onrtc::ortc_compress(fib);
  const auto pushed = clue::onrtc::leaf_push(fib);
  clue::stats::TablePrinter table({"Table", "Entries", "vsOriginal",
                                   "Overlapping", "Encoder/Domino"});
  const auto row = [&](const char* name, std::size_t size, bool overlap) {
    table.add_row({name, std::to_string(size),
                   clue::stats::percent(static_cast<double>(size) /
                                        static_cast<double>(fib.size())),
                   overlap ? "yes" : "no", overlap ? "required" : "free"});
  };
  row("original", fib.size(), true);
  row("ortc (Draves et al.)", ortc.size(), true);
  row("onrtc (CLUE)", onrtc.size(), false);
  row("leaf-push", pushed.size(), false);
  table.print(std::cout);
  return 0;
}

int cmd_partition(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::size_t n = std::stoull(argv[0]);
  const auto fib = clue::workload::read_rib_trie(std::cin);
  const auto table = clue::onrtc::compress(fib);
  const auto result = clue::partition::even_partition(table, n);
  clue::stats::TablePrinter out({"Bucket", "Entries", "RangeLow", "RangeHigh"});
  for (std::size_t i = 0; i < result.buckets.size(); ++i) {
    const auto& routes = result.buckets[i].routes;
    out.add_row({std::to_string(i), std::to_string(routes.size()),
                 routes.empty() ? "-"
                                : routes.front().prefix.range_low().to_string(),
                 routes.empty() ? "-"
                                : routes.back().prefix.range_high().to_string()});
  }
  out.print(std::cout);
  return 0;
}

int cmd_lookup(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto fib = clue::workload::read_rib_trie(std::cin);
  for (int i = 0; i < argc; ++i) {
    const auto address = clue::netbase::Ipv4Address::parse(argv[i]);
    if (!address) {
      std::cerr << "bad address: " << argv[i] << "\n";
      return 1;
    }
    const auto route = fib.lookup_route(*address);
    if (route) {
      std::cout << argv[i] << " -> nh"
                << clue::netbase::to_index(route->next_hop) << " via "
                << route->prefix.to_string() << "\n";
    } else {
      std::cout << argv[i] << " -> no route\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen") return cmd_gen(argc - 2, argv + 2);
    if (command == "compress") return cmd_compress(argc - 2, argv + 2);
    if (command == "partition") return cmd_partition(argc - 2, argv + 2);
    if (command == "lookup") return cmd_lookup(argc - 2, argv + 2);
    if (command == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (command == "verify") return cmd_verify(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::cerr << "fib_tool: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
