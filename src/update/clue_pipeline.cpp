#include "update/clue_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>

#include "engine/dispatch_policy.hpp"

namespace clue::update {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

}  // namespace

CluePipeline::CluePipeline(const trie::BinaryTrie& fib,
                           const PipelineConfig& config)
    : fib_(fib) {
  std::size_t capacity = config.tcam_capacity;
  if (capacity == 0) {
    const double headroom = std::max(config.update_headroom, 0.0);
    capacity = static_cast<std::size_t>(
                   static_cast<double>(fib_.size()) * (1.0 + headroom)) +
               8192;
  }
  tcam_ = std::make_unique<tcam::ClueUpdater>(capacity);
  for (const auto& route : fib_.compressed().routes()) {
    tcam_->insert(tcam::TcamEntry{route.prefix, route.next_hop});
  }
  dreds_.reserve(config.dred_count);
  for (std::size_t i = 0; i < config.dred_count; ++i) {
    dreds_.push_back(
        std::make_unique<engine::DredStore>(config.dred_capacity));
  }
}

TtfSample CluePipeline::apply(const workload::UpdateMsg& message) {
  TtfSample sample;

  // --- TTF1: incremental ONRTC trie update (measured). -------------------
  const auto start = Clock::now();
  // Rollback token for a rejected admission: the exact prior route.
  const std::optional<NextHop> prior =
      fib_.ground_truth().find(message.prefix);
  const auto ops =
      message.kind == workload::UpdateKind::kAnnounce
          ? fib_.announce(message.prefix, message.next_hop)
          : fib_.withdraw(message.prefix);
  sample.ttf1_ns = elapsed_ns(start);

  // --- Admission control: reject before any chip write. ------------------
  // Counting every absent insert and crediting no delete is a true upper
  // bound on transient occupancy, so a passing update can never hit
  // TcamFullError mid-sequence and leave the chip half written.
  std::size_t projected = tcam_->size();
  for (const auto& op : ops) {
    if (op.kind == onrtc::FibOpKind::kInsert &&
        !tcam_->chip().slot_of(op.route.prefix)) {
      ++projected;
    }
  }
  if (projected > tcam_->chip().capacity()) {
    if (prior) {
      fib_.announce(message.prefix, *prior);
    } else if (message.kind == workload::UpdateKind::kAnnounce) {
      fib_.withdraw(message.prefix);
    }
    ++updates_rejected_;
    throw tcam::TcamFullError("CluePipeline::apply",
                              tcam_->chip().capacity());
  }

  // --- TTF2: order-free TCAM update, ≤1 shift per diff op. ---------------
  for (const auto& op : ops) {
    std::size_t tcam_ops = 0;
    switch (op.kind) {
      case onrtc::FibOpKind::kInsert:
      case onrtc::FibOpKind::kModify:
        tcam_ops = tcam_->insert(
            tcam::TcamEntry{op.route.prefix, op.route.next_hop});
        break;
      case onrtc::FibOpKind::kDelete:
        tcam_ops = tcam_->erase(op.route.prefix);
        break;
    }
    sample.ttf2_ns += static_cast<double>(tcam_ops) * CostModel::kTcamOpNs;
  }

  // --- TTF3: DRed synchronisation (§IV-C). --------------------------------
  // Insert: nothing to do. Delete/modify: one probe issued to all DReds
  // in parallel (they are independent chips), so each diff op costs one
  // TCAM operation of wall time regardless of how many chips held it.
  for (const auto& op : ops) {
    switch (op.kind) {
      case onrtc::FibOpKind::kInsert:
        break;
      case onrtc::FibOpKind::kDelete:
        for (auto& dred : dreds_) dred->erase(op.route.prefix);
        sample.ttf3_ns += CostModel::kTcamOpNs;
        break;
      case onrtc::FibOpKind::kModify:
        for (auto& dred : dreds_) {
          if (dred->contains(op.route.prefix)) dred->insert(op.route);
        }
        sample.ttf3_ns += CostModel::kTcamOpNs;
        break;
    }
  }
  return sample;
}

BatchTtfSample CluePipeline::apply_batch(
    std::span<const workload::UpdateMsg> messages) {
  BatchTtfSample batch;
  if (messages.empty()) return batch;

  // --- TTF1: every message's incremental ONRTC diff, in order. --------
  // per_msg[k] holds message k's raw diff ops so a suffix rollback can
  // drop them without re-running the kept prefix; priors[k] is the exact
  // ground-truth route before message k — the rollback token.
  const auto start = Clock::now();
  std::vector<std::vector<onrtc::FibOp>> per_msg;
  std::vector<std::optional<NextHop>> priors;
  per_msg.reserve(messages.size());
  priors.reserve(messages.size());
  for (const auto& message : messages) {
    priors.push_back(fib_.ground_truth().find(message.prefix));
    per_msg.push_back(
        message.kind == workload::UpdateKind::kAnnounce
            ? fib_.announce(message.prefix, message.next_hop)
            : fib_.withdraw(message.prefix));
  }
  batch.ttf.ttf1_ns = elapsed_ns(start);

  // --- Coalesce + admission with exact suffix rollback. ---------------
  // The merged ops are the burst's net table transition. If they would
  // overflow the TCAM, un-apply messages from the end (announce back the
  // prior route / withdraw the fresh one, in reverse order so each
  // inversion sees exactly the state its message saw) until the
  // remaining prefix fits. The committed prefix never touches a chip or
  // DRed until admission has passed, so the three stay consistent.
  std::size_t keep = messages.size();
  std::vector<onrtc::FibOp> raw;
  std::vector<onrtc::FibOp> merged;
  CoalesceStats stats;
  for (;;) {
    raw.clear();
    for (std::size_t k = 0; k < keep; ++k) {
      raw.insert(raw.end(), per_msg[k].begin(), per_msg[k].end());
    }
    merged = coalesce_ops(raw, &stats);
    std::size_t projected = tcam_->size();
    for (const auto& op : merged) {
      if (op.kind == onrtc::FibOpKind::kInsert &&
          !tcam_->chip().slot_of(op.route.prefix)) {
        ++projected;
      }
    }
    if (projected <= tcam_->chip().capacity() || keep == 0) break;
    --keep;
    const auto& message = messages[keep];
    if (priors[keep]) {
      fib_.announce(message.prefix, *priors[keep]);
    } else if (message.kind == workload::UpdateKind::kAnnounce) {
      fib_.withdraw(message.prefix);
    }
    ++updates_rejected_;
  }
  batch.applied = keep;
  batch.rejected = messages.size() - keep;
  batch.raw_ops = stats.raw_ops;
  batch.merged_ops = stats.merged_ops;

  // --- TTF2: one TCAM pass over the net ops. --------------------------
  for (const auto& op : merged) {
    std::size_t tcam_ops = 0;
    switch (op.kind) {
      case onrtc::FibOpKind::kInsert:
      case onrtc::FibOpKind::kModify:
        tcam_ops = tcam_->insert(
            tcam::TcamEntry{op.route.prefix, op.route.next_hop});
        break;
      case onrtc::FibOpKind::kDelete:
        tcam_ops = tcam_->erase(op.route.prefix);
        break;
    }
    batch.ttf.ttf2_ns +=
        static_cast<double>(tcam_ops) * CostModel::kTcamOpNs;
  }

  // --- TTF3: one DRed sweep over the net ops. -------------------------
  for (const auto& op : merged) {
    switch (op.kind) {
      case onrtc::FibOpKind::kInsert:
        break;
      case onrtc::FibOpKind::kDelete:
        for (auto& dred : dreds_) dred->erase(op.route.prefix);
        batch.ttf.ttf3_ns += CostModel::kTcamOpNs;
        break;
      case onrtc::FibOpKind::kModify:
        for (auto& dred : dreds_) {
          if (dred->contains(op.route.prefix)) dred->insert(op.route);
        }
        batch.ttf.ttf3_ns += CostModel::kTcamOpNs;
        break;
    }
  }
  return batch;
}

void CluePipeline::warm(const std::vector<Ipv4Address>& addresses) {
  // warm_cursor_ holds the next round-robin "home" index directly, so
  // the per-address step is a wrapping increment — no modulo in what is
  // a 400K-iteration loop on big-table bench setups.
  std::size_t home = warm_cursor_;
  const std::size_t dred_count = dreds_.size();
  for (const auto address : addresses) {
    const auto matched = fib_.compressed().lookup_route(address);
    if (!matched) continue;
    // Fill every DRed the exclusion rule allows for this home chip.
    for (std::size_t i = 0; i < dred_count; ++i) {
      if (engine::dred_may_cache(i, home)) dreds_[i]->insert(*matched);
    }
    if (++home == dred_count) home = 0;
  }
  warm_cursor_ = home;
}

NextHop CluePipeline::lookup(Ipv4Address address) {
  const auto result = tcam_->chip().search(address);
  return result.hit ? result.next_hop : netbase::kNoRoute;
}

void CluePipeline::export_metrics(obs::MetricsRegistry& registry) const {
  const std::size_t capacity = tcam_->chip().capacity();
  registry.set_counter("pipeline.routes", fib_.ground_truth().size());
  registry.set_counter("pipeline.compressed_routes", fib_.size());
  registry.set_counter("pipeline.tcam_entries", tcam_->size());
  registry.set_counter("pipeline.tcam_capacity", capacity);
  registry.set_counter("pipeline.updates_rejected", updates_rejected_);
  registry.set_gauge("pipeline.headroom_remaining",
                     capacity == 0
                         ? 0.0
                         : 1.0 - static_cast<double>(tcam_->size()) /
                                     static_cast<double>(capacity));
  for (std::size_t i = 0; i < dreds_.size(); ++i) {
    const std::string prefix = "pipeline.dred" + std::to_string(i);
    const auto& stats = dreds_[i]->stats();
    registry.set_counter(prefix + ".hits", stats.hits);
    registry.set_counter(prefix + ".lookups", stats.lookups);
    registry.set_gauge(prefix + ".hit_rate", stats.hit_rate());
  }
}

}  // namespace clue::update
