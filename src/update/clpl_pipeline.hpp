// ClplPipeline — the baseline whole-path update: uncompressed trie ->
// Shah-Gupta partial-order TCAM -> RRC-ME logical caches.
//
// This is the configuration the paper charges CLPL with in Figs. 10-14:
//   TTF1 — measured wall time of a plain (uncompressed) trie update;
//   TTF2 — Shah-Gupta block cascade, ≈15 shifts × 24 ns on real mixes;
//   TTF3 — RRC-ME cache maintenance: a control-plane SRAM walk of the
//          changed region plus one TCAM probe per stale cached prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/dred.hpp"
#include "tcam/updater.hpp"
#include "trie/binary_trie.hpp"
#include "update/clue_pipeline.hpp"  // PipelineConfig
#include "update/cost_model.hpp"
#include "workload/update_gen.hpp"

namespace clue::update {

class ClplPipeline {
 public:
  ClplPipeline(const trie::BinaryTrie& fib, const PipelineConfig& config);

  TtfSample apply(const workload::UpdateMsg& message);

  /// Populates the logical caches through RRC-ME, as lookup traffic
  /// would (every fill goes to all caches — CLPL has no exclusion rule).
  void warm(const std::vector<Ipv4Address>& addresses);

  netbase::NextHop lookup(netbase::Ipv4Address address);

  const trie::BinaryTrie& fib() const { return fib_; }
  const tcam::TcamChip& chip() const { return tcam_->chip(); }
  const engine::DredStore& cache(std::size_t i) const { return *caches_[i]; }
  std::size_t cache_count() const { return caches_.size(); }

 private:
  /// Nodes at/below `prefix` (the subtree RRC-ME's invalidation walks).
  std::size_t subtree_nodes(const netbase::Prefix& prefix) const;

  trie::BinaryTrie fib_;
  std::unique_ptr<tcam::ShahGuptaUpdater> tcam_;
  std::vector<std::unique_ptr<engine::DredStore>> caches_;
};

}  // namespace clue::update
