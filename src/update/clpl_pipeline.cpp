#include "update/clpl_pipeline.hpp"

#include <chrono>
#include <unordered_set>

#include "rrcme/rrc_me.hpp"

namespace clue::update {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

std::size_t count_nodes(const trie::BinaryTrie::Node* node) {
  if (!node) return 0;
  return 1 + count_nodes(node->child[0]) +
         count_nodes(node->child[1]);
}

}  // namespace

ClplPipeline::ClplPipeline(const trie::BinaryTrie& fib,
                           const PipelineConfig& config)
    : fib_(fib) {
  std::size_t capacity = config.tcam_capacity;
  if (capacity == 0) capacity = 4 * fib_.size() + 8192;
  tcam_ = std::make_unique<tcam::ShahGuptaUpdater>(capacity);
  fib_.for_each_route([this](const netbase::Route& route) {
    tcam_->insert(tcam::TcamEntry{route.prefix, route.next_hop});
  });
  caches_.reserve(config.dred_count);
  for (std::size_t i = 0; i < config.dred_count; ++i) {
    caches_.push_back(
        std::make_unique<engine::DredStore>(config.dred_capacity));
  }
}

std::size_t ClplPipeline::subtree_nodes(const netbase::Prefix& prefix) const {
  return count_nodes(fib_.node_at(prefix));
}

TtfSample ClplPipeline::apply(const workload::UpdateMsg& message) {
  TtfSample sample;

  // --- TTF1: plain trie update (measured; the paper's ground truth). -----
  const auto start = Clock::now();
  bool table_changed;
  if (message.kind == workload::UpdateKind::kAnnounce) {
    const auto existing = fib_.find(message.prefix);
    table_changed = !existing || *existing != message.next_hop;
    fib_.insert(message.prefix, message.next_hop);
  } else {
    table_changed = fib_.erase(message.prefix);
  }
  sample.ttf1_ns = elapsed_ns(start);
  if (!table_changed) return sample;

  // --- TTF2: Shah-Gupta partial-order TCAM update. ------------------------
  const std::size_t tcam_ops =
      message.kind == workload::UpdateKind::kAnnounce
          ? tcam_->insert(tcam::TcamEntry{message.prefix, message.next_hop})
          : tcam_->erase(message.prefix);
  sample.ttf2_ns = static_cast<double>(tcam_ops) * CostModel::kTcamOpNs;

  // --- TTF3: RRC-ME cache maintenance. ------------------------------------
  // The control plane re-walks the changed region in SRAM (path down to
  // the prefix plus its subtree — the expansions RRC-ME may have handed
  // out all live there), then probes the caches once per stale prefix.
  // Probes hit all chips in parallel, so each distinct stale prefix
  // costs one TCAM operation of wall time.
  const std::size_t walk =
      message.prefix.length() + subtree_nodes(message.prefix);
  sample.ttf3_ns =
      static_cast<double>(walk) * CostModel::kSramAccessNs;
  std::unordered_set<netbase::Prefix> stale;
  for (auto& cache : caches_) {
    for (const auto& victim : cache->overlapping(message.prefix)) {
      stale.insert(victim);
      cache->erase(victim);
    }
  }
  sample.ttf3_ns +=
      static_cast<double>(stale.size()) * CostModel::kTcamOpNs;
  return sample;
}

void ClplPipeline::warm(const std::vector<netbase::Ipv4Address>& addresses) {
  for (const auto address : addresses) {
    const auto fill = rrcme::minimal_expansion(fib_, address);
    if (!fill) continue;
    for (auto& cache : caches_) {
      cache->insert(netbase::Route{fill->prefix, fill->next_hop});
    }
  }
}

netbase::NextHop ClplPipeline::lookup(netbase::Ipv4Address address) {
  const auto result = tcam_->chip().search(address);
  return result.hit ? result.next_hop : netbase::kNoRoute;
}

}  // namespace clue::update
