#include "update/group_commit.hpp"

#include <unordered_map>

namespace clue::update {

namespace {

using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;
using onrtc::FibOp;
using onrtc::FibOpKind;

/// Per-prefix fold state: what the table held when the burst first
/// touched the prefix, and what it holds now.
struct Fold {
  Prefix prefix;
  bool initially_present = false;
  /// Known only when the first op was a delete (its route carries the
  /// old hop); a first-op modify leaves it unknown.
  bool initial_hop_known = false;
  NextHop initial_hop{};
  bool present = false;
  NextHop hop{};
  /// The old hop the most recent delete op carried, for emitting a net
  /// delete after a modify-then-delete sequence.
  NextHop deleted_hop{};
};

}  // namespace

std::vector<FibOp> coalesce_ops(std::span<const FibOp> raw,
                                CoalesceStats* stats) {
  // First-touch order keeps the emitted stream deterministic (and equal
  // to the raw stream whenever nothing coalesces).
  std::vector<Fold> folds;
  folds.reserve(raw.size());
  std::unordered_map<Prefix, std::size_t> index;
  index.reserve(raw.size());

  for (const auto& op : raw) {
    const auto [it, fresh] =
        index.try_emplace(op.route.prefix, folds.size());
    if (fresh) {
      Fold fold;
      fold.prefix = op.route.prefix;
      // The first op tells us the initial state: an insert means the
      // prefix was absent; a delete/modify means it was present.
      fold.initially_present = op.kind != FibOpKind::kInsert;
      if (op.kind == FibOpKind::kDelete) {
        fold.initial_hop_known = true;
        fold.initial_hop = op.route.next_hop;  // delete carries the old hop
      }
      folds.push_back(fold);
    }
    Fold& fold = folds[it->second];
    switch (op.kind) {
      case FibOpKind::kInsert:
      case FibOpKind::kModify:
        fold.present = true;
        fold.hop = op.route.next_hop;
        break;
      case FibOpKind::kDelete:
        fold.present = false;
        fold.deleted_hop = op.route.next_hop;
        break;
    }
  }

  std::vector<FibOp> merged;
  merged.reserve(folds.size());
  for (const Fold& fold : folds) {
    if (!fold.initially_present && fold.present) {
      merged.push_back(
          FibOp{FibOpKind::kInsert, Route{fold.prefix, fold.hop}});
    } else if (fold.initially_present && !fold.present) {
      // Carry whichever old hop we know — consumers erase by prefix and
      // only report the hop, so either the initial or the last-deleted
      // value is faithful.
      const NextHop old_hop =
          fold.initial_hop_known ? fold.initial_hop : fold.deleted_hop;
      merged.push_back(
          FibOp{FibOpKind::kDelete, Route{fold.prefix, old_hop}});
    } else if (fold.initially_present && fold.present) {
      // Present throughout: a net modify, unless we can prove the hop
      // came back to where it started (first op was a delete, so the
      // initial hop is known).
      if (!(fold.initial_hop_known && fold.initial_hop == fold.hop)) {
        merged.push_back(
            FibOp{FibOpKind::kModify, Route{fold.prefix, fold.hop}});
      }
    }
    // initially absent && finally absent: insert+delete cancelled.
  }

  if (stats) {
    stats->raw_ops = raw.size();
    stats->merged_ops = merged.size();
  }
  return merged;
}

}  // namespace clue::update
