// CluePipeline — the paper's whole-path incremental update (Fig. 6),
// CLUE flavour: ONRTC-compressed trie -> order-free TCAM -> DRed.
//
// apply() pushes one BGP update end to end and returns its TTF split:
//   TTF1 — measured wall time of the incremental ONRTC trie update;
//   TTF2 — TCAM operations × 24 ns (ClueUpdater: ≤1 shift per diff op);
//   TTF3 — DRed synchronisation: inserts need nothing, deletes/modifies
//          are one parallel probe across all DReds (24 ns per diff op).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/dred.hpp"
#include "obs/metrics_registry.hpp"
#include "onrtc/compressed_fib.hpp"
#include "tcam/updater.hpp"
#include "update/cost_model.hpp"
#include "update/group_commit.hpp"
#include "workload/update_gen.hpp"

namespace clue::update {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;

struct PipelineConfig {
  /// Explicit TCAM capacity; 0 = auto-size from the compressed table
  /// with `update_headroom` growth headroom (see below).
  std::size_t tcam_capacity = 0;
  /// Fraction of growth headroom the auto-sized capacity reserves above
  /// the initial compressed-table size: capacity = size * (1 +
  /// update_headroom) + 8192 slack. The default 3.0 (i.e. +300%) keeps
  /// the historical "4x table" sizing. Ignored when tcam_capacity is
  /// set.
  double update_headroom = 3.0;
  std::size_t dred_count = 4;
  std::size_t dred_capacity = 1024;
};

class CluePipeline {
 public:
  CluePipeline(const trie::BinaryTrie& fib, const PipelineConfig& config);

  /// Applies one update message through trie, TCAM and DRed.
  ///
  /// An update whose worst-case growth would overflow the TCAM is
  /// rejected *before* any chip or DRed write: the trie diff is rolled
  /// back and tcam::TcamFullError is thrown, leaving trie, TCAM and
  /// DReds mutually consistent (the caller can drop the update, resize,
  /// or shed load — the pipeline object stays usable).
  TtfSample apply(const workload::UpdateMsg& message);

  /// Group commit: applies a whole burst as one table transition. All
  /// trie diffs run first (TTF1), their diff ops are coalesced to the
  /// burst's net effect (insert+delete pairs cancel, modifies
  /// last-writer-win), and the TCAM plus DReds are written once per net
  /// op — TTF2/TTF3 are paid per net change, not per message.
  ///
  /// Admission is exact at batch granularity: if the merged ops would
  /// overflow the TCAM, messages are rolled back from the *end* of the
  /// batch (trie restored message by message) until the remainder fits;
  /// the committed prefix stays consistent across trie, TCAM, and DReds,
  /// and the rejected suffix is counted in `rejected` (and in
  /// updates_rejected()) instead of throwing.
  BatchTtfSample apply_batch(std::span<const workload::UpdateMsg> messages);

  /// Simulates lookup traffic to populate the DReds the way a running
  /// engine would (each matched region cached in all DReds but one,
  /// round-robin over the "home" chip).
  void warm(const std::vector<Ipv4Address>& addresses);

  /// Data-plane lookup straight from the TCAM chip.
  NextHop lookup(Ipv4Address address);

  const onrtc::CompressedFib& fib() const { return fib_; }
  const tcam::TcamChip& chip() const { return tcam_->chip(); }
  const engine::DredStore& dred(std::size_t i) const { return *dreds_[i]; }
  std::size_t dred_count() const { return dreds_.size(); }

  /// The enforced TCAM capacity (explicit or auto-sized).
  std::size_t tcam_capacity() const { return tcam_->chip().capacity(); }
  /// Updates rejected with TcamFullError (after trie rollback).
  std::uint64_t updates_rejected() const { return updates_rejected_; }

  /// Fills `registry` with pipeline sizing and pressure metrics —
  /// notably "pipeline.headroom_remaining", the fraction of TCAM
  /// capacity still free, so operators see overflow coming before
  /// apply() starts rejecting.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  onrtc::CompressedFib fib_;
  std::unique_ptr<tcam::ClueUpdater> tcam_;
  std::vector<std::unique_ptr<engine::DredStore>> dreds_;
  /// Next round-robin "home" chip index for warm(); always < dred count.
  std::size_t warm_cursor_ = 0;
  std::uint64_t updates_rejected_ = 0;
};

}  // namespace clue::update
