// CluePipeline — the paper's whole-path incremental update (Fig. 6),
// CLUE flavour: ONRTC-compressed trie -> order-free TCAM -> DRed.
//
// apply() pushes one BGP update end to end and returns its TTF split:
//   TTF1 — measured wall time of the incremental ONRTC trie update;
//   TTF2 — TCAM operations × 24 ns (ClueUpdater: ≤1 shift per diff op);
//   TTF3 — DRed synchronisation: inserts need nothing, deletes/modifies
//          are one parallel probe across all DReds (24 ns per diff op).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/dred.hpp"
#include "onrtc/compressed_fib.hpp"
#include "tcam/updater.hpp"
#include "update/cost_model.hpp"
#include "workload/update_gen.hpp"

namespace clue::update {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;

struct PipelineConfig {
  /// 0 = size automatically (table size + 50 % update headroom).
  std::size_t tcam_capacity = 0;
  std::size_t dred_count = 4;
  std::size_t dred_capacity = 1024;
};

class CluePipeline {
 public:
  CluePipeline(const trie::BinaryTrie& fib, const PipelineConfig& config);

  /// Applies one update message through trie, TCAM and DRed.
  TtfSample apply(const workload::UpdateMsg& message);

  /// Simulates lookup traffic to populate the DReds the way a running
  /// engine would (each matched region cached in all DReds but one,
  /// round-robin over the "home" chip).
  void warm(const std::vector<Ipv4Address>& addresses);

  /// Data-plane lookup straight from the TCAM chip.
  NextHop lookup(Ipv4Address address);

  const onrtc::CompressedFib& fib() const { return fib_; }
  const tcam::TcamChip& chip() const { return tcam_->chip(); }
  const engine::DredStore& dred(std::size_t i) const { return *dreds_[i]; }
  std::size_t dred_count() const { return dreds_.size(); }

 private:
  onrtc::CompressedFib fib_;
  std::unique_ptr<tcam::ClueUpdater> tcam_;
  std::vector<std::unique_ptr<engine::DredStore>> dreds_;
  std::size_t warm_cursor_ = 0;
};

}  // namespace clue::update
