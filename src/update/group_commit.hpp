// Group-commit primitives shared by every batched update path
// (CluePipeline, ClueSystem, runtime::LookupRuntime).
//
// A BGP burst delivers many messages back to back; running each one's
// ONRTC diff is unavoidable (TTF1), but everything downstream — TCAM
// writes, flat-chunk rebuilds, epoch publishes, DRed probes — can be
// paid once per *net* table change instead of once per message. The
// coalescer folds the concatenated diff-op stream of a burst into its
// net effect per prefix:
//
//   insert then delete   -> nothing (the prefix never really existed)
//   delete then insert   -> modify (or nothing when the hop returns)
//   modify then modify   -> last writer wins
//   insert then modify   -> insert of the final hop
//   modify then delete   -> delete
//
// The fold is exact because ONRTC diff streams are per-prefix state
// transitions: each op either creates, rewrites, or removes one disjoint
// region, so the net transition (initial state -> final state) is all
// the data plane ever needs to install.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "onrtc/compressed_fib.hpp"
#include "update/cost_model.hpp"

namespace clue::update {

/// How much work coalescing removed from a burst's diff stream.
struct CoalesceStats {
  std::size_t raw_ops = 0;     ///< ops before the fold
  std::size_t merged_ops = 0;  ///< ops actually installed

  std::size_t cancelled() const { return raw_ops - merged_ops; }
};

/// Folds `raw` (the concatenated, in-order diff ops of a burst) into the
/// minimal per-prefix net op list, first-touch order preserved. `stats`,
/// when non-null, receives the before/after op counts.
std::vector<onrtc::FibOp> coalesce_ops(std::span<const onrtc::FibOp> raw,
                                       CoalesceStats* stats = nullptr);

/// One burst's end-to-end result: the TTF decomposition of the whole
/// batch (one group commit, not per message) plus admission and
/// coalescing accounting.
struct BatchTtfSample {
  TtfSample ttf;               ///< stage spans for the whole batch
  std::size_t applied = 0;     ///< messages committed (batch prefix)
  std::size_t rejected = 0;    ///< messages rolled back (batch suffix)
  std::size_t raw_ops = 0;     ///< diff ops before coalescing
  std::size_t merged_ops = 0;  ///< diff ops actually installed
};

}  // namespace clue::update
