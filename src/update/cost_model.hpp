// Hardware cost model for TTF accounting (paper §V-A).
//
// The paper's testbed TCAM (Cypress CYNSE70256, 41.5 MHz) costs ≈24 ns
// per operation — one search, one entry write, or one entry move — and
// every TTF2/TTF3 number in the paper is a multiple of it. Control-plane
// SRAM node visits (the trie RRC-ME walks) are charged separately.
#pragma once

namespace clue::update {

struct CostModel {
  /// One TCAM search / write / shift: 1 s / 41.5 MHz ≈ 24 ns.
  static constexpr double kTcamOpNs = 24.0;
  /// One control-plane SRAM node visit during a trie walk.
  static constexpr double kSramAccessNs = 10.0;
};

/// One update message's Time-To-Fresh decomposition (paper §IV).
struct TtfSample {
  double ttf1_ns = 0;  ///< trie (control-plane software) update time
  double ttf2_ns = 0;  ///< TCAM table update time
  double ttf3_ns = 0;  ///< DRed / logical-cache synchronisation time

  double data_plane_ns() const { return ttf2_ns + ttf3_ns; }
  double total_ns() const { return ttf1_ns + ttf2_ns + ttf3_ns; }
};

}  // namespace clue::update
