#include "tcam/updater.hpp"

#include <numeric>
#include <stdexcept>

namespace clue::tcam {

namespace {

// Cost convention shared by all updaters: one entry write, one entry
// move (relocation) and one standalone invalidate each count as one TCAM
// operation — 24 ns apiece under the paper's CYNSE70256 model. A move
// implicitly vacates its source, so it is *one* operation, not two.
constexpr std::size_t kWriteCost = 1;

}  // namespace

// ---------------------------------------------------------------------------
// NaiveUpdater — Fig. 7(a)

std::size_t NaiveUpdater::total() const {
  return std::accumulate(count_.begin(), count_.end(), std::size_t{0});
}

std::size_t NaiveUpdater::insert_position(unsigned length) const {
  // Blocks sorted by descending length starting at slot 0; a new entry
  // goes to the end of its own block.
  std::size_t position = 0;
  for (unsigned l = length; l <= Prefix::kMaxLength; ++l) {
    position += count_[l];
  }
  return position;
}

std::size_t NaiveUpdater::insert(const TcamEntry& entry) {
  if (const auto slot = chip_->slot_of(entry.prefix)) {
    chip_->write(*slot, entry);  // next-hop change: in-place rewrite
    return kWriteCost;
  }
  const std::size_t used = total();
  if (used == chip_->capacity()) {
    throw TcamFullError("NaiveUpdater::insert", chip_->capacity());
  }
  const std::size_t position = insert_position(entry.prefix.length());
  std::size_t operations = 0;
  for (std::size_t slot = used; slot > position; --slot) {
    chip_->move(slot - 1, slot);
    ++operations;
  }
  chip_->write(position, entry);
  ++count_[entry.prefix.length()];
  return operations + kWriteCost;
}

std::size_t NaiveUpdater::erase(const Prefix& prefix) {
  const auto slot = chip_->slot_of(prefix);
  if (!slot) return 0;
  const std::size_t used = total();
  std::size_t operations = 0;
  if (*slot == used - 1) {
    chip_->invalidate(*slot);
    ++operations;
  } else {
    chip_->invalidate(*slot);
    ++operations;
    for (std::size_t s = *slot + 1; s < used; ++s) {
      chip_->move(s, s - 1);
      ++operations;
    }
  }
  --count_[prefix.length()];
  return operations;
}

// ---------------------------------------------------------------------------
// ShahGuptaUpdater — Fig. 7(b)

std::size_t ShahGuptaUpdater::total() const {
  return std::accumulate(count_.begin(), count_.end(), std::size_t{0});
}

std::size_t ShahGuptaUpdater::block_start(unsigned length) const {
  std::size_t start = 0;
  for (unsigned l = Prefix::kMaxLength; l > length; --l) start += count_[l];
  return start;
}

std::size_t ShahGuptaUpdater::insert(const TcamEntry& entry) {
  if (const auto slot = chip_->slot_of(entry.prefix)) {
    chip_->write(*slot, entry);
    return kWriteCost;
  }
  const std::size_t used = total();
  if (used == chip_->capacity()) {
    throw TcamFullError("ShahGuptaUpdater::insert", chip_->capacity());
  }
  const unsigned length = entry.prefix.length();
  // Open a hole at the end of `length`'s block by cascading one entry
  // per non-empty block upward from the free space at the bottom: each
  // block donates its top entry to the hole just below it (legal —
  // same-length entries are interchangeable).
  std::size_t hole = used;
  std::size_t operations = 0;
  for (unsigned l = 0; l < length; ++l) {
    if (count_[l] == 0) continue;
    const std::size_t src = block_start(l);
    chip_->move(src, hole);
    ++operations;
    hole = src;
  }
  chip_->write(hole, entry);
  ++count_[length];
  return operations + kWriteCost;
}

std::size_t ShahGuptaUpdater::erase(const Prefix& prefix) {
  const auto slot = chip_->slot_of(prefix);
  if (!slot) return 0;
  const unsigned length = prefix.length();
  const std::size_t block_end = block_start(length) + count_[length];
  std::size_t operations = 0;
  std::size_t hole = block_end - 1;
  chip_->invalidate(*slot);
  ++operations;
  if (*slot != hole) {
    // Fill the victim's slot with its block's bottom entry.
    chip_->move(hole, *slot);
    ++operations;
  }
  // Cascade the hole down to the bottom so blocks stay contiguous: each
  // non-empty block below moves its bottom entry up into the hole.
  for (unsigned l = length; l-- > 0;) {
    if (count_[l] == 0) continue;
    const std::size_t bottom = block_start(l) + count_[l] - 1;
    chip_->move(bottom, hole);
    ++operations;
    hole = bottom;
  }
  --count_[length];
  return operations;
}

// ---------------------------------------------------------------------------
// ClueUpdater — §IV-B

std::size_t ClueUpdater::insert(const TcamEntry& entry) {
  if (const auto slot = chip_->slot_of(entry.prefix)) {
    chip_->write(*slot, entry);
    return kWriteCost;
  }
  if (chip_->full()) {
    throw TcamFullError("ClueUpdater::insert", chip_->capacity());
  }
  chip_->write(chip_->occupied(), entry);
  return kWriteCost;
}

std::size_t ClueUpdater::erase(const Prefix& prefix) {
  const auto slot = chip_->slot_of(prefix);
  if (!slot) return 0;
  const std::size_t last = chip_->occupied() - 1;
  if (*slot == last) {
    chip_->invalidate(*slot);
  } else {
    chip_->invalidate(*slot);
    chip_->move(last, *slot);
  }
  return 1;  // "cut the last prefix to replace it": one shift at most
}

}  // namespace clue::tcam
