#include "tcam/tcam_chip.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace clue::tcam {

namespace {

constexpr std::size_t kSearchCacheSlots = 1024;  // power of two

std::size_t search_cache_index(Ipv4Address address) {
  return static_cast<std::size_t>((address.value() * 2654435761u) >> 16) &
         (kSearchCacheSlots - 1);
}

}  // namespace

TcamChip::TcamChip(std::size_t capacity)
    : slots_(capacity), search_cache_(kSearchCacheSlots) {
  if (capacity == 0) {
    throw std::invalid_argument("TcamChip: capacity must be > 0");
  }
}

const std::optional<TcamEntry>& TcamChip::read(std::size_t slot) const {
  return slots_.at(slot);
}

void TcamChip::write(std::size_t slot, const TcamEntry& entry) {
  auto& cell = slots_.at(slot);
  if (cell) {
    // Overwrite: drop the old prefix from the indexes first.
    if (cell->prefix != entry.prefix) {
      const auto it = slot_index_.find(cell->prefix);
      assert(it != slot_index_.end() && it->second == slot);
      slot_index_.erase(it);
      match_index_.erase(cell->prefix);
    }
  } else {
    ++occupied_;
  }
  if (const auto existing = slot_index_.find(entry.prefix);
      existing != slot_index_.end() && existing->second != slot) {
    throw std::logic_error("TcamChip::write: duplicate prefix " +
                           entry.prefix.to_string());
  }
  cell = entry;
  slot_index_[entry.prefix] = slot;
  match_index_.insert(entry.prefix, entry.next_hop);
  ++version_;
  ++stats_.writes;
}

void TcamChip::invalidate(std::size_t slot) {
  auto& cell = slots_.at(slot);
  ++stats_.invalidates;
  if (!cell) return;
  slot_index_.erase(cell->prefix);
  match_index_.erase(cell->prefix);
  cell.reset();
  --occupied_;
  ++version_;
}

void TcamChip::move(std::size_t from, std::size_t to) {
  if (from == to) return;
  auto& src = slots_.at(from);
  auto& dst = slots_.at(to);
  if (!src) throw std::logic_error("TcamChip::move: source slot empty");
  if (dst) throw std::logic_error("TcamChip::move: destination occupied");
  dst = *src;
  src.reset();
  slot_index_[dst->prefix] = to;
  ++version_;
  ++stats_.moves;
}

TcamChip::SearchResult TcamChip::search(Ipv4Address address) {
  ++stats_.searches;
  stats_.activated_entries += occupied_;
  SearchSlot& cached = search_cache_[search_cache_index(address)];
  if (cached.version == version_ && cached.address == address) {
    return cached.result;
  }
  SearchResult result;
  result.slot = std::numeric_limits<std::size_t>::max();
  match_index_.for_each_match(address, [&](const Route& route) {
    ++result.match_count;
    const std::size_t slot = slot_index_.at(route.prefix);
    if (slot < result.slot) {
      result.slot = slot;
      result.next_hop = route.next_hop;
      result.hit = true;
    }
  });
  if (!result.hit) result.slot = 0;
  cached = SearchSlot{address, result, version_};
  return result;
}

TcamChip::SearchResult TcamChip::search_linear(Ipv4Address address) const {
  SearchResult result;
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    const auto& cell = slots_[slot];
    if (cell && cell->prefix.contains(address)) {
      ++result.match_count;
      if (!result.hit) {
        result.hit = true;
        result.slot = slot;
        result.next_hop = cell->next_hop;
      }
    }
  }
  return result;
}

std::optional<std::size_t> TcamChip::slot_of(const Prefix& prefix) const {
  const auto it = slot_index_.find(prefix);
  if (it == slot_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::size_t, TcamEntry>> TcamChip::entries() const {
  std::vector<std::pair<std::size_t, TcamEntry>> out;
  out.reserve(occupied_);
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot]) out.emplace_back(slot, *slots_[slot]);
  }
  return out;
}

}  // namespace clue::tcam
