// TcamChip — a behavioural simulator of a ternary CAM routing chip.
//
// The paper's testbed uses a Cypress CYNSE70256 (256K entries, 41.5 MHz,
// ≈24 ns per operation). We model what matters to every number the paper
// reports: slot-addressed storage, single-cycle parallel match with a
// priority encoder (lowest matching slot wins), per-operation counters
// (searches / writes / invalidates / moved entries) and a power proxy
// (valid entries activated per search).
//
// Matching is answered from an internal trie index in O(32) rather than
// by scanning every slot; `search_linear` performs the honest O(capacity)
// scan and exists so tests can prove the index tells the truth.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/prefix.hpp"
#include "trie/binary_trie.hpp"

namespace clue::tcam {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

/// Timing constants of the simulated part (CYNSE70256 at 41.5 MHz).
struct TcamTiming {
  /// Cost of one search, one entry write, or one entry move.
  static constexpr double kAccessNs = 24.0;
};

struct TcamEntry {
  Prefix prefix;
  NextHop next_hop = netbase::kNoRoute;

  friend bool operator==(const TcamEntry&, const TcamEntry&) = default;
};

class TcamChip {
 public:
  struct SearchResult {
    bool hit = false;
    std::size_t slot = 0;       ///< winning slot (priority-encoded)
    NextHop next_hop = netbase::kNoRoute;
    std::size_t match_count = 0;  ///< how many slots raised a match line
  };

  struct Stats {
    std::uint64_t searches = 0;
    std::uint64_t writes = 0;
    std::uint64_t invalidates = 0;
    std::uint64_t moves = 0;  ///< entry relocations (the "shifts")
    /// Sum over searches of valid entries at search time — the energy
    /// proxy used by the power-model benches.
    std::uint64_t activated_entries = 0;
  };

  explicit TcamChip(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t occupied() const { return occupied_; }
  bool full() const { return occupied_ == slots_.size(); }

  /// The entry stored at `slot`, if valid. Precondition: slot < capacity.
  const std::optional<TcamEntry>& read(std::size_t slot) const;

  /// Writes `entry` into `slot`, overwriting anything there.
  /// Precondition: slot < capacity; no *other* valid slot already holds
  /// the same prefix (a TCAM would return an ambiguous match).
  void write(std::size_t slot, const TcamEntry& entry);

  /// Invalidates `slot`; no-op on an already-empty slot.
  void invalidate(std::size_t slot);

  /// Relocates the entry in `from` to `to` (one shift). Precondition:
  /// `from` is valid and `to` is empty or equal to `from`.
  void move(std::size_t from, std::size_t to);

  /// Parallel match: all valid slots compare simultaneously; the priority
  /// encoder reports the lowest matching slot.
  SearchResult search(Ipv4Address address);

  /// Reference implementation scanning every slot. For verification.
  SearchResult search_linear(Ipv4Address address) const;

  /// Slot currently holding `prefix`, if any.
  std::optional<std::size_t> slot_of(const Prefix& prefix) const;

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// All valid entries with their slots, ascending by slot.
  std::vector<std::pair<std::size_t, TcamEntry>> entries() const;

  /// All stored routes whose prefix is contained in `within`, in address
  /// order (answered from the match index, not a slot scan). This is how
  /// control planes discover the *stored shapes* of a region — after a
  /// boundary migration the shapes no longer match a fresh boundary
  /// split, so they cannot be recomputed.
  std::vector<Route> entries_within(const Prefix& within) const {
    return match_index_.routes_within(within);
  }

 private:
  // Memoised search() answer, valid only while `version` matches the
  // chip's. TCAM entries may overlap (the priority encoder arbitrates),
  // so unlike the engine's flat tables no address-indexed structure can
  // be rebuilt incrementally here — but the full SearchResult for a
  // repeated address is stable between writes, and bench loops replay
  // addresses heavily. Counters are bumped before the cache is
  // consulted, so a cached search is indistinguishable in the stats.
  struct SearchSlot {
    Ipv4Address address{0};
    SearchResult result{};
    std::uint64_t version = 0;  // 0 = never valid
  };

  std::vector<std::optional<TcamEntry>> slots_;
  // Index: prefix -> set of slots holding it (normally a single slot; the
  // transient second copy exists only mid-`move`). The trie answers LPM.
  std::unordered_map<Prefix, std::size_t> slot_index_;
  trie::BinaryTrie match_index_;
  std::size_t occupied_ = 0;
  Stats stats_;
  std::vector<SearchSlot> search_cache_;
  std::uint64_t version_ = 1;  // bumped by every mutating operation
};

}  // namespace clue::tcam
