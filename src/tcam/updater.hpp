// TCAM layout/update strategies.
//
// The whole point of the paper's §IV-B: how many entry movements
// ("shifts") does one routing update cost?
//
//   NaiveUpdater      — fully length-sorted layout (Fig. 7a): O(n).
//   ShahGuptaUpdater  — per-length blocks with partial order (Fig. 7b,
//                       Shah & Gupta, Hot Interconnects 2000): at most 32
//                       shifts, ≈15 on real update mixes. What CLPL uses.
//   ClueUpdater       — arbitrary order, legal only for non-overlapping
//                       tables: insert appends, delete back-fills the
//                       hole with the last entry. At most one shift.
//
// Every updater owns the layout of one TcamChip and keeps LPM correct
// under its own ordering assumptions at all times.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "tcam/tcam_chip.hpp"

namespace clue::tcam {

/// Thrown when an insert finds no free slot. Derives from
/// std::length_error for backward compatibility, but carries the chip
/// capacity so control planes can treat overflow as a *recoverable*
/// admission failure (emergency rebalance, reject-and-rollback) instead
/// of a crash.
class TcamFullError : public std::length_error {
 public:
  TcamFullError(std::string_view updater, std::size_t capacity)
      : std::length_error(std::string(updater) + ": TCAM full (capacity " +
                          std::to_string(capacity) + ")"),
        capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
};

class TcamUpdater {
 public:
  virtual ~TcamUpdater() = default;

  /// Installs (or overwrites) `entry`. Returns the number of entry
  /// movements performed, the final write included — the quantity TTF2
  /// charges 24 ns apiece for.
  virtual std::size_t insert(const TcamEntry& entry) = 0;

  /// Removes `prefix`. Returns entry movements (0 when absent).
  virtual std::size_t erase(const Prefix& prefix) = 0;

  virtual std::string_view name() const = 0;

  TcamChip& chip() { return *chip_; }
  const TcamChip& chip() const { return *chip_; }
  std::size_t size() const { return chip_->occupied(); }

 protected:
  explicit TcamUpdater(std::size_t capacity)
      : chip_(std::make_unique<TcamChip>(capacity)) {}

  std::unique_ptr<TcamChip> chip_;
};

/// Fig. 7(a): keep all entries sorted by descending prefix length in one
/// contiguous block; an insert shifts everything below it down by one.
class NaiveUpdater final : public TcamUpdater {
 public:
  explicit NaiveUpdater(std::size_t capacity) : TcamUpdater(capacity) {}

  std::size_t insert(const TcamEntry& entry) override;
  std::size_t erase(const Prefix& prefix) override;
  std::string_view name() const override { return "naive"; }

 private:
  /// Slot where a new entry of `length` is placed (end of its block).
  std::size_t insert_position(unsigned length) const;
  std::size_t total() const;

  std::array<std::size_t, Prefix::kMaxLength + 1> count_{};
};

/// Fig. 7(b): 33 blocks (one per prefix length, longest first); entries
/// within a block are interchangeable, so opening/closing a hole costs
/// one move per non-empty block crossed — ≤ 32, ≈ 15 in practice.
class ShahGuptaUpdater final : public TcamUpdater {
 public:
  explicit ShahGuptaUpdater(std::size_t capacity) : TcamUpdater(capacity) {}

  std::size_t insert(const TcamEntry& entry) override;
  std::size_t erase(const Prefix& prefix) override;
  std::string_view name() const override { return "shah-gupta"; }

 private:
  /// start slot of the block for `length` (blocks are contiguous,
  /// descending length, starting at slot 0).
  std::size_t block_start(unsigned length) const;
  std::size_t total() const;

  std::array<std::size_t, Prefix::kMaxLength + 1> count_{};
};

/// CLUE (§IV-B): order-free layout for non-overlapping tables. Insert is
/// an append; delete moves the last entry into the hole. ≤ 1 shift.
class ClueUpdater final : public TcamUpdater {
 public:
  explicit ClueUpdater(std::size_t capacity) : TcamUpdater(capacity) {}

  std::size_t insert(const TcamEntry& entry) override;
  std::size_t erase(const Prefix& prefix) override;
  std::string_view name() const override { return "clue"; }
};

}  // namespace clue::tcam
