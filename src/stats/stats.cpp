#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace clue::stats {

void Summary::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double low, double high, std::size_t bins)
    : low_(low), width_((high - low) / static_cast<double>(bins)),
      bins_(bins, 0) {
  if (bins == 0 || high <= low) {
    throw std::invalid_argument("Histogram: need bins > 0 and high > low");
  }
}

void Histogram::add(double value) {
  auto bin = static_cast<std::ptrdiff_t>((value - low_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return low_ + width_ * static_cast<double>(bin);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return low_;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over bins: the upper edge of the bin holding the
  // ceil(q*total)-th sample. q = 0 would otherwise always name the first
  // bin (cumulative 0 >= target 0 even when the bin is empty); it means
  // "the minimum", i.e. the lower edge of the first occupied bin.
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cumulative = 0;
  for (std::size_t bin = 0; bin < bins_.size(); ++bin) {
    if (bins_[bin] == 0) continue;
    if (target == 0) return bin_low(bin);
    cumulative += bins_[bin];
    if (cumulative >= target) return bin_low(bin) + width_;
  }
  return bin_low(bins_.size() - 1) + width_;
}

TimeSeries::TimeSeries(std::size_t samples_per_bucket)
    : per_bucket_(samples_per_bucket) {
  if (samples_per_bucket == 0) {
    throw std::invalid_argument("TimeSeries: bucket size must be > 0");
  }
}

void TimeSeries::add(double value) {
  overall_.add(value);
  pending_sum_ += value;
  if (++pending_count_ == per_bucket_) {
    means_.push_back(pending_sum_ / static_cast<double>(pending_count_));
    pending_sum_ = 0;
    pending_count_ = 0;
  }
}

std::vector<double> TimeSeries::bucket_means() const {
  auto out = means_;
  if (pending_count_ > 0) {
    out.push_back(pending_sum_ / static_cast<double>(pending_count_));
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (const auto width : widths) rule += width + 2;
  os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

double Percentiles::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("Percentiles::quantile on empty set");
  }
  q = std::clamp(q, 0.0, 1.0);
  // Linear interpolation between order statistics (the numpy default):
  // rank position q*(n-1) splits into a lower order statistic and a
  // fractional weight on the next one. The old round-half-up rank picked
  // a neighbouring sample — off by up to one whole sample at small n.
  const double position = q * static_cast<double>(samples_.size() - 1);
  const auto lower_rank = static_cast<std::size_t>(position);
  auto nth = samples_.begin() + static_cast<std::ptrdiff_t>(lower_rank);
  std::nth_element(samples_.begin(), nth, samples_.end());
  const double lower = *nth;
  const double fraction = position - static_cast<double>(lower_rank);
  if (fraction == 0.0 || lower_rank + 1 == samples_.size()) return lower;
  // nth_element left the suffix all >= *nth; its minimum is the next
  // order statistic.
  const double upper = *std::min_element(nth + 1, samples_.end());
  return lower + fraction * (upper - lower);
}

std::vector<double> polyfit(const std::vector<double>& xs,
                            const std::vector<double>& ys,
                            std::size_t degree) {
  const std::size_t n = degree + 1;
  if (xs.size() != ys.size() || xs.size() < n) {
    throw std::invalid_argument("polyfit: need more points than degree");
  }
  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n + 1, 0));
  std::vector<double> powers(2 * n - 1);
  for (std::size_t sample = 0; sample < xs.size(); ++sample) {
    powers[0] = 1;
    for (std::size_t p = 1; p < 2 * n - 1; ++p) {
      powers[p] = powers[p - 1] * xs[sample];
    }
    for (std::size_t row = 0; row < n; ++row) {
      for (std::size_t col = 0; col < n; ++col) {
        matrix[row][col] += powers[row + col];
      }
      matrix[row][n] += powers[row] * ys[sample];
    }
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t pivot = 0; pivot < n; ++pivot) {
    std::size_t best = pivot;
    for (std::size_t row = pivot + 1; row < n; ++row) {
      if (std::abs(matrix[row][pivot]) > std::abs(matrix[best][pivot])) {
        best = row;
      }
    }
    std::swap(matrix[pivot], matrix[best]);
    if (std::abs(matrix[pivot][pivot]) < 1e-12) {
      throw std::invalid_argument("polyfit: singular system (degenerate xs)");
    }
    for (std::size_t row = pivot + 1; row < n; ++row) {
      const double factor = matrix[row][pivot] / matrix[pivot][pivot];
      for (std::size_t col = pivot; col <= n; ++col) {
        matrix[row][col] -= factor * matrix[pivot][col];
      }
    }
  }
  std::vector<double> coefficients(n);
  for (std::size_t row = n; row-- > 0;) {
    double value = matrix[row][n];
    for (std::size_t col = row + 1; col < n; ++col) {
      value -= matrix[row][col] * coefficients[col];
    }
    coefficients[row] = value / matrix[row][row];
  }
  return coefficients;
}

double polyval(const std::vector<double>& coefficients, double x) {
  double value = 0;
  for (std::size_t i = coefficients.size(); i-- > 0;) {
    value = value * x + coefficients[i];
  }
  return value;
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string percent(double ratio, int decimals) {
  return fixed(ratio * 100.0, decimals) + "%";
}

void write_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers);
  for (const auto& row : rows) emit(row);
}

}  // namespace clue::stats
