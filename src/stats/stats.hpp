// Small statistics toolkit used by the benches and the engine metrics:
// streaming summaries (Welford), histograms, bucketed time series, and
// aligned table / CSV output so each bench can print the same rows the
// paper's tables and figures report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace clue::stats {

/// Streaming min/max/mean/stddev via Welford's algorithm.
class Summary {
 public:
  void add(double value);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [low, high); out-of-range values clamp
/// to the first/last bin.
class Histogram {
 public:
  Histogram(double low, double high, std::size_t bins);

  void add(double value);
  std::uint64_t bin_count(std::size_t bin) const { return bins_.at(bin); }
  std::size_t bins() const { return bins_.size(); }
  double bin_low(std::size_t bin) const;
  std::uint64_t total() const { return total_; }
  /// Smallest value v such that at least `q` (0..1) of the mass is <= v
  /// (bin upper edge approximation). q = 0 returns the lower edge of the
  /// first occupied bin; an empty histogram returns `low`.
  double quantile(double q) const;

 private:
  double low_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Groups (time, value) samples into fixed-size buckets of consecutive
/// samples and reports per-bucket means — how the paper's Fig. 10-14
/// time-series curves are drawn.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t samples_per_bucket);

  void add(double value);
  /// Per-bucket means, the trailing partial bucket included.
  std::vector<double> bucket_means() const;
  const Summary& overall() const { return overall_; }

 private:
  std::size_t per_bucket_;
  Summary overall_;
  std::vector<double> means_;
  double pending_sum_ = 0;
  std::size_t pending_count_ = 0;
};

/// Right-padded fixed-column text table, in the style of the paper's
/// Table II.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// The assembled cells, so exporters (obs::MetricsRegistry tables) can
  /// reuse a bench's display table without re-deriving it.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Accumulates raw samples for exact quantiles (nth_element on demand).
/// Memory is one double per sample — fine for the 10^4-10^6 sample runs
/// the benches do.
class Percentiles {
 public:
  void add(double value) { samples_.push_back(value); }
  std::size_t count() const { return samples_.size(); }
  /// Exact q-quantile (0 <= q <= 1) with linear interpolation between
  /// order statistics; q=0 is the minimum, q=1 the maximum. Throws when
  /// empty.
  double quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
};

/// Least-squares polynomial fit of degree `degree` through (xs, ys);
/// returns coefficients lowest-order first (size degree+1). Solves the
/// normal equations by Gaussian elimination with partial pivoting —
/// exactly the "cubic curve fitting" the paper's Fig. 16 applies to its
/// speedup-vs-hit-rate measurements. Requires xs.size() == ys.size() >
/// degree.
std::vector<double> polyfit(const std::vector<double>& xs,
                            const std::vector<double>& ys,
                            std::size_t degree);

/// Evaluates a polyfit coefficient vector at x (Horner).
double polyval(const std::vector<double>& coefficients, double x);

/// Formats a double with fixed decimals (bench output helper).
std::string fixed(double value, int decimals);
/// Formats a ratio as a percent string, e.g. 0.7188 -> "71.88%".
std::string percent(double ratio, int decimals = 2);

/// Writes rows as CSV (no quoting; callers pass clean cells).
void write_csv(std::ostream& os,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace clue::stats
