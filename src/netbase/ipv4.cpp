#include "netbase/ipv4.hpp"

#include <array>
#include <charconv>

namespace clue::netbase {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    std::uint32_t octet = 0;
    auto [next, ec] = std::from_chars(cursor, end, octet);
    if (ec != std::errc{} || next == cursor || octet > 255) {
      return std::nullopt;
    }
    octets[static_cast<std::size_t>(i)] = octet;
    cursor = next;
  }
  if (cursor != end) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(octets[0]),
                     static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]),
                     static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFFu);
  }
  return out;
}

}  // namespace clue::netbase
