#include "netbase/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clue::netbase {

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (skew < 0) throw std::invalid_argument("ZipfSampler: skew must be >= 0");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Pcg32& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
  if (i >= cdf_.size()) throw std::out_of_range("ZipfSampler::probability");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace clue::netbase
