#include "netbase/prefix.hpp"

#include <charconv>
#include <stdexcept>

namespace clue::netbase {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto address = Ipv4Address::parse(text);
    if (!address) return std::nullopt;
    return Prefix(*address, kMaxLength);
  }
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const std::string_view length_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [next, ec] = std::from_chars(
      length_text.data(), length_text.data() + length_text.size(), length);
  if (ec != std::errc{} || next != length_text.data() + length_text.size() ||
      length > kMaxLength) {
    return std::nullopt;
  }
  return Prefix(*address, length);
}

std::string Prefix::to_string() const {
  return address().to_string() + "/" + std::to_string(length());
}

std::vector<Prefix> cidr_cover(Ipv4Address low, Ipv4Address high) {
  if (low > high) {
    throw std::invalid_argument("cidr_cover: low must be <= high");
  }
  std::vector<Prefix> out;
  std::uint64_t cursor = low.value();
  const std::uint64_t end = std::uint64_t{high.value()} + 1;
  while (cursor < end) {
    // Largest aligned block starting at cursor that fits in [cursor, end).
    std::uint64_t block = cursor == 0 ? (std::uint64_t{1} << 32)
                                      : (cursor & (~cursor + 1));
    while (block > end - cursor) block >>= 1;
    unsigned length = 32;
    for (std::uint64_t size = 1; size < block; size <<= 1) --length;
    out.push_back(
        Prefix(Ipv4Address(static_cast<std::uint32_t>(cursor)), length));
    cursor += block;
  }
  return out;
}

}  // namespace clue::netbase
