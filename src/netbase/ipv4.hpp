// IPv4 address value type.
//
// A thin, strongly-typed wrapper over a host-order 32-bit value with
// parsing, formatting and bit-level helpers used throughout CLUE.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clue::netbase {

/// An IPv4 address stored in host byte order.
///
/// The most significant bit of `value()` is bit 0 of the address in
/// prefix notation (i.e. the first bit examined by a trie walk).
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}

  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// syntax error (missing octets, values > 255, trailing junk).
  static std::optional<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  /// Returns bit `index` (0 = most significant) as 0 or 1.
  constexpr unsigned bit(unsigned index) const {
    return (value_ >> (31u - index)) & 1u;
  }

  std::string to_string() const;

  friend constexpr bool operator==(Ipv4Address, Ipv4Address) = default;
  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace clue::netbase
