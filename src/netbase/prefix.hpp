// IPv4 prefix value type.
//
// The fundamental key of every routing structure in CLUE: tries, TCAM
// entries, DRed caches and partition boundaries all speak Prefix.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ipv4.hpp"

namespace clue::netbase {

/// An IPv4 prefix `bits/length` with 0 <= length <= 32.
///
/// Invariant: all bits below the prefix length are zero, so two Prefix
/// objects compare equal iff they denote the same address range.
class Prefix {
 public:
  static constexpr unsigned kMaxLength = 32;

  /// The default (zero-length) prefix covering the whole address space.
  constexpr Prefix() = default;

  /// Builds `bits/length`, masking out any bits below the prefix length.
  constexpr Prefix(Ipv4Address bits, unsigned length)
      : bits_(bits.value() & mask_for(length)),
        length_(static_cast<std::uint8_t>(length)) {}

  /// Parses "a.b.c.d/len"; a bare address parses as a /32. Host bits
  /// below the mask are silently cleared, matching router CLI behaviour.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4Address address() const { return Ipv4Address(bits_); }
  constexpr std::uint32_t bits() const { return bits_; }
  constexpr unsigned length() const { return length_; }
  constexpr std::uint32_t mask() const { return mask_for(length_); }

  /// Number of addresses covered: 2^(32-length).
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// First / last address of the covered range.
  constexpr Ipv4Address range_low() const { return Ipv4Address(bits_); }
  constexpr Ipv4Address range_high() const {
    return Ipv4Address(bits_ | ~mask());
  }

  constexpr bool contains(Ipv4Address address) const {
    return (address.value() & mask()) == bits_;
  }
  constexpr bool contains(const Prefix& other) const {
    return length_ <= other.length_ && (other.bits_ & mask()) == bits_;
  }
  /// True when the two covered ranges intersect (one contains the other).
  constexpr bool overlaps(const Prefix& other) const {
    return contains(other) || other.contains(*this);
  }

  /// Bit `index` (0 = most significant); requires index < length().
  constexpr unsigned bit(unsigned index) const {
    return (bits_ >> (31u - index)) & 1u;
  }

  /// The parent prefix, one bit shorter. Requires length() > 0.
  constexpr Prefix parent() const {
    return Prefix(Ipv4Address(bits_), length_ - 1u);
  }

  /// Child prefix obtained by appending `bit` (0 or 1).
  /// Requires length() < 32.
  constexpr Prefix child(unsigned bit) const {
    const unsigned child_len = length_ + 1u;
    const std::uint32_t appended =
        bits_ | (static_cast<std::uint32_t>(bit & 1u) << (32u - child_len));
    return Prefix(Ipv4Address(appended), child_len);
  }

  /// The sibling sharing this prefix's parent. Requires length() > 0.
  constexpr Prefix sibling() const {
    return Prefix(Ipv4Address(bits_ ^ (1u << (32u - length_))), length_);
  }

  std::string to_string() const;

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
  /// Orders by address range start, then by length (shorter first), which
  /// is exactly the in-order position of the node in a binary trie.
  friend constexpr auto operator<=>(const Prefix& a, const Prefix& b) {
    if (auto cmp = a.bits_ <=> b.bits_; cmp != 0) return cmp;
    return a.length_ <=> b.length_;
  }

 private:
  static constexpr std::uint32_t mask_for(unsigned length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32u - length);
  }

  std::uint32_t bits_ = 0;
  std::uint8_t length_ = 0;
};

/// Decomposes the inclusive address range [low, high] into the minimal
/// list of aligned CIDR prefixes, in ascending address order. This is
/// the classic range-to-CIDR construction (used when a compressed
/// region must be split at a TCAM partition boundary). Requires
/// low <= high.
std::vector<Prefix> cidr_cover(Ipv4Address low, Ipv4Address high);

/// A next-hop identifier. 0 is reserved for "no route".
enum class NextHop : std::uint32_t {};

inline constexpr NextHop kNoRoute = NextHop{0};

constexpr std::uint32_t to_index(NextHop hop) {
  return static_cast<std::uint32_t>(hop);
}
constexpr NextHop make_next_hop(std::uint32_t id) { return NextHop{id}; }

/// A routing-table entry: the unit stored in tries and TCAMs.
struct Route {
  Prefix prefix;
  NextHop next_hop = kNoRoute;

  friend constexpr bool operator==(const Route&, const Route&) = default;
  friend constexpr auto operator<=>(const Route&, const Route&) = default;
};

}  // namespace clue::netbase

template <>
struct std::hash<clue::netbase::Prefix> {
  std::size_t operator()(const clue::netbase::Prefix& p) const noexcept {
    // Splitmix-style mix of (bits, length); cheap and well distributed.
    std::uint64_t x =
        (std::uint64_t{p.bits()} << 6) ^ std::uint64_t{p.length()};
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
