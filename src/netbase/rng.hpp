// Deterministic random-number utilities.
//
// Every experiment in the repository is seeded, so results are exactly
// reproducible run to run. We use PCG32 (small, fast, good statistical
// quality) rather than std::mt19937 to keep generator state tiny in the
// many per-flow generators the traffic model instantiates.
#pragma once

#include <cstdint>
#include <vector>

namespace clue::netbase {

/// PCG32 (XSH-RR variant) — O'Neill 2014.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t product = std::uint64_t{next()} * bound;
    auto low = static_cast<std::uint32_t>(product);
    if (low < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        product = std::uint64_t{next()} * bound;
        low = static_cast<std::uint32_t>(product);
      }
    }
    return static_cast<std::uint32_t>(product >> 32);
  }

  /// Uniform double in [0, 1), using the top 27 bits.
  double next_double() {
    return static_cast<double>(next() >> 5) * (1.0 / 134217728.0);
  }

  /// True with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// Samples from a Zipf(s) distribution over ranks {0, .., n-1} in O(1)
/// per draw after O(n) table construction (inverse-CDF on a prefix-sum
/// table with binary search; n is at most a few hundred thousand here).
class ZipfSampler {
 public:
  /// `skew` is the Zipf exponent; 0 degenerates to uniform.
  ZipfSampler(std::size_t n, double skew);

  std::size_t sample(Pcg32& rng) const;

  std::size_t size() const { return cdf_.size(); }
  /// Probability mass of rank `i`.
  double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace clue::netbase
