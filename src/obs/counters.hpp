// CounterBlock — a cache-line-padded block of named event counters.
//
// The observability layer's answer to "a struct full of ad-hoc atomics":
// each logical owner (a chip worker, the client role) gets its own block,
// aligned and padded to a cache-line multiple so two owners bumping their
// counters never false-share. Increments are relaxed fetch_adds on the
// owner's line — the hot path never synchronises — and any thread may
// take a (relaxed, consistent-enough) snapshot off the hot path.
//
// The counter names are an enum class whose last enumerator must be
// kCount; the enum doubles as the index space, so adding a counter is
// one enumerator plus one label, with no layout bookkeeping.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace clue::obs {

template <typename Enum>
class alignas(64) CounterBlock {
 public:
  static constexpr std::size_t kCount = static_cast<std::size_t>(Enum::kCount);

  /// Owner-side increment; relaxed, never contended when each owner has
  /// its own block.
  void add(Enum counter, std::uint64_t n = 1) {
    counters_[index(counter)].fetch_add(n, std::memory_order_relaxed);
  }

  /// Readable from any thread (relaxed).
  std::uint64_t get(Enum counter) const {
    return counters_[index(counter)].load(std::memory_order_relaxed);
  }

  /// Point-in-time copy of every counter (relaxed per-element reads:
  /// consistent enough for metrics, not a linearizable snapshot).
  std::array<std::uint64_t, kCount> snapshot() const {
    std::array<std::uint64_t, kCount> out{};
    for (std::size_t i = 0; i < kCount; ++i) {
      out[i] = counters_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  static constexpr std::size_t index(Enum counter) {
    return static_cast<std::size_t>(counter);
  }

  std::array<std::atomic<std::uint64_t>, kCount> counters_{};
};

}  // namespace clue::obs
