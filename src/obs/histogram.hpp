// LatencyHistogram — log-bucketed latency recording for the hot path.
//
// Bucket b holds samples in [2^(b-1), 2^b) nanoseconds (bucket 0 is
// [0, 1)): 48 buckets cover sub-nanosecond through ~1.5 days, which is
// every latency this system can produce. Recording is a relaxed
// load+store pair into the owner's bucket array (single-writer, so no
// RMW is needed) — no locks, no allocation, no floating point beyond
// the initial truncation — so a chip worker can record on its lookup
// path. Snapshots are taken off the hot path and
// merge exactly: merging per-worker snapshots equals one histogram fed
// all samples, which is what makes per-worker recording free of shared
// state.
//
// Quantiles are bucket-edge approximations (exact to within one power of
// two); the benches that need exact ranks keep using stats::Percentiles.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace clue::obs {

/// Mergeable point-in-time copy of a LatencyHistogram.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 48;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  std::uint64_t sum_ns = 0;

  /// Element-wise accumulation: merge(a, b) == histogram fed a's and b's
  /// samples.
  void merge(const HistogramSnapshot& other);

  bool empty() const { return total == 0; }
  double mean_ns() const;

  /// Upper-edge approximation: the smallest bucket boundary v such that
  /// at least ceil(q * total) samples are <= v. q = 0 returns the lower
  /// edge of the first occupied bucket; an empty snapshot returns 0.
  double quantile_ns(double q) const;

  /// Exclusive upper edge of `bucket`: 2^bucket ns.
  static double bucket_upper_ns(std::size_t bucket) {
    return static_cast<double>(std::uint64_t{1} << bucket);
  }
  /// Inclusive lower edge of `bucket`.
  static double bucket_lower_ns(std::size_t bucket) {
    return bucket == 0 ? 0.0
                       : static_cast<double>(std::uint64_t{1} << (bucket - 1));
  }
  /// The bucket a sample of `ns` nanoseconds lands in.
  static std::size_t bucket_of(double ns);
};

/// Single-owner recorder (one writer at a time; any thread may
/// snapshot). Cache-line aligned so adjacent per-worker histograms never
/// false-share.
class alignas(64) LatencyHistogram {
 public:
  void record(double ns) {
    const std::size_t bucket = HistogramSnapshot::bucket_of(ns);
    // Single-writer, so plain load+store relaxed pairs (no RMW lock
    // prefix) are lossless; concurrent snapshot() readers already
    // tolerate per-element relaxed reads.
    counts_[bucket].store(
        counts_[bucket].load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    sum_ns_.store(sum_ns_.load(std::memory_order_relaxed) +
                      (ns <= 0.0 ? 0 : static_cast<std::uint64_t>(ns)),
                  std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace clue::obs
