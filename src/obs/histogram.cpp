#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace clue::obs {

std::size_t HistogramSnapshot::bucket_of(double ns) {
  if (ns < 1.0) return 0;
  // Clamp before the integer cast: a double at or beyond 2^63 would be
  // UB to convert, and anything past the last bucket's edge lands there
  // anyway.
  if (ns >= bucket_upper_ns(kBuckets - 2)) return kBuckets - 1;
  const auto v = static_cast<std::uint64_t>(ns);
  const auto bucket = static_cast<std::size_t>(std::bit_width(v));
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
  sum_ns += other.sum_ns;
}

double HistogramSnapshot::mean_ns() const {
  return total ? static_cast<double>(sum_ns) / static_cast<double>(total)
               : 0.0;
}

double HistogramSnapshot::quantile_ns(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    if (counts[bucket] == 0) continue;
    if (target == 0) return bucket_lower_ns(bucket);  // q == 0: the min bucket
    cumulative += counts[bucket];
    if (cumulative >= target) return bucket_upper_ns(bucket);
  }
  return bucket_upper_ns(kBuckets - 1);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    out.counts[i] = counts_[i].load(std::memory_order_relaxed);
    out.total += out.counts[i];
  }
  out.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace clue::obs
