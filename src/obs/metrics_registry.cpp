#include "obs/metrics_registry.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace clue::obs {

namespace {

template <typename Sections>
auto* find_entry(Sections& section, const std::string& name) {
  for (auto& entry : section) {
    if (entry.first == name) return &entry.second;
  }
  return decltype(&section.front().second){nullptr};
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no inf/nan; non-finite values export as 0.
void json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << 0;
    return;
  }
  std::ostringstream tmp;
  tmp.precision(15);
  tmp << value;
  os << tmp.str();
}

void json_histogram(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.total << ",\"sum_ns\":" << h.sum_ns
     << ",\"mean_ns\":";
  json_number(os, h.mean_ns());
  os << ",\"p50_ns\":";
  json_number(os, h.quantile_ns(0.50));
  os << ",\"p90_ns\":";
  json_number(os, h.quantile_ns(0.90));
  os << ",\"p99_ns\":";
  json_number(os, h.quantile_ns(0.99));
  os << ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"le_ns\":";
    json_number(os, HistogramSnapshot::bucket_upper_ns(b));
    os << ",\"count\":" << h.counts[b] << '}';
  }
  os << "]}";
}

void json_ttf_entry(std::ostream& os, const TtfTraceEntry& e) {
  os << "{\"seq\":" << e.seq << ",\"ttf1_ns\":";
  json_number(os, e.ttf1_ns);
  os << ",\"ttf2_ns\":";
  json_number(os, e.ttf2_ns);
  os << ",\"ttf3_ns\":";
  json_number(os, e.ttf3_ns);
  os << ",\"chips_touched\":" << e.chips_touched
     << ",\"control_msgs\":" << e.control_msgs
     << ",\"queue_depth_max\":" << e.queue_depth_max
     << ",\"queue_depth_mean\":";
  json_number(os, e.queue_depth_mean);
  os << ",\"rebalance_ns\":";
  json_number(os, e.rebalance_ns);
  os << ",\"rebalance_steps\":" << e.rebalance_steps
     << ",\"entries_migrated\":" << e.entries_migrated << ",\"flat_ns\":";
  json_number(os, e.flat_ns);
  os << ",\"batch_size\":" << e.batch_size << ",\"ops_raw\":" << e.ops_raw
     << ",\"ops_merged\":" << e.ops_merged << '}';
}

}  // namespace

void MetricsRegistry::set_counter(const std::string& name,
                                  std::uint64_t value) {
  if (auto* existing = find_entry(counters_, name)) {
    *existing = value;
    return;
  }
  counters_.emplace_back(name, value);
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  if (auto* existing = find_entry(gauges_, name)) {
    *existing = value;
    return;
  }
  gauges_.emplace_back(name, value);
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    HistogramSnapshot snapshot) {
  if (auto* existing = find_entry(histograms_, name)) {
    *existing = std::move(snapshot);
    return;
  }
  histograms_.emplace_back(name, std::move(snapshot));
}

void MetricsRegistry::add_ttf_trace(const std::string& name,
                                    std::vector<TtfTraceEntry> entries) {
  if (auto* existing = find_entry(ttf_traces_, name)) {
    *existing = std::move(entries);
    return;
  }
  ttf_traces_.emplace_back(name, std::move(entries));
}

void MetricsRegistry::add_table(std::string name,
                                std::vector<std::string> headers,
                                std::vector<std::vector<std::string>> rows) {
  for (auto& table : tables_) {
    if (table.name == name) {
      table.headers = std::move(headers);
      table.rows = std::move(rows);
      return;
    }
  }
  tables_.push_back(
      Table{std::move(name), std::move(headers), std::move(rows)});
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(counters_[i].first)
       << "\":" << counters_[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(gauges_[i].first) << "\":";
    json_number(os, gauges_[i].second);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(histograms_[i].first) << "\":";
    json_histogram(os, histograms_[i].second);
  }
  os << "},\"ttf_traces\":{";
  for (std::size_t i = 0; i < ttf_traces_.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(ttf_traces_[i].first) << "\":[";
    for (std::size_t j = 0; j < ttf_traces_[i].second.size(); ++j) {
      if (j) os << ',';
      json_ttf_entry(os, ttf_traces_[i].second[j]);
    }
    os << ']';
  }
  os << "},\"tables\":{";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& table = tables_[t];
    if (t) os << ',';
    os << '"' << json_escape(table.name) << "\":[";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      if (r) os << ',';
      os << '{';
      for (std::size_t c = 0;
           c < table.headers.size() && c < table.rows[r].size(); ++c) {
        if (c) os << ',';
        os << '"' << json_escape(table.headers[c]) << "\":\""
           << json_escape(table.rows[r][c]) << '"';
      }
      os << '}';
    }
    os << ']';
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "metric,kind,value\n";
  for (const auto& [name, value] : counters_) {
    os << name << ",counter," << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << name << ",gauge," << value << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ".count,histogram," << h.total << '\n';
    os << name << ".mean_ns,histogram," << h.mean_ns() << '\n';
    os << name << ".p50_ns,histogram," << h.quantile_ns(0.50) << '\n';
    os << name << ".p99_ns,histogram," << h.quantile_ns(0.99) << '\n';
  }
}

void MetricsRegistry::dump(std::ostream& os) const {
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": n=" << h.total << " mean=" << h.mean_ns()
       << "ns p50=" << h.quantile_ns(0.50) << "ns p99=" << h.quantile_ns(0.99)
       << "ns\n";
  }
  for (const auto& [name, entries] : ttf_traces_) {
    os << name << ": " << entries.size() << " trace entries\n";
  }
  for (const auto& table : tables_) {
    os << "table " << table.name << ": " << table.rows.size() << " rows x "
       << table.headers.size() << " cols\n";
  }
}

}  // namespace clue::obs
