// TtfTraceRing — a fixed-size ring of per-update TTF traces.
//
// The paper's TTF = TTF1 + TTF2 + TTF3 decomposition (§IV) is the unit
// of measurement for every update-path claim, so each apply() leaves one
// trace entry: its three stage spans, how many chip tables it
// republished, how many DRed sync messages it broadcast, and the
// job-ring depths observed when it started (whether the data plane was
// under pressure while the control plane cut in). The ring keeps the
// most recent `capacity` entries for post-mortem of stalls and
// tail-latency spikes.
//
// record() runs on the control (update) path — never the lookup hot
// path — so a mutex is the right tool: microseconds of update work dwarf
// a lock, and snapshot() from the metrics exporter stays trivially safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace clue::obs {

/// One control-plane update's stage spans plus observed data-plane
/// pressure.
struct TtfTraceEntry {
  std::uint64_t seq = 0;  ///< update sequence number (1-based)
  double ttf1_ns = 0;     ///< control-plane software (trie diff) span
  double ttf2_ns = 0;     ///< chip-table shadow copy + publish span
  double ttf3_ns = 0;     ///< DRed sync broadcast + ack span
  std::uint32_t chips_touched = 0;    ///< chip tables republished
  std::uint32_t control_msgs = 0;     ///< DRed erase/fix messages sent
  std::uint32_t queue_depth_max = 0;  ///< deepest job ring at apply() entry
  double queue_depth_mean = 0;        ///< mean job-ring depth at apply() entry
  double rebalance_ns = 0;            ///< boundary-rebalance span (0 = none)
  std::uint32_t rebalance_steps = 0;  ///< migrations run by this update
  std::uint32_t entries_migrated = 0; ///< entries those migrations moved
  /// Flat-image rebuild span inside TTF2 (0 = flat path off or no chip
  /// republished).
  double flat_ns = 0;
  /// Group commit: update messages this trace covers (1 = the sequential
  /// apply() path), and the diff-op stream before/after coalescing —
  /// ops_raw - ops_merged is the chip work the batch never paid for.
  std::uint32_t batch_size = 1;
  std::uint32_t ops_raw = 0;
  std::uint32_t ops_merged = 0;

  double total_ns() const { return ttf1_ns + ttf2_ns + ttf3_ns; }
};

/// Fixed-capacity ring of the most recent entries; capacity 0 disables
/// recording entirely.
class TtfTraceRing {
 public:
  explicit TtfTraceRing(std::size_t capacity);

  void record(const TtfTraceEntry& entry);

  /// The retained entries, oldest first.
  std::vector<TtfTraceEntry> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Entries ever recorded (>= snapshot().size() once the ring wraps).
  std::uint64_t recorded() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TtfTraceEntry> entries_;  // ring storage, wraps at capacity_
  std::size_t next_ = 0;                // slot the next entry lands in
  std::uint64_t recorded_ = 0;
};

}  // namespace clue::obs
