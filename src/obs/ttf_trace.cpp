#include "obs/ttf_trace.hpp"

namespace clue::obs {

TtfTraceRing::TtfTraceRing(std::size_t capacity) : capacity_(capacity) {
  entries_.reserve(capacity_);
}

void TtfTraceRing::record(const TtfTraceEntry& entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
  } else {
    entries_[next_] = entry;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TtfTraceEntry> TtfTraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TtfTraceEntry> out;
  out.reserve(entries_.size());
  if (entries_.size() < capacity_) {
    out = entries_;
  } else {
    // Full ring: next_ is the oldest slot.
    out.insert(out.end(), entries_.begin() + static_cast<std::ptrdiff_t>(next_),
               entries_.end());
    out.insert(out.end(), entries_.begin(),
               entries_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::uint64_t TtfTraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

}  // namespace clue::obs
