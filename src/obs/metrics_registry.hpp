// MetricsRegistry — a named bag of metric values with exporters.
//
// Producers (LookupRuntime, ClueSystem, benches) fill a registry at
// export time from their live counters/histograms; the registry itself
// is plain single-threaded data, so exporting never perturbs the hot
// path. Three output shapes:
//
//   to_json()     everything — counters, gauges, histograms (with
//                 quantiles and non-empty buckets), TTF traces, tables —
//                 as one machine-readable document;
//   write_csv()   flat metric,kind,value rows (histograms flattened to
//                 count/mean/p50/p99);
//   dump()        a human-readable summary for terminals and logs.
//
// Tables carry a bench's figure series (the rows csv_out.hpp used to
// hand-roll) so one registry holds a whole run's output; bench helpers
// write each table to its own .csv file for gnuplot compatibility.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/ttf_trace.hpp"

namespace clue::obs {

class MetricsRegistry {
 public:
  struct Table {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  /// Last write wins for a repeated name (each section keeps insertion
  /// order for stable output).
  void set_counter(const std::string& name, std::uint64_t value);
  void set_gauge(const std::string& name, double value);
  void add_histogram(const std::string& name, HistogramSnapshot snapshot);
  void add_ttf_trace(const std::string& name,
                     std::vector<TtfTraceEntry> entries);
  void add_table(std::string name, std::vector<std::string> headers,
                 std::vector<std::vector<std::string>> rows);

  const std::vector<std::pair<std::string, std::uint64_t>>& counters() const {
    return counters_;
  }
  const std::vector<std::pair<std::string, double>>& gauges() const {
    return gauges_;
  }
  const std::vector<std::pair<std::string, HistogramSnapshot>>& histograms()
      const {
    return histograms_;
  }
  const std::vector<std::pair<std::string, std::vector<TtfTraceEntry>>>&
  ttf_traces() const {
    return ttf_traces_;
  }
  const std::vector<Table>& tables() const { return tables_; }

  std::string to_json() const;
  void write_csv(std::ostream& os) const;
  void dump(std::ostream& os) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms_;
  std::vector<std::pair<std::string, std::vector<TtfTraceEntry>>> ttf_traces_;
  std::vector<Table> tables_;
};

}  // namespace clue::obs
