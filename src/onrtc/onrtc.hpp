// ONRTC — Optimal Non-overlap Routing Table Construction.
//
// Reimplementation of the compression stage CLUE builds on (Yang et al.,
// "Constructing Optimal Non-overlap Routing Tables", ICC 2012). Given a
// FIB with longest-prefix-match semantics, produce the smallest set of
// pairwise-disjoint prefixes that computes the same forwarding function:
// every routed address is covered by exactly one output prefix carrying
// its correct next hop, and no unrouted address is covered at all.
//
// Algorithm: conceptually leaf-push the LPM function down to disjoint
// regions, then merge every maximal subtree on which the function is
// constant into one prefix. This greedy maximal merge is optimal: a
// disjoint prefix set restricted to a subtree either contains the subtree
// root itself (possible only when the function is constant there, cost 1)
// or splits exactly into independent child subproblems — so costs add and
// no smaller representation exists.
//
// Non-overlap is what buys CLUE its headline properties: TCAM entries can
// be stored in arbitrary order (no priority encoder), updates never
// cascade (no domino effect), and partitions split exactly evenly.
#pragma once

#include <vector>

#include "trie/binary_trie.hpp"

namespace clue::onrtc {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

/// Compresses `fib` into the minimal equivalent non-overlapping table.
/// The result is sorted by (address, length), i.e. in-order.
std::vector<Route> compress(const trie::BinaryTrie& fib);

/// Statistics of one compression run, as reported in the paper's Fig. 8.
struct CompressionStats {
  std::size_t original_routes = 0;
  std::size_t compressed_routes = 0;

  double ratio() const {
    return original_routes == 0
               ? 1.0
               : static_cast<double>(compressed_routes) /
                     static_cast<double>(original_routes);
  }
};

/// Convenience wrapper returning both the table and its statistics.
struct CompressionResult {
  std::vector<Route> table;
  CompressionStats stats;
};

CompressionResult compress_with_stats(const trie::BinaryTrie& fib);

}  // namespace clue::onrtc
