// CompressedFib — the paper's control-plane trie with incremental ONRTC.
//
// Holds both the ground-truth FIB (what BGP announced) and its ONRTC-
// compressed non-overlapping image (what the TCAMs store). Each
// announce/withdraw updates the ground truth, locally re-derives the
// compressed image on the affected subtree only, and returns the minimal
// diff — the exact write/delete/modify operations the data plane must
// apply. This is TTF1's workload in the paper's update experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "onrtc/onrtc.hpp"
#include "trie/binary_trie.hpp"

namespace clue::onrtc {

/// One operation on the compressed (non-overlapping) table.
enum class FibOpKind : std::uint8_t {
  kInsert,  ///< a new disjoint prefix appears
  kDelete,  ///< a disjoint prefix disappears
  kModify,  ///< same prefix, new next hop (in-place TCAM rewrite)
};

struct FibOp {
  FibOpKind kind;
  Route route;  ///< for kDelete this carries the *old* next hop

  friend bool operator==(const FibOp&, const FibOp&) = default;
};

class CompressedFib {
 public:
  CompressedFib() = default;

  /// Builds from an existing ground-truth FIB (full compression).
  explicit CompressedFib(const trie::BinaryTrie& ground_truth);

  /// BGP announce: route `prefix -> next_hop` is added or re-advertised.
  /// Returns the diff on the compressed table (possibly empty).
  std::vector<FibOp> announce(const Prefix& prefix, NextHop next_hop);

  /// BGP withdraw: the route at `prefix` disappears.
  std::vector<FibOp> withdraw(const Prefix& prefix);

  /// LPM on the compressed image — must always agree with ground truth.
  NextHop lookup(Ipv4Address address) const { return compressed_.lookup(address); }

  const trie::BinaryTrie& ground_truth() const { return truth_; }
  const trie::BinaryTrie& compressed() const { return compressed_; }

  /// Compressed table size (number of disjoint prefixes).
  std::size_t size() const { return compressed_.size(); }

 private:
  /// Re-derives the compressed image around `changed` and applies+returns
  /// the diff.
  std::vector<FibOp> refresh(const Prefix& changed);

  /// Fast path: `changed` lies strictly inside the single compressed
  /// region `region` — rebuild only `changed`'s subtree plus the
  /// path-sibling remainder pieces.
  std::vector<FibOp> refresh_under_region(const Route& region,
                                          const Prefix& changed);

  /// Diffs old vs new regions, applies the result to the compressed
  /// trie, and returns it.
  std::vector<FibOp> apply_diff(const std::vector<Route>& old_regions,
                                const std::vector<Route>& new_regions);

  trie::BinaryTrie truth_;
  trie::BinaryTrie compressed_;
};

namespace detail {

/// Internal recursion shared with full compression; exposed for tests.
/// See onrtc.cpp for the contract.
std::optional<NextHop> compress_subtree(const trie::BinaryTrie::Node* node,
                                        const Prefix& at, NextHop inherited,
                                        std::vector<Route>& out);

/// Sorted-set diff of two in-order route lists.
std::vector<FibOp> diff_tables(const std::vector<Route>& old_table,
                               const std::vector<Route>& new_table);

}  // namespace detail

}  // namespace clue::onrtc
