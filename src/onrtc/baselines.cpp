#include "onrtc/baselines.hpp"

#include <algorithm>
#include <vector>

namespace clue::onrtc {

using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;
using trie::BinaryTrie;

namespace {

void leaf_push_node(const BinaryTrie::Node* node, const Prefix& at,
                    NextHop inherited, std::vector<Route>& out) {
  if (!node) {
    if (inherited != netbase::kNoRoute) out.push_back(Route{at, inherited});
    return;
  }
  const NextHop effective = node->next_hop.value_or(inherited);
  if (node->is_leaf()) {
    if (effective != netbase::kNoRoute) out.push_back(Route{at, effective});
    return;
  }
  leaf_push_node(node->child[0], at.child(0), effective, out);
  leaf_push_node(node->child[1], at.child(1), effective, out);
}

}  // namespace

std::vector<Route> leaf_push(const trie::BinaryTrie& fib) {
  std::vector<Route> out;
  if (!fib.root()) return out;
  leaf_push_node(fib.root(), Prefix(), netbase::kNoRoute, out);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// ORTC (Draves et al. 1999). "No route" participates as an ordinary
// next-hop value, so default-free tables compress correctly; an emitted
// kNoRoute entry models the null/drop TCAM entry a real deployment
// would install to punch a hole in a shorter covering prefix.

namespace {

// Sorted small set of next hops.
using HopSet = std::vector<NextHop>;

HopSet intersect(const HopSet& a, const HopSet& b) {
  HopSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

HopSet unite(const HopSet& a, const HopSet& b) {
  HopSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool contains(const HopSet& set, NextHop hop) {
  return std::binary_search(set.begin(), set.end(), hop);
}

struct OrtcNode {
  std::ptrdiff_t child[2] = {-1, -1};  // -1 = absent (uniform leaf)
  HopSet candidates;
};

// Pass 1 (bottom-up): build the candidate-set tree over the normalized
// (conceptually full) trie. Missing subtrees are uniform leaves whose
// value is the inherited LPM answer.
std::ptrdiff_t build(const BinaryTrie::Node* node, NextHop inherited,
                     std::vector<OrtcNode>& pool) {
  OrtcNode result;
  if (!node) {
    result.candidates = {inherited};
    pool.push_back(std::move(result));
    return static_cast<std::ptrdiff_t>(pool.size()) - 1;
  }
  const NextHop effective = node->next_hop.value_or(inherited);
  if (node->is_leaf()) {
    result.candidates = {effective};
    pool.push_back(std::move(result));
    return static_cast<std::ptrdiff_t>(pool.size()) - 1;
  }
  result.child[0] = build(node->child[0], effective, pool);
  result.child[1] = build(node->child[1], effective, pool);
  const auto& left = pool[static_cast<std::size_t>(result.child[0])];
  const auto& right = pool[static_cast<std::size_t>(result.child[1])];
  auto common = intersect(left.candidates, right.candidates);
  result.candidates = common.empty()
                          ? unite(left.candidates, right.candidates)
                          : std::move(common);
  pool.push_back(std::move(result));
  return static_cast<std::ptrdiff_t>(pool.size()) - 1;
}

// Pass 2 (top-down): keep the inherited choice where possible, emit a
// route where not.
void choose(const std::vector<OrtcNode>& pool, std::ptrdiff_t index,
            const Prefix& at, NextHop inherited, std::vector<Route>& out) {
  const auto& node = pool[static_cast<std::size_t>(index)];
  NextHop chosen = inherited;
  if (!contains(node.candidates, inherited)) {
    chosen = node.candidates.front();
    out.push_back(Route{at, chosen});
  }
  if (node.child[0] >= 0) choose(pool, node.child[0], at.child(0), chosen, out);
  if (node.child[1] >= 0) choose(pool, node.child[1], at.child(1), chosen, out);
}

}  // namespace

std::vector<Route> ortc_compress(const trie::BinaryTrie& fib) {
  std::vector<Route> out;
  if (!fib.root()) return out;
  std::vector<OrtcNode> pool;
  pool.reserve(fib.node_count() + 1);
  const auto root = build(fib.root(), netbase::kNoRoute, pool);
  choose(pool, root, Prefix(), netbase::kNoRoute, out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace clue::onrtc
