// Compression baselines the paper positions ONRTC against (§II-A).
//
//  * leaf_push — controlled prefix expansion (Srinivasan & Varghese,
//    ref [13]): push every route down to the disjoint leaves of the
//    trie. The only prior art that fully eliminates overlap, but it
//    "substantially incurs the expansion of routing table": no merging
//    happens, so the output is the *un-minimised* disjoint cover.
//  * ortc_compress — Optimal Routing Table Constructor (Draves, King,
//    Venkatachary & Zill, INFOCOM 1999, ref [5]): the optimal
//    *overlapping* compression. Smaller than ONRTC's output, but the
//    result still needs length-ordered TCAM layout, a priority encoder,
//    and suffers the domino effect — exactly the trade the paper's
//    Table-less discussion walks through.
//
// Sizes always satisfy:  ortc <= onrtc <= original (for typical tables)
// and                    onrtc <= leaf_push,
// with all four computing the same forwarding function.
#pragma once

#include <vector>

#include "trie/binary_trie.hpp"

namespace clue::onrtc {

/// Full leaf-pushing: the disjoint cover of the LPM function with no
/// merging. Sorted by (address, length).
std::vector<netbase::Route> leaf_push(const trie::BinaryTrie& fib);

/// Classic three-pass ORTC: the minimal *overlapping* table equivalent
/// to `fib`. Sorted by (address, length). Unrouted space maps to
/// "no route" exactly as in the input.
std::vector<netbase::Route> ortc_compress(const trie::BinaryTrie& fib);

}  // namespace clue::onrtc
