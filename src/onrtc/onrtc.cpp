#include "onrtc/onrtc.hpp"

#include <algorithm>
#include <optional>

#include "onrtc/compressed_fib.hpp"

namespace clue::onrtc {

namespace detail {

// Returns the constant forwarding value of `node`'s subtree if there is
// one (kNoRoute meaning "no address in the subtree is routed"), or
// nullopt when the subtree is mixed — in which case all of its maximal
// constant regions have been appended to `out` (unsorted; callers sort).
// `inherited` is the LPM value the subtree inherits from strict
// ancestors; a null `node` therefore denotes a subtree uniformly equal
// to `inherited`.
std::optional<NextHop> compress_subtree(const trie::BinaryTrie::Node* node,
                                        const Prefix& at, NextHop inherited,
                                        std::vector<Route>& out) {
  if (!node) return inherited;
  const NextHop effective = node->next_hop.value_or(inherited);
  if (node->is_leaf()) return effective;

  const auto left =
      compress_subtree(node->child[0], at.child(0), effective, out);
  const auto right =
      compress_subtree(node->child[1], at.child(1), effective, out);
  if (left && right && *left == *right) return *left;

  if (left && *left != netbase::kNoRoute) {
    out.push_back(Route{at.child(0), *left});
  }
  if (right && *right != netbase::kNoRoute) {
    out.push_back(Route{at.child(1), *right});
  }
  return std::nullopt;
}

}  // namespace detail

std::vector<Route> compress(const trie::BinaryTrie& fib) {
  std::vector<Route> out;
  if (!fib.root()) return out;
  out.reserve(fib.size());
  const auto constant = detail::compress_subtree(fib.root(), Prefix(),
                                                 netbase::kNoRoute, out);
  if (constant && *constant != netbase::kNoRoute) {
    out.push_back(Route{Prefix(), *constant});
  }
  std::sort(out.begin(), out.end());
  return out;
}

CompressionResult compress_with_stats(const trie::BinaryTrie& fib) {
  CompressionResult result;
  result.table = compress(fib);
  result.stats.original_routes = fib.size();
  result.stats.compressed_routes = result.table.size();
  return result;
}

}  // namespace clue::onrtc
