#include "onrtc/compressed_fib.hpp"

#include <algorithm>

namespace clue::onrtc {

namespace detail {

std::vector<FibOp> diff_tables(const std::vector<Route>& old_table,
                               const std::vector<Route>& new_table) {
  std::vector<FibOp> ops;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old_table.size() || j < new_table.size()) {
    if (i == old_table.size()) {
      ops.push_back(FibOp{FibOpKind::kInsert, new_table[j++]});
    } else if (j == new_table.size()) {
      ops.push_back(FibOp{FibOpKind::kDelete, old_table[i++]});
    } else if (old_table[i].prefix == new_table[j].prefix) {
      if (old_table[i].next_hop != new_table[j].next_hop) {
        ops.push_back(FibOp{FibOpKind::kModify, new_table[j]});
      }
      ++i;
      ++j;
    } else if (old_table[i].prefix < new_table[j].prefix) {
      ops.push_back(FibOp{FibOpKind::kDelete, old_table[i++]});
    } else {
      ops.push_back(FibOp{FibOpKind::kInsert, new_table[j++]});
    }
  }
  return ops;
}

}  // namespace detail

CompressedFib::CompressedFib(const trie::BinaryTrie& ground_truth)
    : truth_(ground_truth) {
  for (const auto& route : compress(truth_)) {
    compressed_.insert(route.prefix, route.next_hop);
  }
}

std::vector<FibOp> CompressedFib::announce(const Prefix& prefix,
                                           NextHop next_hop) {
  const auto existing = truth_.find(prefix);
  if (existing && *existing == next_hop) return {};  // duplicate announce
  truth_.insert(prefix, next_hop);
  return refresh(prefix);
}

std::vector<FibOp> CompressedFib::withdraw(const Prefix& prefix) {
  if (!truth_.erase(prefix)) return {};  // unknown route
  return refresh(prefix);
}

std::vector<FibOp> CompressedFib::refresh(const Prefix& changed) {
  // The forwarding function can only differ inside `changed`. When a
  // strictly larger region covers it, we can avoid re-walking that whole
  // region: its remainder decomposes into the path siblings between the
  // region root and `changed`, each a maximal piece by construction.
  const auto covering = compressed_.lookup_route(changed.address());
  if (covering && covering->prefix.contains(changed) &&
      covering->prefix != changed) {
    return refresh_under_region(*covering, changed);
  }
  Prefix at = changed;

  std::vector<Route> new_regions;
  const auto constant = detail::compress_subtree(
      truth_.node_at(at), at, truth_.longest_match_above(at), new_regions);
  if (constant) {
    if (*constant != netbase::kNoRoute) {
      // The whole subtree collapsed to one value; it may now merge with
      // equal-valued sibling regions arbitrarily far up. Old compression
      // was maximal, so a mergeable sibling is always exactly one region.
      while (at.length() > 0 && compressed_.find(at.sibling()) == constant) {
        at = at.parent();
      }
      new_regions.assign(1, Route{at, *constant});
    }
  } else {
    std::sort(new_regions.begin(), new_regions.end());
  }

  return apply_diff(compressed_.routes_within(at), new_regions);
}

std::vector<FibOp> CompressedFib::refresh_under_region(const Route& region,
                                                       const Prefix& changed) {
  // Precondition: `region` is the (unique) compressed region strictly
  // containing `changed`; the forwarding function outside `changed` is
  // untouched, so the region's value still holds on region \ changed.
  std::vector<Route> new_regions;
  const auto constant =
      detail::compress_subtree(truth_.node_at(changed), changed,
                               truth_.longest_match_above(changed),
                               new_regions);
  if (constant && *constant == region.next_hop) {
    return {};  // the update did not change the forwarding function
  }
  if (constant) {
    new_regions.clear();
    if (*constant != netbase::kNoRoute) {
      new_regions.push_back(Route{changed, *constant});
    }
  }
  // region \ changed = the sibling of every path prefix between the
  // region root (exclusive) and `changed` (inclusive). Each piece is
  // maximal: its sibling on the path contains `changed`, whose value now
  // differs, so no piece can merge further.
  for (Prefix walk = changed; walk.length() > region.prefix.length();
       walk = walk.parent()) {
    new_regions.push_back(Route{walk.sibling(), region.next_hop});
  }
  std::sort(new_regions.begin(), new_regions.end());
  return apply_diff({region}, new_regions);
}

std::vector<FibOp> CompressedFib::apply_diff(
    const std::vector<Route>& old_regions,
    const std::vector<Route>& new_regions) {
  const auto ops = detail::diff_tables(old_regions, new_regions);
  for (const auto& op : ops) {
    switch (op.kind) {
      case FibOpKind::kInsert:
      case FibOpKind::kModify:
        compressed_.insert(op.route.prefix, op.route.next_hop);
        break;
      case FibOpKind::kDelete:
        compressed_.erase(op.route.prefix);
        break;
    }
  }
  return ops;
}

}  // namespace clue::onrtc
