// ClplSystem — the baseline forwarding plane, state-accurate.
//
// The CLPL counterpart of ClueSystem: an *uncompressed* FIB sub-tree-
// partitioned over N Shah-Gupta TCAM chips, with covering routes
// replicated so every chip answers LPM stand-alone, and RRC-ME logical
// caches. Its purpose is to measure what the paper's §IV-B asserts:
// with an overlapping, partitioned table, one BGP update touches
// *several* chips (the new route plus a replica per bucket it covers)
// and every touched chip pays the block-cascade cost.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/dred.hpp"
#include "tcam/updater.hpp"
#include "trie/binary_trie.hpp"
#include "update/cost_model.hpp"
#include "workload/update_gen.hpp"

namespace clue::system {

struct ClplSystemConfig {
  std::size_t tcam_count = 4;
  /// 0 = auto (2x initial chip contents + headroom).
  std::size_t tcam_capacity = 0;
  std::size_t cache_capacity = 1024;
};

/// Per-update impact report — the quantity CLUE's O(1) story is up
/// against.
struct ClplUpdateResult {
  update::TtfSample ttf;
  std::size_t chips_touched = 0;
  std::size_t entries_written = 0;  ///< primary + replica writes/erases
};

class ClplSystem {
 public:
  ClplSystem(const trie::BinaryTrie& fib, const ClplSystemConfig& config);

  netbase::NextHop lookup(netbase::Ipv4Address address);

  ClplUpdateResult apply(const workload::UpdateMsg& message);

  /// Populates the logical caches through RRC-ME (as lookup traffic
  /// would) so TTF3 invalidation costs are realistic.
  void warm(const std::vector<netbase::Ipv4Address>& addresses);

  const trie::BinaryTrie& fib() const { return fib_; }
  const tcam::TcamChip& chip(std::size_t i) const {
    return chips_[i]->chip();
  }
  std::size_t tcam_count() const { return chips_.size(); }
  std::size_t total_tcam_entries() const;

 private:
  /// Chips that must hold `prefix`: its home bucket plus the bucket of
  /// every carve root it covers (it is a covering route for them).
  std::vector<std::size_t> chips_for(const netbase::Prefix& prefix) const;
  std::size_t home_bucket(const netbase::Prefix& prefix) const;

  trie::BinaryTrie fib_;
  // Deepest-match over carve roots = bucket homing (bucket id + 1 is
  // stored as the "next hop").
  trie::BinaryTrie root_index_;
  std::vector<std::unique_ptr<tcam::ShahGuptaUpdater>> chips_;
  std::vector<std::unique_ptr<engine::DredStore>> caches_;
  // Which chips currently hold each prefix (primary + replicas).
  std::unordered_map<netbase::Prefix, std::vector<std::size_t>> placement_;
};

}  // namespace clue::system
