#include "system/clue_system.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "partition/partition.hpp"

namespace clue::system {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

}  // namespace

ClueSystem::ClueSystem(const trie::BinaryTrie& fib,
                       const SystemConfig& config)
    : fib_(fib) {
  const auto table = fib_.compressed().routes();
  const auto partitions =
      partition::even_partition(table, config.tcam_count);
  boundaries_ =
      partition::even_partition_boundaries(table, config.tcam_count);
  std::vector<std::size_t> identity(config.tcam_count);
  for (std::size_t i = 0; i < config.tcam_count; ++i) identity[i] = i;
  indexing_ =
      std::make_unique<engine::IndexingLogic>(boundaries_, identity);

  std::size_t capacity = config.tcam_capacity;
  if (capacity == 0) {
    capacity = 2 * (table.size() / config.tcam_count + 1) + 8192;
  }
  chips_.reserve(config.tcam_count);
  dreds_.reserve(config.tcam_count);
  for (std::size_t i = 0; i < config.tcam_count; ++i) {
    chips_.push_back(std::make_unique<tcam::ClueUpdater>(capacity));
    for (const auto& route : partitions.buckets[i].routes) {
      chips_[i]->insert(tcam::TcamEntry{route.prefix, route.next_hop});
    }
    dreds_.push_back(
        std::make_unique<engine::DredStore>(config.dred_capacity));
  }
}

std::size_t ClueSystem::chip_of(Ipv4Address address) const {
  return indexing_->tcam_of(address);
}

std::vector<std::pair<std::size_t, Prefix>> ClueSystem::pieces_of(
    const Prefix& prefix) const {
  // Chips are the identity mapping of range buckets, so the shared
  // boundary splitter's bucket indices are chip indices.
  return engine::split_at_boundaries(prefix, boundaries_);
}

NextHop ClueSystem::lookup(Ipv4Address address) {
  const auto result = chips_[chip_of(address)]->chip().search(address);
  return result.hit ? result.next_hop : netbase::kNoRoute;
}

update::TtfSample ClueSystem::apply(const workload::UpdateMsg& message) {
  update::TtfSample sample;

  const auto start = Clock::now();
  const auto ops =
      message.kind == workload::UpdateKind::kAnnounce
          ? fib_.announce(message.prefix, message.next_hop)
          : fib_.withdraw(message.prefix);
  sample.ttf1_ns = elapsed_ns(start);
  if (ops.empty()) return sample;

  // Chips update independently, so TTF2 is the slowest chip's share.
  std::vector<std::size_t> per_chip_ops(chips_.size(), 0);
  std::size_t dred_ops = 0;
  for (const auto& op : ops) {
    for (const auto& [chip, piece] : pieces_of(op.route.prefix)) {
      switch (op.kind) {
        case onrtc::FibOpKind::kInsert:
        case onrtc::FibOpKind::kModify:
          per_chip_ops[chip] +=
              chips_[chip]->insert(tcam::TcamEntry{piece, op.route.next_hop});
          break;
        case onrtc::FibOpKind::kDelete:
          per_chip_ops[chip] += chips_[chip]->erase(piece);
          break;
      }
      // DRed synchronisation (§IV-C): deletes and modifies broadcast one
      // parallel probe to all DReds; inserts need nothing.
      if (op.kind != onrtc::FibOpKind::kInsert) {
        for (auto& dred : dreds_) {
          if (op.kind == onrtc::FibOpKind::kDelete) {
            dred->erase(piece);
          } else {
            // fix(): rewrite in place; a sync message must not promote
            // the entry in LRU order.
            dred->fix(Route{piece, op.route.next_hop});
          }
        }
        ++dred_ops;
      }
    }
  }
  sample.ttf2_ns =
      static_cast<double>(
          *std::max_element(per_chip_ops.begin(), per_chip_ops.end())) *
      update::CostModel::kTcamOpNs;
  sample.ttf3_ns =
      static_cast<double>(dred_ops) * update::CostModel::kTcamOpNs;
  return sample;
}

std::unique_ptr<runtime::LookupRuntime> ClueSystem::runtime(
    runtime::RuntimeConfig config) const {
  if (config.worker_count == 0) config.worker_count = chips_.size();
  return std::make_unique<runtime::LookupRuntime>(fib_.ground_truth(),
                                                  config);
}

engine::EngineSetup ClueSystem::engine_setup() const {
  engine::EngineSetup setup;
  setup.bucket_boundaries = boundaries_;
  setup.bucket_to_tcam.resize(chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    setup.bucket_to_tcam[i] = i;
  }
  setup.tcam_routes.resize(chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    for (const auto& [slot, entry] : chips_[i]->chip().entries()) {
      setup.tcam_routes[i].push_back(Route{entry.prefix, entry.next_hop});
    }
  }
  return setup;
}

std::size_t ClueSystem::total_tcam_entries() const {
  std::size_t total = 0;
  for (const auto& chip : chips_) total += chip->size();
  return total;
}

void ClueSystem::export_metrics(obs::MetricsRegistry& registry) const {
  registry.set_counter("system.routes", fib_.ground_truth().size());
  registry.set_counter("system.compressed_routes", fib_.compressed().size());
  registry.set_counter("system.tcam_entries", total_tcam_entries());
  registry.set_counter("system.tcam_count", chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    const std::string prefix = "system.chip" + std::to_string(i);
    registry.set_counter(prefix + ".entries", chips_[i]->size());
    const auto& stats = dreds_[i]->stats();
    registry.set_counter(prefix + ".dred.lookups", stats.lookups);
    registry.set_counter(prefix + ".dred.hits", stats.hits);
    registry.set_counter(prefix + ".dred.insertions", stats.insertions);
    registry.set_counter(prefix + ".dred.updates", stats.updates);
    registry.set_counter(prefix + ".dred.evictions", stats.evictions);
    registry.set_counter(prefix + ".dred.erasures", stats.erasures);
    registry.set_gauge(prefix + ".dred.hit_rate", stats.hit_rate());
  }
}

}  // namespace clue::system
