#include "system/clue_system.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>

#include "partition/partition.hpp"

namespace clue::system {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

}  // namespace

ClueSystem::ClueSystem(const trie::BinaryTrie& fib,
                       const SystemConfig& config)
    : fib_(fib), planner_(config.rebalance) {
  const auto table = fib_.compressed().routes();
  const auto partitions =
      partition::even_partition(table, config.tcam_count);
  boundaries_ =
      partition::even_partition_boundaries(table, config.tcam_count);
  refresh_indexing();

  if (config.tcam_capacity > 0) {
    tcam_capacity_ = config.tcam_capacity;
  } else {
    const double headroom = std::max(config.tcam_headroom, 0.0);
    const std::size_t per_chip = table.size() / config.tcam_count + 1;
    tcam_capacity_ = static_cast<std::size_t>(
                         static_cast<double>(per_chip) * (1.0 + headroom)) +
                     8192;
  }
  chips_.reserve(config.tcam_count);
  dreds_.reserve(config.tcam_count);
  for (std::size_t i = 0; i < config.tcam_count; ++i) {
    chips_.push_back(std::make_unique<tcam::ClueUpdater>(tcam_capacity_));
    for (const auto& route : partitions.buckets[i].routes) {
      chips_[i]->insert(tcam::TcamEntry{route.prefix, route.next_hop});
    }
    dreds_.push_back(
        std::make_unique<engine::DredStore>(config.dred_capacity));
  }
}

void ClueSystem::refresh_indexing() {
  std::vector<std::size_t> identity(boundaries_.size() + 1);
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  indexing_ =
      std::make_unique<engine::IndexingLogic>(boundaries_, identity);
}

std::size_t ClueSystem::chip_of(Ipv4Address address) const {
  return indexing_->tcam_of(address);
}

std::vector<std::pair<std::size_t, Prefix>> ClueSystem::pieces_of(
    const Prefix& prefix) const {
  // Chips are the identity mapping of range buckets, so the shared
  // boundary splitter's bucket indices are chip indices.
  return engine::split_at_boundaries(prefix, boundaries_);
}

NextHop ClueSystem::lookup(Ipv4Address address) {
  const auto result = chips_[chip_of(address)]->chip().search(address);
  return result.hit ? result.next_hop : netbase::kNoRoute;
}

// One (kind, region-or-piece, chip) work item per chip touched.
// Inserts split fresh at the current boundaries; deletes/modifies
// carry the whole region and expand to the chip's *stored* shapes at
// execution time — after a boundary migration the stored shapes no
// longer match a fresh split, so an exact-prefix erase of recomputed
// pieces would strand entries.
std::vector<ClueSystem::WorkItem> ClueSystem::plan_work(
    std::span<const onrtc::FibOp> ops) const {
  std::vector<WorkItem> work;
  for (const auto& op : ops) {
    if (op.kind == onrtc::FibOpKind::kInsert) {
      for (const auto& [chip, piece] : pieces_of(op.route.prefix)) {
        work.push_back(
            WorkItem{op.kind, chip, Route{piece, op.route.next_hop}});
      }
    } else {
      std::size_t last_chip = ~std::size_t{0};
      for (const auto& [chip, piece] : pieces_of(op.route.prefix)) {
        if (chip == last_chip) continue;
        last_chip = chip;
        work.push_back(WorkItem{op.kind, chip, op.route});
      }
    }
  }
  return work;
}

// Worst-case growth precheck (admission control). Counting every
// absent insert piece and crediting no delete is a true upper bound on
// any transient occupancy during the op sequence, so a passing update
// can never hit TcamFullError mid-flight and leave a chip half
// written. The price is a rare spurious rejection of a delete+insert
// update against a brim-full chip.
bool ClueSystem::fits(const std::vector<WorkItem>& work) const {
  std::vector<std::size_t> projected(chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    projected[i] = chips_[i]->size();
  }
  for (const auto& item : work) {
    if (item.kind != onrtc::FibOpKind::kInsert) continue;
    if (!chips_[item.chip]->chip().slot_of(item.route.prefix)) {
      ++projected[item.chip];
    }
  }
  for (const auto& p : projected) {
    if (p > tcam_capacity_) return false;
  }
  return true;
}

// Chips update independently, so TTF2 is the slowest chip's share.
void ClueSystem::execute_work(const std::vector<WorkItem>& work,
                              update::TtfSample& sample) {
  std::vector<std::size_t> per_chip_ops(chips_.size(), 0);
  std::size_t dred_ops = 0;
  for (const auto& item : work) {
    switch (item.kind) {
      case onrtc::FibOpKind::kInsert:
        per_chip_ops[item.chip] += chips_[item.chip]->insert(
            tcam::TcamEntry{item.route.prefix, item.route.next_hop});
        break;
      case onrtc::FibOpKind::kDelete:
        for (const auto& stored :
             chips_[item.chip]->chip().entries_within(item.route.prefix)) {
          per_chip_ops[item.chip] += chips_[item.chip]->erase(stored.prefix);
          // DRed synchronisation (§IV-C): one parallel probe per stored
          // shape to all DReds (DReds only ever cache stored shapes).
          for (auto& dred : dreds_) dred->erase(stored.prefix);
          ++dred_ops;
        }
        break;
      case onrtc::FibOpKind::kModify:
        for (const auto& stored :
             chips_[item.chip]->chip().entries_within(item.route.prefix)) {
          per_chip_ops[item.chip] += chips_[item.chip]->insert(
              tcam::TcamEntry{stored.prefix, item.route.next_hop});
          for (auto& dred : dreds_) {
            // fix(): rewrite in place; a sync message must not promote
            // the entry in LRU order.
            dred->fix(Route{stored.prefix, item.route.next_hop});
          }
          ++dred_ops;
        }
        break;
    }
  }
  sample.ttf2_ns +=
      static_cast<double>(
          *std::max_element(per_chip_ops.begin(), per_chip_ops.end())) *
      update::CostModel::kTcamOpNs;
  sample.ttf3_ns +=
      static_cast<double>(dred_ops) * update::CostModel::kTcamOpNs;
}

update::TtfSample ClueSystem::apply(const workload::UpdateMsg& message) {
  update::TtfSample sample;

  const auto start = Clock::now();
  // Rollback token for a rejected admission: the exact prior route.
  const std::optional<NextHop> prior =
      fib_.ground_truth().find(message.prefix);
  const auto ops =
      message.kind == workload::UpdateKind::kAnnounce
          ? fib_.announce(message.prefix, message.next_hop)
          : fib_.withdraw(message.prefix);
  sample.ttf1_ns = elapsed_ns(start);
  if (ops.empty()) return sample;

  auto work = plan_work(ops);
  if (!fits(work)) {
    // Emergency rebalance: even out occupancy, then re-plan at the new
    // boundaries. If even the balanced layout cannot absorb the update,
    // reject it cleanly: undo the trie diff so trie, chips, and DReds
    // all still agree, and surface a typed, recoverable error.
    std::size_t moved = planner_.config().enabled ? rebalance_pass() : 0;
    if (moved > 0) work = plan_work(ops);
    if (moved == 0 || !fits(work)) {
      if (prior) {
        fib_.announce(message.prefix, *prior);
      } else if (message.kind == workload::UpdateKind::kAnnounce) {
        fib_.withdraw(message.prefix);
      }
      ++updates_rejected_;
      throw tcam::TcamFullError("ClueSystem::apply", tcam_capacity_);
    }
  }

  execute_work(work, sample);

  // Drift watch: even out while the skew is still small.
  if (planner_.should_rebalance(chip_occupancy(), tcam_capacity_)) {
    rebalance_pass();
  }
  return sample;
}

update::BatchTtfSample ClueSystem::apply_batch(
    std::span<const workload::UpdateMsg> messages) {
  update::BatchTtfSample batch;
  if (messages.empty()) return batch;

  // --- TTF1: every message's incremental ONRTC diff, in order. --------
  // per_msg[k] keeps message k's raw ops separable for suffix rollback;
  // priors[k] is its exact prior ground-truth route (rollback token).
  const auto start = Clock::now();
  std::vector<std::vector<onrtc::FibOp>> per_msg;
  std::vector<std::optional<NextHop>> priors;
  per_msg.reserve(messages.size());
  priors.reserve(messages.size());
  for (const auto& message : messages) {
    priors.push_back(fib_.ground_truth().find(message.prefix));
    per_msg.push_back(
        message.kind == workload::UpdateKind::kAnnounce
            ? fib_.announce(message.prefix, message.next_hop)
            : fib_.withdraw(message.prefix));
  }
  batch.ttf.ttf1_ns = elapsed_ns(start);

  // --- Coalesce + admission with exact suffix rollback. ---------------
  // Re-planning inside the loop is required even when `merged` shrinks:
  // an emergency rebalance moves boundaries, which changes every piece.
  std::size_t keep = messages.size();
  std::vector<onrtc::FibOp> raw;
  std::vector<onrtc::FibOp> merged;
  update::CoalesceStats stats;
  std::vector<WorkItem> work;
  bool rebalanced = !planner_.config().enabled;
  for (;;) {
    raw.clear();
    for (std::size_t k = 0; k < keep; ++k) {
      raw.insert(raw.end(), per_msg[k].begin(), per_msg[k].end());
    }
    merged = update::coalesce_ops(raw, &stats);
    work = plan_work(merged);
    if (fits(work) || keep == 0) break;
    // One emergency rebalance per batch before shedding any message —
    // mirrors apply()'s order (rebalance first, reject second).
    if (!rebalanced) {
      rebalanced = true;
      if (rebalance_pass() > 0) continue;
    }
    --keep;
    const auto& message = messages[keep];
    if (priors[keep]) {
      fib_.announce(message.prefix, *priors[keep]);
    } else if (message.kind == workload::UpdateKind::kAnnounce) {
      fib_.withdraw(message.prefix);
    }
    ++updates_rejected_;
  }
  batch.applied = keep;
  batch.rejected = messages.size() - keep;
  batch.raw_ops = stats.raw_ops;
  batch.merged_ops = stats.merged_ops;

  // --- TTF2 + TTF3: one chip pass and one DRed sweep over net ops. ----
  execute_work(work, batch.ttf);

  if (planner_.should_rebalance(chip_occupancy(), tcam_capacity_)) {
    rebalance_pass();
  }
  return batch;
}

std::vector<std::size_t> ClueSystem::chip_occupancy() const {
  std::vector<std::size_t> occupancy(chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    occupancy[i] = chips_[i]->size();
  }
  return occupancy;
}

double ClueSystem::skew() const {
  const auto occupancy = chip_occupancy();
  return runtime::RebalancePlanner::skew(occupancy);
}

std::size_t ClueSystem::migrate(const runtime::MigrationStep& step) {
  auto& donor = *chips_[step.donor];
  auto& receiver = *chips_[step.receiver];
  // Prefix() is 0.0.0.0/0: all stored routes, address-sorted.
  const std::vector<Route> donor_routes =
      donor.chip().entries_within(Prefix());
  if (donor_routes.empty()) return 0;
  const bool rightward = step.receiver == step.donor + 1;
  std::size_t count = std::min(step.count, donor_routes.size());
  // A leftward donor keeps its top entry so its upper boundary stays at
  // a real stored address.
  if (!rightward) count = std::min(count, donor_routes.size() - 1);
  // Never migrate into overflow: each migrated entry must find a slot.
  count = std::min(count, receiver.chip().capacity() - receiver.size());
  if (count == 0) return 0;

  const std::size_t first = rightward ? donor_routes.size() - count : 0;
  for (std::size_t i = first; i < first + count; ++i) {
    const Route& route = donor_routes[i];
    receiver.insert(tcam::TcamEntry{route.prefix, route.next_hop});
    donor.erase(route.prefix);
    // Exclusion invariant: the receiver's DRed must not cache what is
    // now the receiver's own prefix. Other DReds may keep it — the
    // route itself did not change.
    dreds_[step.receiver]->erase(route.prefix);
  }
  const std::size_t boundary = rightward ? step.donor : step.receiver;
  boundaries_[boundary] =
      rightward ? donor_routes[first].prefix.range_low()
                : donor_routes[count].prefix.range_low();
  refresh_indexing();
  return count;
}

std::size_t ClueSystem::rebalance_pass() {
  std::size_t steps = 0;
  while (steps < planner_.config().max_steps_per_pass) {
    const auto occupancy = chip_occupancy();
    const auto step = planner_.plan_step(occupancy);
    if (!step) break;
    const std::size_t moved = migrate(*step);
    if (moved == 0) break;
    entries_migrated_ += moved;
    ++rebalance_steps_;
    ++steps;
  }
  if (steps > 0) ++rebalance_passes_;
  return steps;
}

std::size_t ClueSystem::rebalance_now() { return rebalance_pass(); }

std::unique_ptr<runtime::LookupRuntime> ClueSystem::runtime(
    runtime::RuntimeConfig config) const {
  if (config.worker_count == 0) config.worker_count = chips_.size();
  return std::make_unique<runtime::LookupRuntime>(fib_.ground_truth(),
                                                  config);
}

engine::EngineSetup ClueSystem::engine_setup() const {
  engine::EngineSetup setup;
  setup.bucket_boundaries = boundaries_;
  setup.bucket_to_tcam.resize(chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    setup.bucket_to_tcam[i] = i;
  }
  setup.tcam_routes.resize(chips_.size());
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    for (const auto& [slot, entry] : chips_[i]->chip().entries()) {
      setup.tcam_routes[i].push_back(Route{entry.prefix, entry.next_hop});
    }
  }
  return setup;
}

std::size_t ClueSystem::total_tcam_entries() const {
  std::size_t total = 0;
  for (const auto& chip : chips_) total += chip->size();
  return total;
}

void ClueSystem::export_metrics(obs::MetricsRegistry& registry) const {
  registry.set_counter("system.routes", fib_.ground_truth().size());
  registry.set_counter("system.compressed_routes", fib_.compressed().size());
  registry.set_counter("system.tcam_entries", total_tcam_entries());
  registry.set_counter("system.tcam_count", chips_.size());
  registry.set_counter("system.tcam_capacity", tcam_capacity_);
  registry.set_counter("system.updates_rejected", updates_rejected_);
  registry.set_counter("system.rebalance_passes", rebalance_passes_);
  registry.set_counter("system.rebalance_steps", rebalance_steps_);
  registry.set_counter("system.entries_migrated", entries_migrated_);
  registry.set_gauge("system.skew", skew());
  const auto occupancy = chip_occupancy();
  const std::size_t occupied_max =
      occupancy.empty()
          ? 0
          : *std::max_element(occupancy.begin(), occupancy.end());
  // Fraction of the fullest chip still free — the overflow early warning
  // the rebalancer's headroom watermark fires on.
  registry.set_gauge("system.headroom_remaining",
                     tcam_capacity_ == 0
                         ? 1.0
                         : 1.0 - static_cast<double>(occupied_max) /
                                     static_cast<double>(tcam_capacity_));
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    const std::string prefix = "system.chip" + std::to_string(i);
    registry.set_counter(prefix + ".entries", chips_[i]->size());
    const auto& stats = dreds_[i]->stats();
    registry.set_counter(prefix + ".dred.lookups", stats.lookups);
    registry.set_counter(prefix + ".dred.hits", stats.hits);
    registry.set_counter(prefix + ".dred.insertions", stats.insertions);
    registry.set_counter(prefix + ".dred.updates", stats.updates);
    registry.set_counter(prefix + ".dred.evictions", stats.evictions);
    registry.set_counter(prefix + ".dred.erasures", stats.erasures);
    registry.set_gauge(prefix + ".dred.hit_rate", stats.hit_rate());
  }
}

}  // namespace clue::system
