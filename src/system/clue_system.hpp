// ClueSystem — the deployable facade over the whole paper.
//
// One object owning the complete forwarding plane: the incremental
// ONRTC control plane, N slot-level TCAM chips holding the even range
// partition of the compressed table, and the per-chip DRed stores.
// It answers lookups straight from the chips and pushes BGP updates end
// to end with TTF accounting — the API a linecard integration would
// program against. (The clock-stepped ParallelEngine remains the tool
// for throughput experiments; this class is about *state* fidelity:
// chip contents always equal the compressed table, split at the
// partition boundaries.)
//
// Boundary subtlety the paper glosses over: an update can create a
// merged region that *spans* a partition boundary. Storing it on one
// chip would make the other chip miss, so the system splits such
// regions into per-chip CIDR pieces (netbase::cidr_cover) — a few extra
// entries, each still O(1) to install.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/dred.hpp"
#include "engine/indexing_logic.hpp"
#include "engine/parallel_engine.hpp"
#include "obs/metrics_registry.hpp"
#include "onrtc/compressed_fib.hpp"
#include "runtime/lookup_runtime.hpp"
#include "tcam/updater.hpp"
#include "update/cost_model.hpp"
#include "update/group_commit.hpp"
#include "workload/update_gen.hpp"

namespace clue::system {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

struct SystemConfig {
  std::size_t tcam_count = 4;
  /// Per-chip capacity; 0 = auto-size from the initial even share with
  /// `tcam_headroom` growth headroom (see below).
  std::size_t tcam_capacity = 0;
  /// Fraction of growth headroom the auto-sized capacity reserves above
  /// the initial per-chip share: capacity = share * (1 + tcam_headroom)
  /// + 8192 slack. The default 1.0 (i.e. +100%) keeps the historical
  /// "2x initial partition" sizing. Ignored when tcam_capacity is set.
  double tcam_headroom = 1.0;
  std::size_t dred_capacity = 1024;
  /// Online boundary-rebalancer knobs (shared with the runtime, so the
  /// serial and concurrent planes balance identically).
  runtime::RebalanceConfig rebalance;
};

class ClueSystem {
 public:
  ClueSystem(const trie::BinaryTrie& fib, const SystemConfig& config);

  /// Data-plane lookup on the home chip (LPM; kNoRoute when unrouted).
  NextHop lookup(Ipv4Address address);

  /// Whole-path update: trie -> affected chips -> DReds. TTF2 charges
  /// the *critical path* (chips update in parallel): max ops on any one
  /// chip x 24 ns.
  ///
  /// Admission control mirrors the runtime: an update whose (worst-case)
  /// growth would overflow a chip triggers an emergency rebalance, and
  /// if even the balanced layout cannot absorb it the trie diff is
  /// rolled back and tcam::TcamFullError is thrown — no chip or DRed is
  /// touched on the rejected path, so all three stay consistent. After
  /// a successful apply a watermark crossing runs a rebalance pass.
  update::TtfSample apply(const workload::UpdateMsg& message);

  /// Group commit: applies a whole burst as one table transition per
  /// chip. All trie diffs run first, their ops coalesce to the burst's
  /// net effect (update::coalesce_ops), and each affected chip plus the
  /// DReds are written once per net op. TTF2 remains the critical path
  /// (max net ops on any one chip x 24 ns); TTF3 is one probe sweep per
  /// net delete/modify shape.
  ///
  /// Admission is exact at batch granularity: overflow first triggers an
  /// emergency rebalance, then messages roll back from the *end* of the
  /// batch until the remainder fits. The committed prefix stays
  /// consistent across trie, chips, and DReds; the rejected suffix is
  /// counted (updates_rejected()) instead of throwing.
  update::BatchTtfSample apply_batch(
      std::span<const workload::UpdateMsg> messages);

  /// Forces one rebalance pass regardless of watermarks; returns the
  /// number of migrations executed (0 when already even).
  std::size_t rebalance_now();

  /// Entries currently stored per chip.
  std::vector<std::size_t> chip_occupancy() const;
  /// Current max/min chip occupancy ratio (empty chips count as 1).
  double skew() const;
  /// The enforced per-chip capacity (explicit or auto-sized).
  std::size_t tcam_capacity() const { return tcam_capacity_; }
  /// Updates rejected with TcamFullError (after rollback).
  std::uint64_t updates_rejected() const { return updates_rejected_; }

  /// Builds an engine setup snapshot of the current chip contents, for
  /// throughput experiments against the live table.
  engine::EngineSetup engine_setup() const;

  /// Spawns a concurrent data-plane runtime over this system's current
  /// ground truth: one worker thread per chip, lock-free home FIFOs,
  /// RCU-style snapshot updates. `config.worker_count == 0` means
  /// "match this system's chip count". The runtime owns its own
  /// control plane from the moment of creation; updates applied to it
  /// do not feed back into this (serial) system.
  std::unique_ptr<runtime::LookupRuntime> runtime(
      runtime::RuntimeConfig config = {}) const;

  const onrtc::CompressedFib& fib() const { return fib_; }
  const tcam::TcamChip& chip(std::size_t i) const {
    return chips_[i]->chip();
  }
  const engine::DredStore& dred(std::size_t i) const { return *dreds_[i]; }
  std::size_t tcam_count() const { return chips_.size(); }

  /// Total entries across chips (>= fib().size() when regions had to be
  /// split at partition boundaries).
  std::size_t total_tcam_entries() const;

  /// Fills `registry` with table sizes and per-chip DRed statistics
  /// ("system.chip<i>.dred.*" — hits, insertions vs. updates, evictions,
  /// erasures — the fields the EXPERIMENTS.md hit-rate tables cite).
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// One (kind, region-or-piece) chip work item; deletes/modifies carry
  /// the whole region and expand to the chip's stored shapes at
  /// execution time (see apply()).
  struct WorkItem {
    onrtc::FibOpKind kind;
    std::size_t chip;
    Route route;
  };

  /// The chip index owning `address`.
  std::size_t chip_of(Ipv4Address address) const;
  /// Splits `prefix` at partition boundaries into per-chip pieces.
  std::vector<std::pair<std::size_t, Prefix>> pieces_of(
      const Prefix& prefix) const;
  /// Expands diff ops into per-chip work items at current boundaries.
  std::vector<WorkItem> plan_work(std::span<const onrtc::FibOp> ops) const;
  /// Worst-case growth admission check for `work` (see apply()).
  bool fits(const std::vector<WorkItem>& work) const;
  /// Executes planned work on chips + DReds, filling TTF2/TTF3 of
  /// `sample` (critical-path chip ops, one probe sweep per shape).
  void execute_work(const std::vector<WorkItem>& work,
                    update::TtfSample& sample);
  /// Rebuilds indexing_ from boundaries_ after a migration.
  void refresh_indexing();
  /// Executes one planned migration; returns entries moved.
  std::size_t migrate(const runtime::MigrationStep& step);
  /// Runs plan_step/migrate until even or bounded; returns steps run.
  std::size_t rebalance_pass();

  onrtc::CompressedFib fib_;
  std::vector<Ipv4Address> boundaries_;  // ascending, chips-1 of them
  std::unique_ptr<engine::IndexingLogic> indexing_;
  std::vector<std::unique_ptr<tcam::ClueUpdater>> chips_;
  std::vector<std::unique_ptr<engine::DredStore>> dreds_;
  runtime::RebalancePlanner planner_;
  std::size_t tcam_capacity_ = 0;
  std::uint64_t updates_rejected_ = 0;
  std::uint64_t rebalance_passes_ = 0;
  std::uint64_t rebalance_steps_ = 0;
  std::uint64_t entries_migrated_ = 0;
};

}  // namespace clue::system
