#include "system/clpl_system.hpp"

#include <algorithm>
#include <chrono>

#include "partition/partition.hpp"
#include "rrcme/rrc_me.hpp"

namespace clue::system {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

}  // namespace

ClplSystem::ClplSystem(const trie::BinaryTrie& fib,
                       const ClplSystemConfig& config)
    : fib_(fib) {
  const auto partitions =
      partition::subtree_partition(fib_, config.tcam_count);
  for (std::size_t bucket = 0; bucket < config.tcam_count; ++bucket) {
    for (const auto& root : partitions.bucket_roots[bucket]) {
      root_index_.insert(root, netbase::make_next_hop(
                                   static_cast<std::uint32_t>(bucket) + 1));
    }
  }
  std::size_t capacity = config.tcam_capacity;
  if (capacity == 0) {
    capacity = 2 * partitions.max_bucket() + 8192;
  }
  chips_.reserve(config.tcam_count);
  caches_.reserve(config.tcam_count);
  for (std::size_t bucket = 0; bucket < config.tcam_count; ++bucket) {
    chips_.push_back(std::make_unique<tcam::ShahGuptaUpdater>(capacity));
    for (const auto& route : partitions.buckets[bucket].routes) {
      chips_[bucket]->insert(tcam::TcamEntry{route.prefix, route.next_hop});
      placement_[route.prefix].push_back(bucket);
    }
    caches_.push_back(
        std::make_unique<engine::DredStore>(config.cache_capacity));
  }
  for (auto& [prefix, chips] : placement_) {
    std::sort(chips.begin(), chips.end());
    chips.erase(std::unique(chips.begin(), chips.end()), chips.end());
  }
}

std::size_t ClplSystem::home_bucket(const netbase::Prefix& prefix) const {
  // Deepest carve root containing the prefix; new space with no carve
  // root falls back to chip 0 (both inserts and lookups use this same
  // function, so the fallback is consistent).
  const auto match = root_index_.lookup_route(prefix.range_low());
  if (match && match->prefix.contains(prefix)) {
    return netbase::to_index(match->next_hop) - 1;
  }
  return 0;
}

std::vector<std::size_t> ClplSystem::chips_for(
    const netbase::Prefix& prefix) const {
  std::vector<std::size_t> chips{home_bucket(prefix)};
  // Every carve root strictly inside `prefix` sees it as a covering
  // route; its bucket needs a replica for stand-alone LPM.
  for (const auto& root : root_index_.routes_within(prefix)) {
    chips.push_back(netbase::to_index(root.next_hop) - 1);
  }
  std::sort(chips.begin(), chips.end());
  chips.erase(std::unique(chips.begin(), chips.end()), chips.end());
  return chips;
}

netbase::NextHop ClplSystem::lookup(netbase::Ipv4Address address) {
  const auto match = root_index_.lookup_route(address);
  const std::size_t chip =
      match ? netbase::to_index(match->next_hop) - 1 : 0;
  const auto result = chips_[chip]->chip().search(address);
  return result.hit ? result.next_hop : netbase::kNoRoute;
}

ClplUpdateResult ClplSystem::apply(const workload::UpdateMsg& message) {
  ClplUpdateResult result;

  // TTF1: plain trie update.
  const auto start = Clock::now();
  bool table_changed;
  if (message.kind == workload::UpdateKind::kAnnounce) {
    const auto existing = fib_.find(message.prefix);
    table_changed = !existing || *existing != message.next_hop;
    fib_.insert(message.prefix, message.next_hop);
  } else {
    table_changed = fib_.erase(message.prefix);
  }
  result.ttf.ttf1_ns = elapsed_ns(start);
  if (!table_changed) return result;

  // TTF2: every chip holding (or due to hold) the prefix updates; chips
  // work in parallel, so the wall time is the slowest chip's cascade.
  std::vector<std::size_t> per_chip(chips_.size(), 0);
  if (message.kind == workload::UpdateKind::kAnnounce) {
    auto& chips = placement_[message.prefix];
    if (chips.empty()) chips = chips_for(message.prefix);
    for (const auto chip : chips) {
      per_chip[chip] += chips_[chip]->insert(
          tcam::TcamEntry{message.prefix, message.next_hop});
      ++result.entries_written;
    }
    result.chips_touched = chips.size();
  } else {
    const auto it = placement_.find(message.prefix);
    if (it != placement_.end()) {
      for (const auto chip : it->second) {
        per_chip[chip] += chips_[chip]->erase(message.prefix);
        ++result.entries_written;
      }
      result.chips_touched = it->second.size();
      placement_.erase(it);
    }
  }
  result.ttf.ttf2_ns =
      static_cast<double>(
          *std::max_element(per_chip.begin(), per_chip.end())) *
      update::CostModel::kTcamOpNs;

  // TTF3: RRC-ME cache maintenance (same model as ClplPipeline).
  const trie::BinaryTrie::Node* node = fib_.node_at(message.prefix);
  std::size_t subtree = 0;
  // Cheap subtree size: walk is bounded by the affected region.
  {
    std::vector<const trie::BinaryTrie::Node*> stack;
    if (node) stack.push_back(node);
    while (!stack.empty()) {
      const auto* current = stack.back();
      stack.pop_back();
      ++subtree;
      for (const auto* child : current->child) {
        if (child) stack.push_back(child);
      }
    }
  }
  result.ttf.ttf3_ns =
      static_cast<double>(message.prefix.length() + subtree) *
      update::CostModel::kSramAccessNs;
  std::size_t stale = 0;
  for (auto& cache : caches_) {
    for (const auto& victim : cache->overlapping(message.prefix)) {
      cache->erase(victim);
      ++stale;
    }
  }
  result.ttf.ttf3_ns +=
      static_cast<double>(stale) * update::CostModel::kTcamOpNs;
  return result;
}

void ClplSystem::warm(const std::vector<netbase::Ipv4Address>& addresses) {
  for (const auto address : addresses) {
    const auto fill = rrcme::minimal_expansion(fib_, address);
    if (!fill) continue;
    for (auto& cache : caches_) {
      cache->insert(netbase::Route{fill->prefix, fill->next_hop});
    }
  }
}

std::size_t ClplSystem::total_tcam_entries() const {
  std::size_t total = 0;
  for (const auto& chip : chips_) total += chip->size();
  return total;
}

}  // namespace clue::system
