// Routing-table partition algorithms (paper §III-A, Fig. 9).
//
// Three contenders:
//   CLUE  — the table is non-overlapping, so an in-order walk can simply
//           deal out ceil(M/n) consecutive prefixes per bucket: exactly
//           even, zero redundancy, and each bucket is one address range.
//   CLPL  — sub-tree partition (Dong Lin et al., IPDPS'07): carve
//           subtrees into buckets of bounded size; every route on the
//           path above a carved subtree must be *replicated* into the
//           bucket so LPM still works stand-alone — that is the
//           redundancy the paper counts.
//   SLPL  — ID-bit partition (Zane et al. / Zheng et al.): pick k address
//           bits, bucket = value of those bits; prefixes shorter than the
//           deepest ID bit replicate into every bucket they straddle, and
//           bucket sizes are as uneven as the address plan is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/prefix.hpp"
#include "trie/binary_trie.hpp"

namespace clue::partition {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

/// One bucket of a partition.
struct Bucket {
  std::vector<Route> routes;
};

struct PartitionResult {
  std::vector<Bucket> buckets;
  /// Entries stored beyond the original table size (replicas).
  std::size_t redundancy = 0;
  std::string algorithm;
  /// Sub-tree partition only: the carved subtree roots of each bucket
  /// (including singleton roots for routes stored at split nodes).
  /// Together they cover every stored route; deepest-match over all
  /// roots is the bucket homing function. Empty for other algorithms.
  std::vector<std::vector<Prefix>> bucket_roots;

  std::size_t max_bucket() const;
  std::size_t min_bucket() const;
  std::size_t total_entries() const;
};

/// CLUE: `table` must be sorted, non-overlapping. Splits into `n` buckets
/// of ceil(M/n)/floor(M/n) consecutive entries.
PartitionResult even_partition(const std::vector<Route>& table, std::size_t n);

/// CLPL sub-tree partition over a (possibly overlapping) FIB.
PartitionResult subtree_partition(const trie::BinaryTrie& fib, std::size_t n);

/// SLPL ID-bit partition; `n` must be a power of two. Greedily selects
/// log2(n) bits from the first 16 address bits to minimise the largest
/// bucket, then replicates straddling prefixes.
PartitionResult idbit_partition(const trie::BinaryTrie& fib, std::size_t n);

/// The bucket boundaries of an even partition: `boundaries[i]` is the
/// first address of bucket i+1; bucket i covers
/// [prev boundary, boundaries[i]). Feeds the engine's Indexing Logic.
std::vector<Ipv4Address> even_partition_boundaries(
    const std::vector<Route>& table, std::size_t n);

}  // namespace clue::partition
