#include "partition/partition.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>

namespace clue::partition {

std::size_t PartitionResult::max_bucket() const {
  std::size_t best = 0;
  for (const auto& bucket : buckets) best = std::max(best, bucket.routes.size());
  return best;
}

std::size_t PartitionResult::min_bucket() const {
  if (buckets.empty()) return 0;
  std::size_t best = buckets.front().routes.size();
  for (const auto& bucket : buckets) best = std::min(best, bucket.routes.size());
  return best;
}

std::size_t PartitionResult::total_entries() const {
  std::size_t total = 0;
  for (const auto& bucket : buckets) total += bucket.routes.size();
  return total;
}

// ---------------------------------------------------------------------------
// CLUE: even split of a sorted non-overlapping table (paper §III-A).

namespace {

// Per-bucket counts of an exactly even split. The normal case
// front-loads the `extra` remainder entries. The degenerate case
// (fewer routes than buckets) instead pushes the occupied singletons to
// the *end*: a bucket's range is bounded above by the first address of
// the next bucket, so a trailing empty bucket would need a boundary one
// past the top of the address space — unrepresentable, and historically
// faked with 255.255.255.255 which then claimed that address for an
// empty bucket and produced duplicate boundaries (ambiguous binary
// search). Leading empty buckets need no such sentinel: their
// boundaries repeat the first route's range_low, so addresses below the
// table map to empty bucket 0 and every stored route homes correctly.
std::vector<std::size_t> even_counts(std::size_t total, std::size_t n) {
  std::vector<std::size_t> counts(n, 0);
  const std::size_t base = total / n;
  const std::size_t extra = total % n;
  if (base == 0) {
    for (std::size_t i = n - extra; i < n; ++i) counts[i] = 1;
    return counts;
  }
  for (std::size_t i = 0; i < n; ++i) counts[i] = base + (i < extra ? 1 : 0);
  return counts;
}

}  // namespace

PartitionResult even_partition(const std::vector<Route>& table,
                               std::size_t n) {
  if (n == 0) throw std::invalid_argument("even_partition: n must be > 0");
  PartitionResult result;
  result.algorithm = "clue-even";
  result.buckets.resize(n);
  const std::vector<std::size_t> counts = even_counts(table.size(), n);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto& bucket = result.buckets[i];
    bucket.routes.assign(
        table.begin() + static_cast<std::ptrdiff_t>(cursor),
        table.begin() + static_cast<std::ptrdiff_t>(cursor + counts[i]));
    cursor += counts[i];
  }
  result.redundancy = 0;
  return result;
}

std::vector<Ipv4Address> even_partition_boundaries(
    const std::vector<Route>& table, std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("even_partition_boundaries: n must be > 0");
  }
  std::vector<Ipv4Address> boundaries;
  boundaries.reserve(n - 1);
  const std::vector<std::size_t> counts = even_counts(table.size(), n);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cursor += counts[i];
    // First address of the next bucket. even_counts guarantees a
    // non-empty table never leaves the cursor past the end here (empty
    // buckets lead, so every bucket suffix holds at least one route);
    // an entirely empty table degenerates to address 0 everywhere,
    // homing all addresses to one (empty) bucket — harmless.
    const Ipv4Address boundary = cursor < table.size()
                                     ? table[cursor].prefix.range_low()
                                     : Ipv4Address(0);
    boundaries.push_back(boundary);
  }
  return boundaries;
}

// ---------------------------------------------------------------------------
// CLPL: sub-tree partition (Lin et al.).

namespace {

using Node = trie::BinaryTrie::Node;

std::size_t annotate_counts(const Node* node,
                            std::unordered_map<const Node*, std::size_t>& counts) {
  if (!node) return 0;
  std::size_t count = node->next_hop.has_value() ? 1 : 0;
  count += annotate_counts(node->child[0], counts);
  count += annotate_counts(node->child[1], counts);
  counts.emplace(node, count);
  return count;
}

struct SubtreeCarver {
  const std::unordered_map<const Node*, std::size_t>& counts;
  std::size_t capacity;        // primary routes per bucket
  PartitionResult& result;
  std::size_t remaining = 0;   // primary capacity left in current bucket
  std::size_t current = 0;     // current bucket index
  std::size_t replicas = 0;

  void open_bucket_if_needed() {
    if (remaining > 0) return;
    if (current + 1 < result.buckets.size()) ++current;
    remaining = capacity;
  }

  void place_route(const Route& route) {
    open_bucket_if_needed();
    result.buckets[current].routes.push_back(route);
    result.bucket_roots[current].push_back(route.prefix);
    --remaining;
  }

  // Copies every route on the path above a carved subtree into its
  // bucket so the bucket answers LPM stand-alone.
  void place_covering(const std::vector<Route>& path_routes,
                      Bucket& bucket) {
    for (const auto& route : path_routes) {
      const bool present =
          std::find(bucket.routes.begin(), bucket.routes.end(), route) !=
          bucket.routes.end();
      if (!present) {
        bucket.routes.push_back(route);
        ++replicas;
      }
    }
  }

  void carve(const Node* node, const Prefix& at,
             std::vector<Route>& path_routes) {
    if (!node) return;
    const std::size_t count = counts.at(node);
    if (count == 0) return;
    open_bucket_if_needed();
    if (count <= remaining) {
      // Whole subtree fits: carve it into the current bucket.
      auto& bucket = result.buckets[current];
      place_covering(path_routes, bucket);
      collect(node, at, bucket);
      result.bucket_roots[current].push_back(at);
      remaining -= count;
      return;
    }
    // Split: the node's own route becomes part of the path cover for the
    // carves below, and is also stored now (in order) as a primary entry.
    const bool has_own = node->next_hop.has_value();
    if (has_own) {
      const Route own{at, *node->next_hop};
      place_route(own);
      path_routes.push_back(own);
    }
    carve(node->child[0], at.child(0), path_routes);
    carve(node->child[1], at.child(1), path_routes);
    if (has_own) path_routes.pop_back();
  }

  void collect(const Node* node, const Prefix& at, Bucket& bucket) {
    if (!node) return;
    if (node->next_hop) bucket.routes.push_back(Route{at, *node->next_hop});
    collect(node->child[0], at.child(0), bucket);
    collect(node->child[1], at.child(1), bucket);
  }
};

}  // namespace

PartitionResult subtree_partition(const trie::BinaryTrie& fib,
                                  std::size_t n) {
  if (n == 0) throw std::invalid_argument("subtree_partition: n must be > 0");
  PartitionResult result;
  result.algorithm = "clpl-subtree";
  result.buckets.resize(n);
  result.bucket_roots.resize(n);
  if (fib.empty()) return result;

  std::unordered_map<const Node*, std::size_t> counts;
  counts.reserve(fib.node_count());
  annotate_counts(fib.root(), counts);

  SubtreeCarver carver{counts, (fib.size() + n - 1) / n, result};
  carver.remaining = carver.capacity;  // bucket 0 starts open
  std::vector<Route> path_routes;
  carver.carve(fib.root(), Prefix(), path_routes);
  result.redundancy = carver.replicas;
  return result;
}

// ---------------------------------------------------------------------------
// SLPL: ID-bit partition (Zane et al. bit selection).

namespace {

// Buckets a prefix maps to under the selected ID bits: bits inside the
// prefix are fixed; bits beyond its length are wildcards, so the prefix
// replicates into every combination.
void for_each_bucket_of(const Prefix& prefix,
                        const std::vector<unsigned>& bits,
                        const std::function<void(std::size_t)>& visit) {
  std::vector<unsigned> wild;
  std::size_t base = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] < prefix.length()) {
      base |= static_cast<std::size_t>(prefix.bit(bits[i])) << i;
    } else {
      wild.push_back(static_cast<unsigned>(i));
    }
  }
  const std::size_t combos = std::size_t{1} << wild.size();
  for (std::size_t c = 0; c < combos; ++c) {
    std::size_t index = base;
    for (std::size_t w = 0; w < wild.size(); ++w) {
      if ((c >> w) & 1u) index |= std::size_t{1} << wild[w];
    }
    visit(index);
  }
}

std::size_t max_load(const std::vector<Route>& routes,
                     const std::vector<unsigned>& bits) {
  std::vector<std::size_t> load(std::size_t{1} << bits.size(), 0);
  for (const auto& route : routes) {
    for_each_bucket_of(route.prefix, bits,
                       [&load](std::size_t b) { ++load[b]; });
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

PartitionResult idbit_partition(const trie::BinaryTrie& fib, std::size_t n) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("idbit_partition: n must be a power of two");
  }
  PartitionResult result;
  result.algorithm = "slpl-idbit";
  result.buckets.resize(n);
  const auto routes = fib.routes();
  if (routes.empty()) return result;

  // Greedy bit selection over the first 16 address bits: each round adds
  // the bit that minimises the largest bucket.
  std::vector<unsigned> selected;
  std::size_t k = 0;
  for (std::size_t m = n; m > 1; m >>= 1) ++k;
  for (std::size_t round = 0; round < k; ++round) {
    unsigned best_bit = 0;
    std::size_t best_load = ~std::size_t{0};
    for (unsigned candidate = 0; candidate < 16; ++candidate) {
      if (std::find(selected.begin(), selected.end(), candidate) !=
          selected.end()) {
        continue;
      }
      auto trial = selected;
      trial.push_back(candidate);
      const std::size_t load = max_load(routes, trial);
      if (load < best_load) {
        best_load = load;
        best_bit = candidate;
      }
    }
    selected.push_back(best_bit);
  }

  for (const auto& route : routes) {
    for_each_bucket_of(route.prefix, selected, [&](std::size_t b) {
      result.buckets[b].routes.push_back(route);
    });
  }
  result.redundancy = result.total_entries() - routes.size();
  return result;
}

}  // namespace clue::partition
