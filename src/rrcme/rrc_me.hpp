// RRC-ME — Routing-prefix Cache with Minimal Expansion.
//
// Reimplementation of the cacheable-prefix algorithm of Akhbarizadeh &
// Nourani (Hot Interconnects 2004) that CLPL uses to fill its logical
// caches. When a table still contains *overlapping* prefixes, the LPM
// result itself cannot be cached: a cached short prefix would shadow its
// more-specific children. RRC-ME instead computes the minimal expansion —
// the shortest extension of the matched prefix along the looked-up
// address under which no more-specific route exists — and caches that.
//
// CLUE's point (paper §III-C) is that after ONRTC this machinery, and the
// control-plane round trip it implies, disappears entirely: the matched
// disjoint prefix is always directly cacheable. We build RRC-ME anyway,
// because every CLPL baseline number (TTF3, Fig. 12/13/14, Fig. 17)
// depends on it.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "trie/binary_trie.hpp"

namespace clue::rrcme {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

/// Result of a minimal-expansion computation.
struct CacheFill {
  /// The prefix that is safe to cache (covers `address`, maps to
  /// `next_hop`, covers no address with a different LPM result).
  Prefix prefix;
  NextHop next_hop = netbase::kNoRoute;
  /// Trie nodes visited — the SRAM-access count the control plane pays.
  std::size_t sram_accesses = 0;
};

/// Computes the minimal-expansion cacheable prefix for `address` against
/// `fib`. Returns nullopt when the address has no route at all.
///
/// Precondition: none — works on overlapping and non-overlapping tables
/// alike (on a non-overlapping table it returns the matched prefix
/// itself, which is exactly CLUE's observation).
std::optional<CacheFill> minimal_expansion(const trie::BinaryTrie& fib,
                                           Ipv4Address address);

/// The cache-maintenance side of RRC-ME: when the route at
/// `changed_prefix` is inserted/modified/withdrawn, every cached entry
/// whose range intersects it may now be stale and must be invalidated.
/// Returns the stale subset of `cached` and the SRAM accesses spent
/// discovering it (one trie descent plus one check per cached entry on
/// the path/subtree).
struct Invalidation {
  std::vector<Prefix> stale;
  std::size_t sram_accesses = 0;
};

Invalidation invalidate_on_update(const trie::BinaryTrie& fib,
                                  const Prefix& changed_prefix,
                                  const std::vector<Prefix>& cached);

}  // namespace clue::rrcme
