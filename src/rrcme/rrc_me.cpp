#include "rrcme/rrc_me.hpp"

namespace clue::rrcme {

std::optional<CacheFill> minimal_expansion(const trie::BinaryTrie& fib,
                                           Ipv4Address address) {
  // One LPM walk records everything we need: the deepest match, whether
  // anything lives below it, and the first route-free depth on the
  // address path. A trie node exists only when a route lives at or below
  // it, so "the walk fell off the trie" is exactly the safety condition
  // for caching.
  CacheFill fill;
  bool found = false;
  unsigned best_depth = 0;
  bool best_is_leaf = false;
  const trie::BinaryTrie::Node* node = fib.root();
  unsigned depth = 0;
  while (node) {
    ++fill.sram_accesses;
    if (node->next_hop) {
      found = true;
      fill.next_hop = *node->next_hop;
      best_depth = depth;
      best_is_leaf = node->is_leaf();
    }
    if (depth == Prefix::kMaxLength) break;  // /32 node: always a leaf
    node = node->child[address.bit(depth)];
    ++depth;
  }
  if (!found) return std::nullopt;

  if (best_is_leaf) {
    // Nothing more specific exists under the match: the matched prefix
    // itself is cacheable (the situation CLUE enjoys for *every* lookup
    // on a non-overlapping table).
    fill.prefix = Prefix(address, best_depth);
  } else {
    // More-specific routes exist below the match; `depth` is now the
    // first level on the address path with no route at or below it
    // (the loop above exited with node == nullptr, since on-path route
    // nodes deeper than the match would themselves have been the match).
    fill.prefix = Prefix(address, depth);
  }
  return fill;
}

Invalidation invalidate_on_update(const trie::BinaryTrie& fib,
                                  const Prefix& changed_prefix,
                                  const std::vector<Prefix>& cached) {
  Invalidation result;
  // One descent to the changed node (control plane re-reads the path)…
  const trie::BinaryTrie::Node* node = fib.root();
  for (unsigned depth = 0; node && depth < changed_prefix.length(); ++depth) {
    ++result.sram_accesses;
    node = node->child[changed_prefix.bit(depth)];
  }
  // …then every cached entry must be screened against the changed range.
  // Entries that overlap the changed prefix may now return a stale next
  // hop and are invalidated (the conservative policy CLPL describes).
  for (const auto& entry : cached) {
    ++result.sram_accesses;
    if (entry.overlaps(changed_prefix)) result.stale.push_back(entry);
  }
  return result;
}

}  // namespace clue::rrcme
