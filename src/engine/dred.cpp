#include "engine/dred.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace clue::engine {

namespace {

/// Knuth multiplicative hash; the high bits are the well-mixed ones, so
/// the slot index is taken from above bit 16 (cache sizes stay <= 2^12).
std::size_t addr_slot_index(Ipv4Address address, std::uint32_t mask) {
  return static_cast<std::size_t>((address.value() * 2654435761u) >> 16) &
         mask;
}

}  // namespace

DredStore::DredStore(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("DredStore: capacity must be > 0");
  }
  const std::size_t slots =
      std::bit_ceil(std::clamp<std::size_t>(capacity, 256, 4096));
  addr_cache_.resize(slots);
  addr_mask_ = static_cast<std::uint32_t>(slots - 1);
}

std::optional<NextHop> DredStore::lookup(Ipv4Address address) {
  ++stats_.lookups;
  AddrSlot& slot = addr_cache_[addr_slot_index(address, addr_mask_)];
  if (slot.stamp == stamp_ && slot.address == address) {
    if (!slot.hit) return std::nullopt;
    ++stats_.hits;
    touch(index_.at(slot.prefix));
    return slot.hop;
  }
  const auto route = match_.lookup_route(address);
  slot.address = address;
  slot.stamp = stamp_;
  slot.hit = route.has_value();
  if (!route) return std::nullopt;
  slot.prefix = route->prefix;
  slot.hop = route->next_hop;
  ++stats_.hits;
  touch(index_.at(route->prefix));
  return route->next_hop;
}

void DredStore::insert(const Route& route) {
  if (const auto it = index_.find(route.prefix); it != index_.end()) {
    // Already cached: this is an update, not a fresh insertion — the
    // cache does not grow, and the match trie is only rewritten when the
    // next hop actually changed (re-offering the same route is a no-op).
    if (it->second->next_hop != route.next_hop) {
      it->second->next_hop = route.next_hop;
      match_.insert(route.prefix, route.next_hop);
      invalidate_addr_cache();
    }
    touch(it->second);
    ++stats_.updates;
    return;
  }
  invalidate_addr_cache();
  if (entries_.size() == capacity_) {
    const Route& victim = entries_.back();
    match_.erase(victim.prefix);
    index_.erase(victim.prefix);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(route);
  index_[route.prefix] = entries_.begin();
  match_.insert(route.prefix, route.next_hop);
  ++stats_.insertions;
}

bool DredStore::fix(const Route& route) {
  const auto it = index_.find(route.prefix);
  if (it == index_.end()) return false;
  if (it->second->next_hop != route.next_hop) {
    it->second->next_hop = route.next_hop;
    match_.insert(route.prefix, route.next_hop);
    invalidate_addr_cache();
  }
  ++stats_.updates;
  return true;
}

bool DredStore::erase(const Prefix& prefix) {
  const auto it = index_.find(prefix);
  if (it == index_.end()) return false;
  entries_.erase(it->second);
  index_.erase(it);
  match_.erase(prefix);
  invalidate_addr_cache();
  ++stats_.erasures;
  return true;
}

bool DredStore::contains(const Prefix& prefix) const {
  return index_.contains(prefix);
}

std::vector<Prefix> DredStore::contents() const {
  std::vector<Prefix> out;
  out.reserve(entries_.size());
  for (const auto& route : entries_) out.push_back(route.prefix);
  return out;
}

std::vector<Prefix> DredStore::overlapping(const Prefix& prefix) const {
  std::vector<Prefix> out;
  // Ancestors (and the prefix itself): matches on the path to `prefix`.
  match_.for_each_match(prefix.range_low(), [&](const Route& route) {
    if (route.prefix.length() <= prefix.length()) out.push_back(route.prefix);
  });
  // Descendants: cached prefixes strictly inside `prefix`.
  for (const auto& route : match_.routes_within(prefix)) {
    if (route.prefix.length() > prefix.length()) out.push_back(route.prefix);
  }
  return out;
}

void DredStore::touch(std::list<Route>::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void DredStore::invalidate_addr_cache() {
  if (++stamp_ == 0) {
    // Stamp wrapped: a stale slot could now collide with the fresh
    // stamp, so scrub the slots before reusing stamp values.
    for (auto& slot : addr_cache_) slot = AddrSlot{};
    stamp_ = 1;
  }
}

}  // namespace clue::engine
