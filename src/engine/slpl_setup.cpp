#include "engine/slpl_setup.hpp"

#include <algorithm>
#include <stdexcept>

#include "partition/partition.hpp"

namespace clue::engine {

EngineSetup build_slpl_setup(const std::vector<netbase::Route>& table,
                             const std::vector<std::uint64_t>& bucket_load,
                             const SlplConfig& config) {
  if (bucket_load.size() != config.buckets) {
    throw std::invalid_argument(
        "build_slpl_setup: one load figure per bucket required");
  }
  if (config.tcam_count < 2) {
    throw std::invalid_argument("build_slpl_setup: need at least two TCAMs");
  }
  const auto partitions = partition::even_partition(table, config.buckets);

  EngineSetup setup;
  setup.bucket_boundaries =
      partition::even_partition_boundaries(table, config.buckets);
  setup.bucket_to_tcam.assign(config.buckets, 0);  // ignored in kSlpl
  setup.bucket_homes.assign(config.buckets, {});
  setup.tcam_routes.assign(config.tcam_count, {});

  // Phase 1: LPT — heaviest bucket to the least-loaded chip.
  std::vector<std::size_t> order(config.buckets);
  for (std::size_t i = 0; i < config.buckets; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&bucket_load](std::size_t a, std::size_t b) {
              return bucket_load[a] > bucket_load[b];
            });
  // Expected per-chip load, with a bucket's load split over its homes.
  std::vector<double> chip_load(config.tcam_count, 0.0);
  const auto least_loaded_chip_excluding =
      [&chip_load](const std::vector<std::size_t>& exclude) {
        std::size_t best = chip_load.size();
        for (std::size_t chip = 0; chip < chip_load.size(); ++chip) {
          if (std::find(exclude.begin(), exclude.end(), chip) !=
              exclude.end()) {
            continue;
          }
          if (best == chip_load.size() || chip_load[chip] < chip_load[best]) {
            best = chip;
          }
        }
        return best;
      };
  for (const auto bucket : order) {
    const std::size_t chip = least_loaded_chip_excluding({});
    setup.bucket_homes[bucket].push_back(chip);
    setup.bucket_to_tcam[bucket] = chip;
    chip_load[chip] += static_cast<double>(bucket_load[bucket]);
  }

  // Phase 2: spend the replication budget on the heaviest buckets,
  // always adding the currently least-loaded chip as the new replica.
  std::size_t budget = static_cast<std::size_t>(
      config.replication_budget * static_cast<double>(table.size()));
  for (int round = 0; round < 256 && budget > 0; ++round) {
    bool progressed = false;
    for (const auto bucket : order) {
      auto& homes = setup.bucket_homes[bucket];
      const std::size_t entries = partitions.buckets[bucket].routes.size();
      if (homes.size() >= config.tcam_count || entries == 0 ||
          entries > budget) {
        continue;
      }
      // Hot buckets replicate for dispatch flexibility (that is what the
      // 25 % is for); the least-loaded chip gets the copy.
      const std::size_t candidate = least_loaded_chip_excluding(homes);
      if (candidate == config.tcam_count) continue;
      // Re-split the bucket's load over one more home.
      for (const auto chip : homes) {
        chip_load[chip] -= static_cast<double>(bucket_load[bucket]) /
                           static_cast<double>(homes.size());
      }
      homes.push_back(candidate);
      for (const auto chip : homes) {
        chip_load[chip] += static_cast<double>(bucket_load[bucket]) /
                           static_cast<double>(homes.size());
      }
      budget -= entries;
      progressed = true;
      if (budget == 0) break;
    }
    if (!progressed) break;
  }

  // Materialise chip contents (bucket routes into every home).
  for (std::size_t bucket = 0; bucket < config.buckets; ++bucket) {
    for (const auto chip : setup.bucket_homes[bucket]) {
      auto& routes = setup.tcam_routes[chip];
      routes.insert(routes.end(),
                    partitions.buckets[bucket].routes.begin(),
                    partitions.buckets[bucket].routes.end());
    }
  }
  return setup;
}

}  // namespace clue::engine
