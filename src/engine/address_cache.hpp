// AddressCache — LRU cache of exact destination addresses.
//
// The alternative cache granularity the paper dismisses in §III-C
// (citing Shyu/Chiueh/Talbot): caching full IPs instead of prefixes.
// Each entry covers exactly one address, so the same capacity earns far
// fewer hits than a prefix DRed. We implement it to measure that claim
// (bench_cache_granularity) rather than take it on faith.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "netbase/prefix.hpp"

namespace clue::engine {

class AddressCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double hit_rate() const {
      return lookups ? static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0.0;
    }
  };

  explicit AddressCache(std::size_t capacity);

  /// Exact-match lookup; refreshes recency on hit.
  std::optional<netbase::NextHop> lookup(netbase::Ipv4Address address);

  /// Caches one address -> next hop binding, evicting the LRU entry.
  void insert(netbase::Ipv4Address address, netbase::NextHop next_hop);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint32_t address;
    netbase::NextHop next_hop;
  };

  void touch(std::list<Entry>::iterator it);

  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<std::uint32_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace clue::engine
