// The §III-B dispatch rule and the §III-C DRed exclusion rule, shared
// by the clock-stepped simulation (ParallelEngine) and the threaded
// runtime (runtime::LookupRuntime) so both planes enforce one policy:
//
//   a) home queue has room              -> home chip, full lookup;
//   b) home full, another queue has room -> idlest other chip,
//                                          DRed-only lookup;
//   c) every queue full                 -> reject (the simulation drops
//                                          the packet, the runtime
//                                          applies backpressure).
//
// The exclusion rule: DRed i never caches chip i's own prefixes — a
// packet homed at chip i is never diverted to chip i, so the slot would
// be dead capacity (the (N-1)/N saving of CLUE over CLPL).
#pragma once

#include <cstddef>
#include <span>

namespace clue::engine {

struct DispatchDecision {
  enum class Action { kHome, kDivert, kReject };
  Action action = Action::kReject;
  std::size_t chip = 0;  ///< target queue for kHome / kDivert
};

/// `occupancy[i]` is queue i's current depth; `fifo_depth` the bound
/// fresh admissions respect (miss returns may exceed it — that policy
/// stays with the caller).
DispatchDecision choose_queue(std::size_t home,
                              std::span<const std::size_t> occupancy,
                              std::size_t fifo_depth);

/// True when `dred_chip`'s DRed is allowed to cache a prefix homed at
/// `home_chip`.
constexpr bool dred_may_cache(std::size_t dred_chip, std::size_t home_chip) {
  return dred_chip != home_chip;
}

}  // namespace clue::engine
