#include "engine/address_cache.hpp"

#include <stdexcept>

namespace clue::engine {

AddressCache::AddressCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("AddressCache: capacity must be > 0");
  }
}

std::optional<netbase::NextHop> AddressCache::lookup(
    netbase::Ipv4Address address) {
  ++stats_.lookups;
  const auto it = index_.find(address.value());
  if (it == index_.end()) return std::nullopt;
  ++stats_.hits;
  touch(it->second);
  return it->second->next_hop;
}

void AddressCache::insert(netbase::Ipv4Address address,
                          netbase::NextHop next_hop) {
  if (const auto it = index_.find(address.value()); it != index_.end()) {
    it->second->next_hop = next_hop;
    touch(it->second);
    return;
  }
  if (entries_.size() == capacity_) {
    index_.erase(entries_.back().address);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{address.value(), next_hop});
  index_[address.value()] = entries_.begin();
  ++stats_.insertions;
}

void AddressCache::touch(std::list<Entry>::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

}  // namespace clue::engine
