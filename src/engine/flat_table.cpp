#include "engine/flat_table.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace clue::engine {

namespace {

std::shared_ptr<std::uint32_t[]> make_block(std::size_t entries) {
  // Value-initialised: every slot starts as kNoRoute (0).
  return std::shared_ptr<std::uint32_t[]>(new std::uint32_t[entries]());
}

}  // namespace

void FlatLookupTable::validate_config(const FlatTableConfig& config) {
  if (config.stride < 8 || config.stride > 28) {
    throw std::invalid_argument("FlatLookupTable: stride must be in [8, 28]");
  }
  if (config.chunk_bits < 4 || config.chunk_bits > config.stride) {
    throw std::invalid_argument(
        "FlatLookupTable: chunk_bits must be in [4, stride]");
  }
  stride_ = config.stride;
  l2_bits_ = 32u - stride_;
  chunk_bits_ = config.chunk_bits;
  chunk_entries_ = std::size_t{1} << chunk_bits_;
  chunk_mask_ = static_cast<std::uint32_t>(chunk_entries_ - 1);
  l2_entries_ = std::size_t{1} << l2_bits_;
  l2_mask_ = static_cast<std::uint32_t>(l2_entries_ - 1);
  chunks_.assign(std::size_t{1} << (stride_ - chunk_bits_), nullptr);
}

FlatLookupTable::FlatLookupTable(const trie::BinaryTrie& table,
                                 const FlatTableConfig& config) {
  validate_config(config);
  if (!table.is_disjoint()) {
    throw std::invalid_argument(
        "FlatLookupTable: route set must be non-overlapping");
  }
  Builder b{std::vector<bool>(chunks_.size(), false)};
  repaint(table, Prefix{}, b);  // /0 = paint the whole space
}

FlatLookupTable::FlatLookupTable(const FlatLookupTable& prev,
                                 const trie::BinaryTrie& table,
                                 std::span<const Prefix> dirty)
    : stride_(prev.stride_),
      l2_bits_(prev.l2_bits_),
      chunk_bits_(prev.chunk_bits_),
      chunk_mask_(prev.chunk_mask_),
      l2_mask_(prev.l2_mask_),
      l2_entries_(prev.l2_entries_),
      chunk_entries_(prev.chunk_entries_),
      chunks_(prev.chunks_),
      l2_(prev.l2_),
      l2_free_(prev.l2_free_) {
  Builder b{std::vector<bool>(chunks_.size(), false)};
  for (const Prefix& prefix : dirty) repaint(table, prefix, b);
}

std::uint32_t FlatLookupTable::encode_hop(NextHop hop) {
  const std::uint32_t value = netbase::to_index(hop);
  if (value & kL2Flag) {
    throw std::invalid_argument(
        "FlatLookupTable: next hop does not fit in 31 bits");
  }
  return value;
}

std::uint32_t* FlatLookupTable::writable_chunk(std::size_t slot_chunk,
                                               Builder& b) {
  if (b.owned[slot_chunk]) return chunks_[slot_chunk].get();
  ChunkPtr fresh = make_block(chunk_entries_);
  if (chunks_[slot_chunk]) {
    std::memcpy(fresh.get(), chunks_[slot_chunk].get(),
                chunk_entries_ * sizeof(std::uint32_t));
  }
  chunks_[slot_chunk] = std::move(fresh);
  b.owned[slot_chunk] = true;
  return chunks_[slot_chunk].get();
}

void FlatLookupTable::release_l2(std::uint32_t entry) {
  const std::uint32_t id = entry & ~kL2Flag;
  l2_[id].reset();
  l2_free_.push_back(id);
}

std::uint32_t FlatLookupTable::alloc_l2(ChunkPtr block) {
  if (!l2_free_.empty()) {
    const std::uint32_t id = l2_free_.back();
    l2_free_.pop_back();
    l2_[id] = std::move(block);
    return id;
  }
  if (l2_.size() >= kL2Flag) {
    throw std::length_error("FlatLookupTable: level-2 block id overflow");
  }
  l2_.push_back(std::move(block));
  return static_cast<std::uint32_t>(l2_.size() - 1);
}

void FlatLookupTable::fill_direct(std::uint32_t lo, std::uint32_t hi,
                                  std::uint32_t entry, Builder& b) {
  std::uint32_t slot = lo;
  while (slot <= hi) {
    const std::size_t chunk = slot >> chunk_bits_;
    const std::uint32_t in_lo = slot & chunk_mask_;
    const std::uint32_t chunk_last =
        static_cast<std::uint32_t>((chunk << chunk_bits_) | chunk_mask_);
    const std::uint32_t in_hi = std::min(hi, chunk_last) & chunk_mask_;
    if (!chunks_[chunk]) {
      if (entry != 0) {
        std::uint32_t* p = writable_chunk(chunk, b);
        std::fill(p + in_lo, p + in_hi + 1, entry);
      }
      // Null chunk overwritten with no-route: already there.
    } else {
      // Free any level-2 blocks this fill overwrites (readable through
      // the shared pointer even before copy-on-write).
      const std::uint32_t* read = chunks_[chunk].get();
      for (std::uint32_t i = in_lo; i <= in_hi; ++i) {
        if (read[i] & kL2Flag) release_l2(read[i]);
      }
      // A chunk that ends up all-zero drops back to the null
      // representation, so cleared address space costs nothing again.
      const bool whole = in_lo == 0 && in_hi == chunk_mask_;
      const bool rest_zero =
          whole ||
          (entry == 0 &&
           std::all_of(read, read + in_lo,
                       [](std::uint32_t v) { return v == 0; }) &&
           std::all_of(read + in_hi + 1, read + chunk_entries_,
                       [](std::uint32_t v) { return v == 0; }));
      if (entry == 0 && rest_zero) {
        chunks_[chunk] = nullptr;
        b.owned[chunk] = false;
      } else {
        std::uint32_t* p = writable_chunk(chunk, b);
        std::fill(p + in_lo, p + in_hi + 1, entry);
      }
    }
    if (chunk_last == hi || chunk_last >= (std::uint32_t{1} << stride_) - 1) {
      break;
    }
    slot = chunk_last + 1;
  }
}

void FlatLookupTable::paint(const netbase::Route& route, Builder& b) {
  const std::uint32_t hop = encode_hop(route.next_hop);
  const std::uint32_t lo = route.prefix.range_low().value();
  const std::uint32_t hi = route.prefix.range_high().value();
  if (route.prefix.length() <= stride_) {
    fill_direct(lo >> l2_bits_, hi >> l2_bits_, hop, b);
    return;
  }
  // Longer than the stride: the route lives inside one level-1 slot.
  const std::uint32_t slot = lo >> l2_bits_;
  std::uint32_t* p = writable_chunk(slot >> chunk_bits_, b);
  std::uint32_t& entry = p[slot & chunk_mask_];
  std::uint32_t* block = nullptr;
  if (entry & kL2Flag) {
    // Only blocks created by this repaint pass can be seen here (the
    // region was cleared first), so in-place mutation is safe.
    block = l2_[entry & ~kL2Flag].get();
  } else {
    ChunkPtr fresh = make_block(l2_entries_);
    block = fresh.get();
    if (entry != 0) std::fill(block, block + l2_entries_, entry);
    entry = kL2Flag | alloc_l2(std::move(fresh));
  }
  std::fill(block + (lo & l2_mask_), block + (hi & l2_mask_) + 1, hop);
}

void FlatLookupTable::recompute_slot(const trie::BinaryTrie& table,
                                     std::uint32_t slot, Builder& b) {
  const Prefix block_prefix(Ipv4Address(slot << l2_bits_), stride_);
  // A route no longer than the stride that matches the block's first
  // address covers the whole block (non-overlap: nothing else can).
  const auto cover = table.lookup_route(block_prefix.range_low());
  if (cover && cover->prefix.length() <= stride_) {
    fill_direct(slot, slot, encode_hop(cover->next_hop), b);
    return;
  }
  const auto inside = table.routes_within(block_prefix);
  if (inside.empty()) {
    fill_direct(slot, slot, 0, b);
    return;
  }
  ChunkPtr fresh = make_block(l2_entries_);
  std::uint32_t* block = fresh.get();
  for (const auto& route : inside) {
    const std::uint32_t hop = encode_hop(route.next_hop);
    const std::uint32_t lo = route.prefix.range_low().value() & l2_mask_;
    const std::uint32_t hi = route.prefix.range_high().value() & l2_mask_;
    std::fill(block + lo, block + hi + 1, hop);
  }
  // Uniform blocks (e.g. after deletes merged the survivors) collapse
  // back to a direct entry — keeps level-2 memory from ratcheting up.
  const bool uniform =
      std::all_of(block, block + l2_entries_,
                  [&](std::uint32_t v) { return v == block[0]; });
  if (uniform) {
    fill_direct(slot, slot, block[0], b);
    return;
  }
  std::uint32_t* p = writable_chunk(slot >> chunk_bits_, b);
  std::uint32_t& entry = p[slot & chunk_mask_];
  if (entry & kL2Flag) release_l2(entry);
  entry = kL2Flag | alloc_l2(std::move(fresh));
}

void FlatLookupTable::repaint(const trie::BinaryTrie& table,
                              const Prefix& dirty, Builder& b) {
  if (dirty.length() > stride_) {
    recompute_slot(table, dirty.range_low().value() >> l2_bits_, b);
    return;
  }
  const std::uint32_t lo = dirty.range_low().value() >> l2_bits_;
  const std::uint32_t hi = dirty.range_high().value() >> l2_bits_;
  // A stored route at or above the dirty prefix covers the whole region
  // (non-overlap again): paint it directly and stop.
  const auto cover = table.lookup_route(dirty.range_low());
  if (cover && cover->prefix.length() <= dirty.length()) {
    fill_direct(lo, hi, encode_hop(cover->next_hop), b);
    return;
  }
  fill_direct(lo, hi, 0, b);
  for (const auto& route : table.routes_within(dirty)) paint(route, b);
}

std::size_t FlatLookupTable::memory_bytes() const {
  std::size_t bytes = chunks_.capacity() * sizeof(ChunkPtr) +
                      l2_.capacity() * sizeof(ChunkPtr) +
                      l2_free_.capacity() * sizeof(std::uint32_t);
  bytes += chunk_count() * chunk_entries_ * sizeof(std::uint32_t);
  bytes += l2_block_count() * l2_entries_ * sizeof(std::uint32_t);
  return bytes;
}

std::size_t FlatLookupTable::chunk_count() const {
  return static_cast<std::size_t>(
      std::count_if(chunks_.begin(), chunks_.end(),
                    [](const ChunkPtr& c) { return c != nullptr; }));
}

std::size_t FlatLookupTable::l2_block_count() const {
  return static_cast<std::size_t>(
      std::count_if(l2_.begin(), l2_.end(),
                    [](const ChunkPtr& c) { return c != nullptr; }));
}

}  // namespace clue::engine
