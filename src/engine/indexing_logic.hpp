// IndexingLogic — step II of the paper's Fig. 1 pipeline.
//
// Maps a destination address to its partition ("bucket") and home TCAM.
// For CLUE's even range partition the buckets are consecutive address
// ranges, so the logic is one binary search over n-1 boundaries — cheap
// enough for a small on-chip table in hardware.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "netbase/ipv4.hpp"
#include "netbase/prefix.hpp"

namespace clue::engine {

class IndexingLogic {
 public:
  /// `boundaries[i]` is the first address of bucket i+1 (ascending);
  /// `bucket_to_tcam[b]` is bucket b's home chip.
  IndexingLogic(std::vector<netbase::Ipv4Address> boundaries,
                std::vector<std::size_t> bucket_to_tcam);

  std::size_t bucket_of(netbase::Ipv4Address address) const;
  std::size_t tcam_of(netbase::Ipv4Address address) const {
    return bucket_to_tcam_[bucket_of(address)];
  }

  std::size_t bucket_count() const { return bucket_to_tcam_.size(); }

 private:
  std::vector<netbase::Ipv4Address> boundaries_;
  std::vector<std::size_t> bucket_to_tcam_;
};

/// Splits `prefix` at the range-partition `boundaries` (ascending,
/// buckets-1 of them; boundaries[i] is the first address of bucket
/// i+1) into per-bucket CIDR pieces. A region that lies inside one
/// bucket comes back unchanged; a region spanning boundaries is cut at
/// each one and re-decomposed into aligned blocks (netbase::cidr_cover)
/// so every piece can live wholly on its bucket's chip. Shared by
/// ClueSystem and runtime::LookupRuntime — the two state-accurate
/// planes must split identically or their chips would disagree.
std::vector<std::pair<std::size_t, netbase::Prefix>> split_at_boundaries(
    const netbase::Prefix& prefix,
    const std::vector<netbase::Ipv4Address>& boundaries);

}  // namespace clue::engine
