// IndexingLogic — step II of the paper's Fig. 1 pipeline.
//
// Maps a destination address to its partition ("bucket") and home TCAM.
// For CLUE's even range partition the buckets are consecutive address
// ranges, so the logic is one binary search over n-1 boundaries — cheap
// enough for a small on-chip table in hardware.
#pragma once

#include <cstddef>
#include <vector>

#include "netbase/ipv4.hpp"

namespace clue::engine {

class IndexingLogic {
 public:
  /// `boundaries[i]` is the first address of bucket i+1 (ascending);
  /// `bucket_to_tcam[b]` is bucket b's home chip.
  IndexingLogic(std::vector<netbase::Ipv4Address> boundaries,
                std::vector<std::size_t> bucket_to_tcam);

  std::size_t bucket_of(netbase::Ipv4Address address) const;
  std::size_t tcam_of(netbase::Ipv4Address address) const {
    return bucket_to_tcam_[bucket_of(address)];
  }

  std::size_t bucket_count() const { return bucket_to_tcam_.size(); }

 private:
  std::vector<netbase::Ipv4Address> boundaries_;
  std::vector<std::size_t> bucket_to_tcam_;
};

}  // namespace clue::engine
