#include "engine/parallel_engine.hpp"

#include <stdexcept>

#include "engine/dispatch_policy.hpp"
#include "rrcme/rrc_me.hpp"

namespace clue::engine {

ParallelEngine::ParallelEngine(EngineMode mode, const EngineConfig& config,
                               const EngineSetup& setup,
                               const trie::BinaryTrie* full_fib)
    : mode_(mode), config_(config),
      indexing_(setup.bucket_boundaries, setup.bucket_to_tcam),
      full_fib_(full_fib) {
  if (config.tcam_count < 2) {
    throw std::invalid_argument("ParallelEngine: need at least two TCAMs");
  }
  if (setup.tcam_routes.size() != config.tcam_count) {
    throw std::invalid_argument(
        "ParallelEngine: one route set per TCAM required");
  }
  if (mode == EngineMode::kClpl && full_fib == nullptr) {
    throw std::invalid_argument(
        "ParallelEngine: CLPL mode needs the full FIB for RRC-ME");
  }
  if (mode == EngineMode::kSlpl) {
    if (setup.bucket_homes.size() != setup.bucket_to_tcam.size()) {
      throw std::invalid_argument(
          "ParallelEngine: SLPL mode needs bucket_homes per bucket");
    }
    for (const auto& homes : setup.bucket_homes) {
      if (homes.empty()) {
        throw std::invalid_argument(
            "ParallelEngine: every bucket needs at least one home");
      }
      for (const auto chip : homes) {
        if (chip >= config.tcam_count) {
          throw std::invalid_argument(
              "ParallelEngine: bucket home past TCAMs");
        }
      }
    }
    bucket_homes_ = setup.bucket_homes;
  }
  for (const auto target : setup.bucket_to_tcam) {
    if (target >= config.tcam_count) {
      throw std::invalid_argument("ParallelEngine: bucket maps past TCAMs");
    }
  }
  chips_.resize(config.tcam_count);
  for (std::size_t i = 0; i < config.tcam_count; ++i) {
    chips_[i].dred = std::make_unique<DredStore>(config.dred_capacity);
    for (const auto& route : setup.tcam_routes[i]) {
      chips_[i].home.insert(route.prefix, route.next_hop);
    }
  }
  if (config.track_reorder) reorder_.emplace(0);
}

void ParallelEngine::admit(Ipv4Address address, EngineMetrics& metrics) {
  if (mode_ == EngineMode::kSlpl) {
    // Static redundancy: route to the idlest chip holding a copy of the
    // bucket. No diversion is possible beyond the pre-provisioned
    // replicas — exactly the rigidity CLPL/CLUE fix.
    const auto& homes = bucket_homes_[indexing_.bucket_of(address)];
    std::size_t best_chip = chips_.size();
    std::size_t best_queue = config_.fifo_depth;
    for (const auto chip : homes) {
      if (chips_[chip].queue.size() < best_queue) {
        best_queue = chips_[chip].queue.size();
        best_chip = chip;
      }
    }
    if (best_chip == chips_.size()) {
      ++metrics.packets_dropped;
      return;
    }
    chips_[best_chip].queue.push_back(Job{address, next_sequence_++, false});
    return;
  }
  // The §III-B rule, shared with runtime::LookupRuntime via
  // engine::choose_queue: home when it has room, else the idlest other
  // queue for a DRed-only lookup, else reject (here: drop).
  const std::size_t home = indexing_.tcam_of(address);
  std::vector<std::size_t> occupancy(config_.tcam_count);
  for (std::size_t i = 0; i < config_.tcam_count; ++i) {
    occupancy[i] = chips_[i].queue.size();
  }
  const auto decision = choose_queue(home, occupancy, config_.fifo_depth);
  switch (decision.action) {
    case DispatchDecision::Action::kHome:
      chips_[home].queue.push_back(Job{address, next_sequence_++, false});
      break;
    case DispatchDecision::Action::kDivert:
      chips_[decision.chip].queue.push_back(
          Job{address, next_sequence_++, true});
      break;
    case DispatchDecision::Action::kReject:
      ++metrics.packets_dropped;  // no sequence consumed
      break;
  }
}

void ParallelEngine::fill_dreds(std::size_t home_tcam, Ipv4Address address,
                                const Route& matched,
                                EngineMetrics& metrics) {
  if (mode_ == EngineMode::kClue) {
    // §III-C: the disjoint LPM result is directly cacheable; push it to
    // every DRed except the home chip's own (which can never serve it).
    for (std::size_t i = 0; i < chips_.size(); ++i) {
      if (!dred_may_cache(i, home_tcam)) continue;
      chips_[i].dred->insert(matched);
      ++metrics.dred_fills;
    }
    return;
  }
  // CLPL: control-plane round trip. RRC-ME walks the SRAM trie to find
  // the minimal cacheable expansion, which then fills all N caches —
  // including the home chip's, whose copy can never be hit.
  ++metrics.control_plane_interactions;
  (void)matched;
  const auto fill = rrcme::minimal_expansion(*full_fib_, address);
  if (!fill) return;
  metrics.control_plane_sram_accesses += fill->sram_accesses;
  for (auto& chip : chips_) {
    chip.dred->insert(Route{fill->prefix, fill->next_hop});
    ++metrics.dred_fills;
  }
}

void ParallelEngine::complete(std::size_t tcam, const Job& job,
                              std::uint64_t clock, EngineMetrics& metrics) {
  ++metrics.per_tcam_lookups[tcam];
  NextHop result = netbase::kNoRoute;
  if (job.dred_only) {
    ++metrics.dred_lookups;
    const auto hop = chips_[tcam].dred->lookup(job.address);
    if (!hop) {
      // Miss: back to the home queue (accepted beyond the FIFO bound —
      // returns are the home chip's responsibility, never dropped).
      const std::size_t home = indexing_.tcam_of(job.address);
      chips_[home].queue.push_back(Job{job.address, job.sequence, false});
      return;
    }
    ++metrics.dred_hits;
    result = *hop;
  } else {
    ++metrics.per_tcam_home[tcam];
    if (const auto matched = chips_[tcam].home.lookup_route(job.address)) {
      result = matched->next_hop;
      if (mode_ != EngineMode::kSlpl) {
        fill_dreds(tcam, job.address, *matched, metrics);
      }
    }
  }
  ++metrics.packets_completed;
  if (reorder_) reorder_->accept(job.sequence, result, clock);
  if (any_completed_ && job.sequence < highest_completed_) {
    ++metrics.out_of_order_completions;
    const std::uint64_t distance = highest_completed_ - job.sequence;
    if (distance > metrics.max_reorder_distance) {
      metrics.max_reorder_distance = distance;
    }
  }
  if (!any_completed_ || job.sequence > highest_completed_) {
    highest_completed_ = job.sequence;
    any_completed_ = true;
  }
}

bool ParallelEngine::all_idle() const {
  for (const auto& chip : chips_) {
    if (chip.current || !chip.queue.empty()) return false;
  }
  return true;
}

EngineMetrics ParallelEngine::run(
    const std::function<Ipv4Address()>& source, std::size_t count) {
  EngineMetrics metrics;
  metrics.per_tcam_lookups.assign(config_.tcam_count, 0);
  metrics.per_tcam_home.assign(config_.tcam_count, 0);
  metrics.per_tcam_busy.assign(config_.tcam_count, 0);

  std::size_t remaining_arrivals = count;
  while (remaining_arrivals > 0 || !all_idle()) {
    ++metrics.clocks;
    // Update interference: periodically one chip pauses lookups while a
    // routing-update write occupies it (premise 1 of the paper's proof).
    if (config_.update_interval_clocks != 0 &&
        metrics.clocks % config_.update_interval_clocks == 0) {
      auto& victim = chips_[next_stall_chip_];
      next_stall_chip_ = (next_stall_chip_ + 1) % chips_.size();
      victim.stalled += config_.update_stall_clocks;
    }
    // Service phase: every busy chip advances one clock; completions
    // happen `service_clocks` after a job is started.
    for (std::size_t i = 0; i < chips_.size(); ++i) {
      auto& chip = chips_[i];
      if (chip.stalled > 0) {
        --chip.stalled;
        ++metrics.update_stalls;
        continue;
      }
      if (chip.current) {
        ++metrics.per_tcam_busy[i];
        if (--chip.remaining == 0) {
          const Job done = *chip.current;
          chip.current.reset();
          complete(i, done, metrics.clocks, metrics);
        }
      }
    }
    // Start phase: idle chips pull the next job from their FIFO.
    for (auto& chip : chips_) {
      if (!chip.stalled && !chip.current && !chip.queue.empty()) {
        chip.current = chip.queue.front();
        chip.queue.pop_front();
        chip.remaining = config_.service_clocks;
      }
    }
    // Arrival phase: one packet per clock.
    if (remaining_arrivals > 0) {
      --remaining_arrivals;
      ++metrics.packets_offered;
      admit(source(), metrics);
      if (remaining_arrivals == 0) {
        metrics.arrival_clocks = metrics.clocks;
        metrics.completed_during_arrivals = metrics.packets_completed;
      }
    }
    if (reorder_) reorder_->drain_into(metrics.clocks, reorder_scratch_);
  }
  if (reorder_) {
    reorder_->drain_into(metrics.clocks + 1, reorder_scratch_);
    metrics.reorder_max_occupancy = reorder_->stats().max_occupancy;
    metrics.reorder_mean_hold_clocks = reorder_->stats().mean_hold_clocks();
  }
  return metrics;
}

std::size_t ParallelEngine::erase_from_dreds(const Prefix& prefix) {
  std::size_t erased = 0;
  for (auto& chip : chips_) {
    if (chip.dred->erase(prefix)) ++erased;
  }
  return erased;
}

}  // namespace clue::engine
