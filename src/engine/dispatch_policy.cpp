#include "engine/dispatch_policy.hpp"

namespace clue::engine {

DispatchDecision choose_queue(std::size_t home,
                              std::span<const std::size_t> occupancy,
                              std::size_t fifo_depth) {
  if (occupancy[home] < fifo_depth) {
    return {DispatchDecision::Action::kHome, home};
  }
  std::size_t idlest = occupancy.size();
  std::size_t best = ~std::size_t{0};
  for (std::size_t i = 0; i < occupancy.size(); ++i) {
    if (i == home) continue;
    if (occupancy[i] < best) {
      best = occupancy[i];
      idlest = i;
    }
  }
  if (idlest == occupancy.size() || best >= fifo_depth) {
    return {DispatchDecision::Action::kReject, home};
  }
  return {DispatchDecision::Action::kDivert, idlest};
}

}  // namespace clue::engine
