#include "engine/reorder_buffer.hpp"

#include <stdexcept>

namespace clue::engine {

void ReorderBuffer::accept(std::uint64_t sequence, netbase::NextHop next_hop,
                           std::uint64_t clock) {
  if (sequence < next_release_) {
    throw std::logic_error("ReorderBuffer: sequence already released");
  }
  const auto [it, inserted] =
      parked_.emplace(sequence, Parked{next_hop, clock});
  (void)it;
  if (!inserted) {
    throw std::logic_error("ReorderBuffer: duplicate sequence");
  }
  ++stats_.accepted;
  if (parked_.size() > stats_.max_occupancy) {
    stats_.max_occupancy = parked_.size();
  }
}

std::vector<ReorderBuffer::Released> ReorderBuffer::drain(
    std::uint64_t clock) {
  std::vector<Released> out;
  drain_into(clock, out);
  return out;
}

std::size_t ReorderBuffer::drain_into(std::uint64_t clock,
                                      std::vector<Released>& out) {
  out.clear();
  for (auto it = parked_.begin();
       it != parked_.end() && it->first == next_release_;
       it = parked_.erase(it)) {
    out.push_back(Released{it->first, it->second.next_hop,
                           it->second.completed_clock, clock});
    stats_.total_hold_clocks += clock - it->second.completed_clock;
    ++stats_.released;
    ++next_release_;
  }
  return out.size();
}

}  // namespace clue::engine
