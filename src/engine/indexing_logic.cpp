#include "engine/indexing_logic.hpp"

#include <algorithm>
#include <stdexcept>

namespace clue::engine {

IndexingLogic::IndexingLogic(std::vector<netbase::Ipv4Address> boundaries,
                             std::vector<std::size_t> bucket_to_tcam)
    : boundaries_(std::move(boundaries)),
      bucket_to_tcam_(std::move(bucket_to_tcam)) {
  if (bucket_to_tcam_.empty()) {
    throw std::invalid_argument("IndexingLogic: need at least one bucket");
  }
  if (boundaries_.size() + 1 != bucket_to_tcam_.size()) {
    throw std::invalid_argument(
        "IndexingLogic: boundaries must be one fewer than buckets");
  }
  if (!std::is_sorted(boundaries_.begin(), boundaries_.end())) {
    throw std::invalid_argument("IndexingLogic: boundaries must be sorted");
  }
}

std::size_t IndexingLogic::bucket_of(netbase::Ipv4Address address) const {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), address);
  return static_cast<std::size_t>(it - boundaries_.begin());
}

}  // namespace clue::engine
