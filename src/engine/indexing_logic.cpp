#include "engine/indexing_logic.hpp"

#include <algorithm>
#include <stdexcept>

namespace clue::engine {

IndexingLogic::IndexingLogic(std::vector<netbase::Ipv4Address> boundaries,
                             std::vector<std::size_t> bucket_to_tcam)
    : boundaries_(std::move(boundaries)),
      bucket_to_tcam_(std::move(bucket_to_tcam)) {
  if (bucket_to_tcam_.empty()) {
    throw std::invalid_argument("IndexingLogic: need at least one bucket");
  }
  if (boundaries_.size() + 1 != bucket_to_tcam_.size()) {
    throw std::invalid_argument(
        "IndexingLogic: boundaries must be one fewer than buckets");
  }
  if (!std::is_sorted(boundaries_.begin(), boundaries_.end())) {
    throw std::invalid_argument("IndexingLogic: boundaries must be sorted");
  }
}

std::size_t IndexingLogic::bucket_of(netbase::Ipv4Address address) const {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), address);
  return static_cast<std::size_t>(it - boundaries_.begin());
}

std::vector<std::pair<std::size_t, netbase::Prefix>> split_at_boundaries(
    const netbase::Prefix& prefix,
    const std::vector<netbase::Ipv4Address>& boundaries) {
  const auto bucket_of = [&boundaries](netbase::Ipv4Address address) {
    const auto it =
        std::upper_bound(boundaries.begin(), boundaries.end(), address);
    return static_cast<std::size_t>(it - boundaries.begin());
  };
  const std::size_t first = bucket_of(prefix.range_low());
  const std::size_t last = bucket_of(prefix.range_high());
  if (first == last) return {{first, prefix}};
  std::vector<std::pair<std::size_t, netbase::Prefix>> pieces;
  netbase::Ipv4Address low = prefix.range_low();
  for (std::size_t bucket = first; bucket <= last; ++bucket) {
    const netbase::Ipv4Address high =
        bucket == last ? prefix.range_high()
                       : netbase::Ipv4Address(boundaries[bucket].value() - 1);
    if (low > high) continue;  // empty slice (boundary coincidence)
    for (const auto& piece : netbase::cidr_cover(low, high)) {
      pieces.emplace_back(bucket, piece);
    }
    if (bucket != last) low = boundaries[bucket];
  }
  return pieces;
}

}  // namespace clue::engine
