// FlatLookupTable — a DIR-24-8-style direct-index image of one chip's
// non-overlapping table.
//
// The ONRTC invariant (every address matches at most one stored prefix)
// is what makes this structure trivial to build: there is no priority
// resolution, so a route can simply be *painted* over the address range
// it covers. Lookup collapses the trie's ~32 dependent node loads into
// one or two array loads:
//
//   level 1  one 32-bit entry per 2^(32-stride) addresses (stride 24 by
//            default, the classic Gupta/Lin/McKeown layout). An entry is
//            either a next hop directly (prefixes no longer than the
//            stride) or, top bit set, the id of a level-2 block.
//   level 2  one 32-bit next hop per address suffix, only for level-1
//            slots that contain prefixes longer than the stride.
//
// Snapshots are immutable — the runtime publishes one per chip-table
// version behind the same epoch-swapped pointer as the trie — but a
// full repaint per BGP update would move megabytes per publish. Instead
// the level-1 array is split into fixed chunks held by shared_ptr:
// rebuilding for an update copies the chunk pointer vector (structural
// sharing) and copy-on-writes only the chunks under the update's dirty
// prefixes, so rebuild cost tracks the size of the diff, not of the
// address space. A null chunk means "all no-route", which also keeps
// empty address space free.
//
// Thread-safety: const after construction; safe to read from any number
// of threads once publication of the owning pointer synchronises with
// the readers (the runtime's epoch swap does).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netbase/prefix.hpp"
#include "trie/binary_trie.hpp"

namespace clue::engine {

struct FlatTableConfig {
  /// Level-1 index bits (8..28). 24 = DIR-24-8: 16M /24 slots, 256-wide
  /// level-2 blocks. Smaller strides trade memory for more level-2
  /// indirections.
  unsigned stride = 24;
  /// log2 of level-1 entries per copy-on-write chunk (4..stride). The
  /// default 4096-entry chunk (16 KiB) keeps the per-rebuild pointer
  /// copy at 2^(stride-chunk_bits) shared_ptrs.
  unsigned chunk_bits = 12;
};

class FlatLookupTable {
 public:
  using Ipv4Address = netbase::Ipv4Address;
  using NextHop = netbase::NextHop;
  using Prefix = netbase::Prefix;

  /// Full build from a non-overlapping table. Throws
  /// std::invalid_argument on a bad config, an overlapping route set, or
  /// a next hop the entry encoding cannot hold (see hop_encodable).
  explicit FlatLookupTable(const trie::BinaryTrie& table,
                           const FlatTableConfig& config = {});

  /// Copy-on-write rebuild: semantically a full build from `table`, but
  /// every level-1 chunk outside the `dirty` prefixes is shared with
  /// `prev`. Precondition: `prev` was built from a table that agrees
  /// with `table` everywhere outside `dirty` (the runtime passes the
  /// previous snapshot plus the update's own diff regions).
  FlatLookupTable(const FlatLookupTable& prev, const trie::BinaryTrie& table,
                  std::span<const Prefix> dirty);

  FlatLookupTable(const FlatLookupTable&) = delete;
  FlatLookupTable& operator=(const FlatLookupTable&) = delete;

  /// The 1-2 load hot path. kNoRoute when no prefix covers `address`.
  NextHop lookup(Ipv4Address address) const {
    const std::uint32_t slot = address.value() >> l2_bits_;
    const std::uint32_t* chunk = chunks_[slot >> chunk_bits_].get();
    if (!chunk) return netbase::kNoRoute;
    const std::uint32_t entry = chunk[slot & chunk_mask_];
    if (!(entry & kL2Flag)) return NextHop{entry};
    return NextHop{l2_[entry & ~kL2Flag].get()[address.value() & l2_mask_]};
  }

  /// Requests the level-1 entry's cache line ahead of lookup(); the
  /// worker loop issues this across a whole job batch before resolving
  /// so the (tens of MB, cache-cold) array loads overlap.
  void prefetch(Ipv4Address address) const {
    const std::uint32_t slot = address.value() >> l2_bits_;
    const std::uint32_t* chunk = chunks_[slot >> chunk_bits_].get();
    if (chunk) __builtin_prefetch(&chunk[slot & chunk_mask_], 0, 1);
  }

  /// Entries hold next hops in 31 bits; the top bit flags a level-2
  /// block id. Hops with the top bit set cannot be stored.
  static bool hop_encodable(NextHop hop) {
    return (netbase::to_index(hop) & kL2Flag) == 0;
  }

  unsigned stride() const { return stride_; }
  /// Heap bytes held by this snapshot (chunks it references, shared or
  /// not, plus level-2 blocks and the pointer vectors).
  std::size_t memory_bytes() const;
  /// Allocated (non-null) level-1 chunks / live level-2 blocks.
  std::size_t chunk_count() const;
  std::size_t l2_block_count() const;

 private:
  static constexpr std::uint32_t kL2Flag = 0x8000'0000u;

  using ChunkPtr = std::shared_ptr<std::uint32_t[]>;

  /// Rebuild-time state: which chunks this rebuild already owns (may
  /// mutate) vs. still shares with the previous snapshot.
  struct Builder {
    std::vector<bool> owned;
  };

  void validate_config(const FlatTableConfig& config);
  /// Chunk writable by this rebuild; allocates (zero or copy) on first
  /// touch. `slot_chunk` is the chunk index.
  std::uint32_t* writable_chunk(std::size_t slot_chunk, Builder& b);
  /// Repaints everything under `dirty` from `table` (clears first).
  void repaint(const trie::BinaryTrie& table, const Prefix& dirty,
               Builder& b);
  /// Recomputes the single level-1 slot `slot` (a /stride block) from
  /// `table`, collapsing uniform level-2 blocks back to direct entries.
  void recompute_slot(const trie::BinaryTrie& table, std::uint32_t slot,
                      Builder& b);
  /// Sets level-1 slots [lo, hi] to the direct value `entry`, freeing
  /// any level-2 blocks they referenced. Whole-chunk clears to 0 drop
  /// the chunk back to null.
  void fill_direct(std::uint32_t lo, std::uint32_t hi, std::uint32_t entry,
                   Builder& b);
  /// Paints one route (already validated) over its slots.
  void paint(const netbase::Route& route, Builder& b);
  void release_l2(std::uint32_t entry);
  std::uint32_t alloc_l2(ChunkPtr block);
  static std::uint32_t encode_hop(NextHop hop);

  unsigned stride_ = 0;
  unsigned l2_bits_ = 0;       // 32 - stride
  unsigned chunk_bits_ = 0;
  std::uint32_t chunk_mask_ = 0;
  std::uint32_t l2_mask_ = 0;
  std::size_t l2_entries_ = 0;  // 2^l2_bits
  std::size_t chunk_entries_ = 0;

  /// Level 1, chunked: chunks_[slot >> chunk_bits][slot & chunk_mask].
  /// Null chunk = every slot kNoRoute.
  std::vector<ChunkPtr> chunks_;
  /// Level-2 blocks by id; freed slots are null and listed in l2_free_.
  std::vector<ChunkPtr> l2_;
  std::vector<std::uint32_t> l2_free_;
};

}  // namespace clue::engine
