// DredStore — one TCAM's Dynamic Redundancy partition.
//
// An LRU-replaced store of prefixes with LPM matching, the structure the
// paper carves out of each TCAM chip (Fig. 1). CLUE's novelty is a usage
// rule, not a structure: DRed i never receives TCAM i's own prefixes,
// because a packet homed at TCAM i is never diverted to DRed i — so the
// same hit rate needs (N-1)/N of CLPL's capacity. That exclusion lives in
// the engine's fill policy; the store itself is shared by both modes.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/prefix.hpp"
#include "trie/binary_trie.hpp"

namespace clue::engine {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

// On the runtime's diverted-lookup path every DRed probe walks the
// match trie (~32 dependent loads). Diverted traffic is skewed by
// construction — the §III-B rule sends hot overflow — so a small
// direct-mapped address cache in front of the trie answers repeats in
// one load. One store-wide stamp invalidates the whole cache on any
// answer-changing mutation (fresh insert, hop rewrite, erase):
// correctness never depends on per-entry bookkeeping, and re-offering
// an already-cached identical route — the common fill — leaves the
// cache intact. Negative results (no covering prefix) are cached too.
// Stats and exact LRU order are preserved: a cached hit counts and
// promotes exactly like a trie hit.
class DredStore {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;  ///< fresh entries only (cache grew)
    std::uint64_t updates = 0;     ///< already-cached prefix re-offered/fixed
    std::uint64_t evictions = 0;
    std::uint64_t erasures = 0;

    double hit_rate() const {
      return lookups ? static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0.0;
    }
  };

  explicit DredStore(std::size_t capacity);

  /// LPM over the cached prefixes; refreshes LRU position on hit.
  std::optional<NextHop> lookup(Ipv4Address address);

  /// Caches `route`, refreshing recency if already present (and updating
  /// its next hop); evicts the least-recently-used entry when full.
  /// A re-offered prefix counts as an update, never a fresh insertion,
  /// and touches the match trie only when the next hop actually changed.
  void insert(const Route& route);

  /// Control-plane fix (§IV-C kModify sync): rewrites the next hop of an
  /// already-cached prefix *without* promoting it in LRU order — a sync
  /// message is not a reuse, so it must not distort replacement. Returns
  /// false when the prefix is not cached.
  bool fix(const Route& route);

  /// Exact-prefix removal (routing-update synchronisation, §IV-C).
  bool erase(const Prefix& prefix);

  bool contains(const Prefix& prefix) const;
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Cached prefixes (LRU order, most recent first) — RRC-ME's
  /// invalidation scan needs the full contents.
  std::vector<Prefix> contents() const;

  /// Cached prefixes whose range intersects `prefix` (ancestors and
  /// descendants). What a TCAM-style invalidation probe would flag.
  std::vector<Prefix> overlapping(const Prefix& prefix) const;

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Structural invariant: the LRU list, the prefix index, and the match
  /// trie describe the same entry set, within capacity. Cheap enough for
  /// tests to assert after every mutation.
  bool invariants_ok() const {
    return entries_.size() == index_.size() &&
           match_.size() == entries_.size() && entries_.size() <= capacity_;
  }

 private:
  /// One memoised LPM answer: address -> (covering prefix, hop) or a
  /// remembered miss. Valid only while `stamp` matches the store's.
  struct AddrSlot {
    Ipv4Address address{0};
    Prefix prefix{};
    NextHop hop = netbase::kNoRoute;
    std::uint32_t stamp = 0;
    bool hit = false;
  };

  void touch(std::list<Route>::iterator it);
  /// Any mutation: every cached answer may now be wrong.
  void invalidate_addr_cache();

  std::size_t capacity_;
  std::list<Route> entries_;  // front = most recently used
  std::unordered_map<Prefix, std::list<Route>::iterator> index_;
  trie::BinaryTrie match_;
  Stats stats_;
  std::vector<AddrSlot> addr_cache_;
  std::uint32_t addr_mask_ = 0;
  std::uint32_t stamp_ = 1;  // 0 is "never valid" in the slots
};

}  // namespace clue::engine
