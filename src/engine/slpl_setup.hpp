// SLPL setup builder — static load balancing from long-period traffic
// statistics (Zheng et al., the paper's §II-B baseline).
//
// Buckets are assigned to chips by expected load (LPT greedy), then the
// hottest buckets are replicated onto additional chips until a
// replication budget (the paper quotes 25 % extra entries) is spent.
// The resulting EngineSetup runs under EngineMode::kSlpl: dispatch may
// pick any replica, but nothing adapts at run time — which is exactly
// what breaks when the traffic no longer matches the statistics.
//
// We deliberately reuse the even range buckets (not ID-bit hashing) so
// the only variable versus the CLUE engine is *static vs dynamic*
// redundancy; the partition-quality axis is measured separately in
// bench_partition.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/parallel_engine.hpp"

namespace clue::engine {

struct SlplConfig {
  std::size_t tcam_count = 4;
  std::size_t buckets = 32;
  /// Extra (replicated) entries allowed, as a fraction of the table.
  double replication_budget = 0.25;
};

/// `table` must be sorted and non-overlapping; `bucket_load[b]` is the
/// long-period traffic share observed for bucket b (any non-negative
/// scale). Requires bucket_load.size() == config.buckets.
EngineSetup build_slpl_setup(const std::vector<netbase::Route>& table,
                             const std::vector<std::uint64_t>& bucket_load,
                             const SlplConfig& config);

/// Convenience: measures `bucket_load` by running `probe_packets`
/// addresses from `probe` through the bucket index.
template <typename AddressSource>
std::vector<std::uint64_t> measure_bucket_load(
    const std::vector<netbase::Ipv4Address>& boundaries,
    std::size_t buckets, AddressSource&& probe, std::size_t probe_packets) {
  std::vector<std::size_t> identity(buckets);
  for (std::size_t i = 0; i < buckets; ++i) identity[i] = i;
  const IndexingLogic index(boundaries, identity);
  std::vector<std::uint64_t> load(buckets, 0);
  for (std::size_t i = 0; i < probe_packets; ++i) {
    ++load[index.bucket_of(probe())];
  }
  return load;
}

}  // namespace clue::engine
