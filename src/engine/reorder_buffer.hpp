// ReorderBuffer — Fig. 1 step III's sequence-tag machinery.
//
// The parallel engine completes lookups out of order (a diverted packet
// may finish before an earlier packet stuck in a deep home FIFO). The
// egress side must restore arrival order: completions are tagged with
// their arrival sequence number, parked until every earlier tag has
// completed, then released in order. This component measures the cost
// of that guarantee: buffer occupancy and added latency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"

namespace clue::engine {

class ReorderBuffer {
 public:
  struct Released {
    std::uint64_t sequence;
    netbase::NextHop next_hop;
    std::uint64_t completed_clock;  ///< when the lookup finished
    std::uint64_t released_clock;   ///< when in-order release happened
  };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t released = 0;
    std::size_t max_occupancy = 0;
    /// Sum over released packets of (released - completed) clocks.
    std::uint64_t total_hold_clocks = 0;

    double mean_hold_clocks() const {
      return released ? static_cast<double>(total_hold_clocks) /
                            static_cast<double>(released)
                      : 0.0;
    }
  };

  /// `first_sequence` is the tag the very first release must carry.
  explicit ReorderBuffer(std::uint64_t first_sequence = 0)
      : next_release_(first_sequence) {}

  /// Accepts one completed lookup. Sequences must be unique and >= the
  /// next expected release; duplicates throw.
  void accept(std::uint64_t sequence, netbase::NextHop next_hop,
              std::uint64_t clock);

  /// Releases every packet that is now in order, stamped with `clock`.
  std::vector<Released> drain(std::uint64_t clock);

  /// Allocation-free drain for per-tick callers: clears `out`, fills it
  /// with the in-order releases (reusing its capacity), and returns how
  /// many were released. The engine calls this once per simulated clock,
  /// so a fresh vector per call would dominate the simulator's heap
  /// traffic.
  std::size_t drain_into(std::uint64_t clock, std::vector<Released>& out);

  /// Sequences accepted but not yet releasable.
  std::size_t occupancy() const { return parked_.size(); }
  std::uint64_t next_release_sequence() const { return next_release_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Parked {
    netbase::NextHop next_hop;
    std::uint64_t completed_clock;
  };

  std::uint64_t next_release_;
  std::map<std::uint64_t, Parked> parked_;
  Stats stats_;
};

}  // namespace clue::engine
