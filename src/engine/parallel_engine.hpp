// ParallelEngine — the clock-stepped simulation of Fig. 1.
//
// N TCAM chips, each with a home FIFO, a home partition and a DRed
// partition. One packet may arrive per clock; each chip completes one
// lookup every `service_clocks` clocks (the paper's Fig. 15 setting is
// 4 clocks/lookup, FIFO 256, DRed 1024). Dispatch follows §III-B:
//
//   a) home queue has room  -> enqueue at the home TCAM (full lookup);
//   b) home queue full      -> enqueue at the idlest other queue, where
//                              the packet is looked up ONLY in that
//                              chip's DRed;
//   c) DRed miss            -> back to the home queue (which accepts
//                              returns beyond the FIFO bound so misses
//                              are never lost — they model the
//                              (1-u)·E term of the speedup proof).
//
// Mode differences (the paper's §III-C):
//   kClue — the home-hit prefix is cached directly into the *other* N-1
//           DReds; no control-plane involvement.
//   kClpl — the control plane runs RRC-ME over the full (overlapping)
//           FIB to find a cacheable prefix, then fills all N logical
//           caches (wasting the home chip's share). Each fill is counted
//           as a control-plane interaction plus its SRAM accesses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "engine/dred.hpp"
#include "engine/indexing_logic.hpp"
#include "engine/reorder_buffer.hpp"
#include "netbase/prefix.hpp"
#include "trie/binary_trie.hpp"

namespace clue::engine {

/// kClue — dynamic redundancy with the exclusion rule, direct fills.
/// kClpl — dynamic redundancy via RRC-ME logical caches (control plane).
/// kSlpl — *static* redundancy (Zheng et al.): hot buckets are
///         pre-replicated on several chips from long-period statistics;
///         dispatch picks the idlest replica; there is no DRed at all.
enum class EngineMode { kClue, kClpl, kSlpl };

struct EngineConfig {
  std::size_t tcam_count = 4;
  std::size_t fifo_depth = 256;
  std::size_t dred_capacity = 1024;  ///< per chip
  std::size_t service_clocks = 4;    ///< clocks per TCAM lookup
  /// Run completions through a ReorderBuffer (Fig. 1 step III) and
  /// report its occupancy/latency cost in the metrics.
  bool track_reorder = false;
  /// Every `update_interval_clocks` clocks, one chip (round-robin) is
  /// blocked for `update_stall_clocks` — models TCAM update operations
  /// interrupting lookups (the paper's premise 1 experiment). 0 = off.
  std::size_t update_interval_clocks = 0;
  std::size_t update_stall_clocks = 1;
};

/// Static contents of the engine: per-chip home tables plus the bucket
/// map for the Indexing Logic.
struct EngineSetup {
  std::vector<std::vector<Route>> tcam_routes;
  std::vector<Ipv4Address> bucket_boundaries;  // ascending, buckets-1 of them
  std::vector<std::size_t> bucket_to_tcam;
  /// kSlpl only: every chip holding a (possibly replicated) copy of each
  /// bucket; bucket_to_tcam is ignored when this is non-empty. Each
  /// chip's tcam_routes must already include its replica entries.
  std::vector<std::vector<std::size_t>> bucket_homes;
};

struct EngineMetrics {
  std::uint64_t clocks = 0;
  /// Clocks and completions within the arrival window (before the final
  /// drain) — the steady-state figures the speedup factor is defined on.
  std::uint64_t arrival_clocks = 0;
  std::uint64_t completed_during_arrivals = 0;
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_completed = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t dred_lookups = 0;
  std::uint64_t dred_hits = 0;
  std::uint64_t dred_fills = 0;
  std::uint64_t control_plane_interactions = 0;
  std::uint64_t control_plane_sram_accesses = 0;
  std::uint64_t out_of_order_completions = 0;
  std::uint64_t max_reorder_distance = 0;
  /// ReorderBuffer cost (populated when EngineConfig::track_reorder):
  std::size_t reorder_max_occupancy = 0;
  double reorder_mean_hold_clocks = 0;
  std::uint64_t update_stalls = 0;  ///< chip-clocks lost to updates
  std::vector<std::uint64_t> per_tcam_lookups;   // home + dred served
  std::vector<std::uint64_t> per_tcam_home;      // home lookups served
  std::vector<std::uint64_t> per_tcam_busy;      // busy clocks

  /// Lookup throughput in units of one chip's capacity — the paper's
  /// speedup factor t. Measured over the arrival window so the tail
  /// drain of queued backlog does not dilute the steady-state figure.
  double speedup(std::size_t service_clocks) const {
    const std::uint64_t window = arrival_clocks ? arrival_clocks : clocks;
    const std::uint64_t done =
        arrival_clocks ? completed_during_arrivals : packets_completed;
    return window == 0 ? 0.0
                       : static_cast<double>(done) *
                             static_cast<double>(service_clocks) /
                             static_cast<double>(window);
  }
  double dred_hit_rate() const {
    return dred_lookups ? static_cast<double>(dred_hits) /
                              static_cast<double>(dred_lookups)
                        : 0.0;
  }
};

class ParallelEngine {
 public:
  /// `full_fib` is required in kClpl mode (RRC-ME's SRAM image); ignored
  /// in kClue mode.
  ParallelEngine(EngineMode mode, const EngineConfig& config,
                 const EngineSetup& setup,
                 const trie::BinaryTrie* full_fib = nullptr);

  /// Feeds `count` packets from `source` (one arrival per clock), then
  /// drains all queues. Returns the run's metrics.
  EngineMetrics run(const std::function<Ipv4Address()>& source,
                    std::size_t count);

  /// Routing-update synchronisation (§IV-C): removes a prefix from every
  /// DRed it is cached in. Returns the number of chips it was erased
  /// from.
  std::size_t erase_from_dreds(const Prefix& prefix);

  const DredStore& dred(std::size_t tcam) const { return *chips_[tcam].dred; }
  const IndexingLogic& indexing() const { return indexing_; }
  const EngineConfig& config() const { return config_; }

 private:
  struct Job {
    Ipv4Address address;
    std::uint64_t sequence = 0;
    bool dred_only = false;
  };

  struct Chip {
    trie::BinaryTrie home;
    std::unique_ptr<DredStore> dred;
    std::deque<Job> queue;
    std::optional<Job> current;
    std::size_t remaining = 0;
    std::size_t stalled = 0;  ///< clocks left in an update stall
  };

  /// Admits one fresh arrival; assigns its sequence number only when a
  /// queue accepts it (dropped packets never consume a tag, or the
  /// reorder buffer would stall on the gap).
  void admit(Ipv4Address address, EngineMetrics& metrics);
  void complete(std::size_t tcam, const Job& job, std::uint64_t clock,
                EngineMetrics& metrics);
  void fill_dreds(std::size_t home_tcam, Ipv4Address address,
                  const Route& matched, EngineMetrics& metrics);
  bool all_idle() const;

  EngineMode mode_;
  EngineConfig config_;
  IndexingLogic indexing_;
  std::vector<Chip> chips_;
  const trie::BinaryTrie* full_fib_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t highest_completed_ = 0;
  bool any_completed_ = false;
  std::optional<ReorderBuffer> reorder_;
  // Reused per-tick drain output; the released entries themselves are
  // only needed for stats, which drain_into accumulates internally.
  std::vector<ReorderBuffer::Released> reorder_scratch_;
  std::size_t next_stall_chip_ = 0;
  std::vector<std::vector<std::size_t>> bucket_homes_;  // kSlpl only
};

}  // namespace clue::engine
