// Stride-8 multibit trie with controlled prefix expansion.
//
// The software-lookup companion to BinaryTrie: at most four node visits
// per LPM instead of up to 32, the structure a control plane uses when
// it must answer lookups itself at line rate (e.g. the slow path that
// resolves DRed misses while the TCAM is being updated). Prefixes whose
// length is not a multiple of 8 are expanded within their node
// (Srinivasan & Varghese's controlled prefix expansion), so each node is
// one 256-way array scan-free lookup.
//
// Updates: insert expands into the affected slot range; erase recomputes
// that range from a companion ground-truth BinaryTrie (exactly the
// "expansion makes deletion hard" trade-off the literature describes —
// we pay it in the control plane where it belongs).
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "trie/binary_trie.hpp"

namespace clue::trie {

class MultibitTrie {
 public:
  static constexpr unsigned kStride = 8;
  static constexpr unsigned kLevels = 4;

  MultibitTrie();

  /// Inserts or overwrites; returns true when the route is new.
  bool insert(const Prefix& prefix, NextHop next_hop);

  /// Exact-prefix removal; returns true when a route was removed.
  bool erase(const Prefix& prefix);

  /// Longest-prefix match in at most kLevels node visits.
  NextHop lookup(Ipv4Address address) const;

  std::size_t size() const { return source_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

  /// The ground-truth unibit view (useful for exports/validation).
  const BinaryTrie& source() const { return source_; }

 private:
  struct Entry {
    NextHop hop = netbase::kNoRoute;
    std::int8_t covering_len = -1;  ///< longest level-local prefix length
    std::uint32_t child = 0;        ///< index into nodes_; 0 = none
  };
  struct Node {
    std::array<Entry, 1u << kStride> slots{};
  };

  /// Level a prefix is stored at: (len-1)/8, with /0 at level 0.
  static unsigned level_of(const Prefix& prefix) {
    return prefix.length() == 0 ? 0 : (prefix.length() - 1) / kStride;
  }

  /// Walks/creates the node path for `prefix`, returning its node index.
  std::uint32_t ensure_node(const Prefix& prefix, unsigned level);
  /// Node index for `prefix`'s level, or 0-as-none when absent.
  std::uint32_t find_node(const Prefix& prefix, unsigned level) const;

  /// Applies `prefix`'s expansion range to `apply(entry)`.
  template <typename Fn>
  void for_each_slot(Node& node, const Prefix& prefix, unsigned level,
                     Fn&& apply);

  /// Recomputes one slot of `node` (at `level`, under `node_prefix`)
  /// from the ground truth.
  void recompute_slot(Node& node, unsigned slot, const Prefix& node_prefix,
                      unsigned level);

  std::deque<Node> nodes_;  // nodes_[0] unused sentinel, nodes_[1] = root
  BinaryTrie source_;
};

}  // namespace clue::trie
