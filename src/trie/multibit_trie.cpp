#include "trie/multibit_trie.hpp"

namespace clue::trie {

namespace {

/// Byte `level` of the address/prefix bits (0 = most significant).
unsigned byte_at(std::uint32_t bits, unsigned level) {
  return (bits >> (24u - 8u * level)) & 0xFFu;
}

}  // namespace

MultibitTrie::MultibitTrie() {
  nodes_.emplace_back();  // index 0: "no child" sentinel, never used
  nodes_.emplace_back();  // index 1: root
}

std::uint32_t MultibitTrie::ensure_node(const Prefix& prefix,
                                        unsigned level) {
  std::uint32_t index = 1;
  for (unsigned walk = 0; walk < level; ++walk) {
    const unsigned slot = byte_at(prefix.bits(), walk);
    Entry& entry = nodes_[index].slots[slot];
    if (entry.child == 0) {
      nodes_.emplace_back();
      entry.child = static_cast<std::uint32_t>(nodes_.size()) - 1;
    }
    index = entry.child;
  }
  return index;
}

std::uint32_t MultibitTrie::find_node(const Prefix& prefix,
                                      unsigned level) const {
  std::uint32_t index = 1;
  for (unsigned walk = 0; walk < level; ++walk) {
    const unsigned slot = byte_at(prefix.bits(), walk);
    index = nodes_[index].slots[slot].child;
    if (index == 0) return 0;
  }
  return index;
}

template <typename Fn>
void MultibitTrie::for_each_slot(Node& node, const Prefix& prefix,
                                 unsigned level, Fn&& apply) {
  const unsigned local_bits =
      prefix.length() == 0 ? 0 : prefix.length() - level * kStride;
  const unsigned base =
      local_bits == 0 ? 0
                      : byte_at(prefix.bits(), level) &
                            (0xFFu << (kStride - local_bits));
  const unsigned count = 1u << (kStride - local_bits);
  for (unsigned slot = base; slot < base + count; ++slot) {
    apply(node.slots[slot]);
  }
}

bool MultibitTrie::insert(const Prefix& prefix, NextHop next_hop) {
  const bool created = source_.insert(prefix, next_hop);
  const unsigned level = level_of(prefix);
  Node& node = nodes_[ensure_node(prefix, level)];
  const auto local_len = static_cast<std::int8_t>(prefix.length());
  for_each_slot(node, prefix, level, [&](Entry& entry) {
    if (local_len >= entry.covering_len) {
      entry.covering_len = local_len;
      entry.hop = next_hop;
    }
  });
  return created;
}

void MultibitTrie::recompute_slot(Node& node, unsigned slot,
                                  const Prefix& node_prefix, unsigned level) {
  // Longest route stored at this level covering `slot`: walk the ground
  // truth down the slot's 8 bits from the node's root.
  Entry& entry = node.slots[slot];
  const std::uint32_t child = entry.child;  // children are unaffected
  entry = Entry{};
  entry.child = child;
  const BinaryTrie::Node* walk = source_.node_at(node_prefix);
  unsigned depth = node_prefix.length();
  std::uint32_t bits =
      node_prefix.bits() | (slot << (24u - 8u * level));
  // A /0 route lives at level 0 depth 0 — handled by the loop's first
  // check since node_prefix is then the empty prefix.
  while (walk) {
    if (walk->next_hop && depth >= level * kStride) {
      // Level-local candidate (lengths (level*8 .. level*8+8], plus the
      // /0 special case at level 0).
      if (depth > level * kStride || depth == 0) {
        entry.covering_len = static_cast<std::int8_t>(depth);
        entry.hop = *walk->next_hop;
      }
    }
    if (depth == (level + 1) * kStride) break;
    walk = walk->child[(bits >> (31u - depth)) & 1u];
    ++depth;
  }
}

bool MultibitTrie::erase(const Prefix& prefix) {
  if (!source_.erase(prefix)) return false;
  const unsigned level = level_of(prefix);
  const std::uint32_t index = find_node(prefix, level);
  if (index == 0) return true;  // defensive: path should exist
  Node& node = nodes_[index];
  const Prefix node_prefix(prefix.address(), level * kStride);
  const unsigned local_bits =
      prefix.length() == 0 ? 0 : prefix.length() - level * kStride;
  const unsigned base =
      local_bits == 0 ? 0
                      : byte_at(prefix.bits(), level) &
                            (0xFFu << (kStride - local_bits));
  const unsigned count = 1u << (kStride - local_bits);
  for (unsigned slot = base; slot < base + count; ++slot) {
    recompute_slot(node, slot, node_prefix, level);
  }
  return true;
}

NextHop MultibitTrie::lookup(Ipv4Address address) const {
  NextHop best = netbase::kNoRoute;
  std::uint32_t index = 1;
  for (unsigned level = 0; level < kLevels && index != 0; ++level) {
    const Entry& entry =
        nodes_[index].slots[byte_at(address.value(), level)];
    if (entry.covering_len >= 0) best = entry.hop;
    index = entry.child;
  }
  return best;
}

}  // namespace clue::trie
