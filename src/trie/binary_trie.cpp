#include "trie/binary_trie.hpp"

#include <algorithm>

namespace clue::trie {

BinaryTrie::Node* BinaryTrie::allocate() {
  Node* node;
  if (free_list_) {
    node = free_list_;
    free_list_ = node->child[0];
  } else {
    if (blocks_.empty() || blocks_.back().size() == kBlockSize) {
      blocks_.emplace_back();
      blocks_.back().reserve(kBlockSize);
    }
    blocks_.back().emplace_back();
    node = &blocks_.back().back();
  }
  node->child[0] = nullptr;
  node->child[1] = nullptr;
  node->next_hop.reset();
  ++node_count_;
  return node;
}

void BinaryTrie::release(Node* node) {
  node->child[0] = free_list_;
  node->child[1] = nullptr;
  free_list_ = node;
  --node_count_;
}

BinaryTrie::Node* BinaryTrie::clone(const Node* node) {
  if (!node) return nullptr;
  Node* copy = allocate();
  copy->next_hop = node->next_hop;
  copy->child[0] = clone(node->child[0]);
  copy->child[1] = clone(node->child[1]);
  return copy;
}

BinaryTrie::BinaryTrie(const BinaryTrie& other) {
  root_ = clone(other.root_);
  route_count_ = other.route_count_;
}

BinaryTrie& BinaryTrie::operator=(const BinaryTrie& other) {
  if (this != &other) {
    clear();
    root_ = clone(other.root_);
    route_count_ = other.route_count_;
  }
  return *this;
}

bool BinaryTrie::insert(const Prefix& prefix, NextHop next_hop) {
  if (!root_) root_ = allocate();
  Node* node = root_;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const unsigned bit = prefix.bit(depth);
    if (!node->child[bit]) node->child[bit] = allocate();
    node = node->child[bit];
  }
  const bool created = !node->next_hop.has_value();
  node->next_hop = next_hop;
  if (created) ++route_count_;
  return created;
}

bool BinaryTrie::erase(const Prefix& prefix) {
  if (!root_) return false;
  // Record the path so we can prune childless, route-less nodes upward.
  Node* path[Prefix::kMaxLength + 1];
  unsigned bits[Prefix::kMaxLength];
  Node* node = root_;
  path[0] = node;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const unsigned bit = prefix.bit(depth);
    if (!node->child[bit]) return false;
    node = node->child[bit];
    bits[depth] = bit;
    path[depth + 1] = node;
  }
  if (!node->next_hop.has_value()) return false;
  node->next_hop.reset();
  --route_count_;
  for (unsigned depth = prefix.length(); depth > 0; --depth) {
    Node* current = path[depth];
    if (current->next_hop.has_value() || !current->is_leaf()) break;
    path[depth - 1]->child[bits[depth - 1]] = nullptr;
    release(current);
  }
  if (root_ && root_->is_leaf() && !root_->next_hop.has_value()) {
    release(root_);
    root_ = nullptr;
  }
  return true;
}

NextHop BinaryTrie::lookup(Ipv4Address address) const {
  auto route = lookup_route(address);
  return route ? route->next_hop : netbase::kNoRoute;
}

std::optional<Route> BinaryTrie::lookup_route(Ipv4Address address) const {
  const Node* node = root_;
  std::optional<Route> best;
  std::uint32_t bits = 0;
  unsigned depth = 0;
  while (node) {
    if (node->next_hop) {
      best = Route{Prefix(Ipv4Address(bits), depth), *node->next_hop};
    }
    if (depth == Prefix::kMaxLength) break;
    const unsigned bit = address.bit(depth);
    node = node->child[bit];
    if (bit) bits |= 1u << (31u - depth);
    ++depth;
  }
  return best;
}

void BinaryTrie::for_each_match(
    Ipv4Address address,
    const std::function<void(const Route&)>& visit) const {
  const Node* node = root_;
  std::uint32_t bits = 0;
  unsigned depth = 0;
  while (node) {
    if (node->next_hop) {
      visit(Route{Prefix(Ipv4Address(bits), depth), *node->next_hop});
    }
    if (depth == Prefix::kMaxLength) break;
    const unsigned bit = address.bit(depth);
    node = node->child[bit];
    if (bit) bits |= 1u << (31u - depth);
    ++depth;
  }
}

std::optional<NextHop> BinaryTrie::find(const Prefix& prefix) const {
  const Node* node = node_at(prefix);
  if (!node || !node->next_hop) return std::nullopt;
  return node->next_hop;
}

namespace {

void visit_routes(const BinaryTrie::Node* node, std::uint32_t bits,
                  unsigned depth,
                  const std::function<void(const Route&)>& visit) {
  if (!node) return;
  if (node->next_hop) {
    visit(Route{Prefix(Ipv4Address(bits), depth), *node->next_hop});
  }
  visit_routes(node->child[0], bits, depth + 1, visit);
  if (depth < Prefix::kMaxLength) {
    visit_routes(node->child[1], bits | (1u << (31u - depth)), depth + 1,
                 visit);
  }
}

bool check_disjoint(const BinaryTrie::Node* node, bool covered) {
  if (!node) return true;
  if (node->next_hop && covered) return false;
  const bool now_covered = covered || node->next_hop.has_value();
  return check_disjoint(node->child[0], now_covered) &&
         check_disjoint(node->child[1], now_covered);
}

}  // namespace

void BinaryTrie::for_each_route(
    const std::function<void(const Route&)>& visit) const {
  visit_routes(root_, 0, 0, visit);
}

std::vector<Route> BinaryTrie::routes() const {
  std::vector<Route> out;
  out.reserve(route_count_);
  for_each_route([&out](const Route& route) { out.push_back(route); });
  return out;
}

bool BinaryTrie::is_disjoint() const { return check_disjoint(root_, false); }

const BinaryTrie::Node* BinaryTrie::node_at(const Prefix& prefix) const {
  const Node* node = root_;
  for (unsigned depth = 0; node && depth < prefix.length(); ++depth) {
    node = node->child[prefix.bit(depth)];
  }
  return node;
}

std::vector<Route> BinaryTrie::routes_within(const Prefix& within) const {
  std::vector<Route> out;
  visit_routes(node_at(within), within.bits(), within.length(),
               [&out](const Route& route) { out.push_back(route); });
  return out;
}

NextHop BinaryTrie::longest_match_above(const Prefix& prefix) const {
  const Node* node = root_;
  NextHop best = netbase::kNoRoute;
  for (unsigned depth = 0; node && depth < prefix.length(); ++depth) {
    if (node->next_hop) best = *node->next_hop;
    node = node->child[prefix.bit(depth)];
  }
  return best;
}

void BinaryTrie::clear() {
  root_ = nullptr;
  route_count_ = 0;
  node_count_ = 0;
  free_list_ = nullptr;
  blocks_.clear();
}

void LinearFib::insert(const Prefix& prefix, NextHop next_hop) {
  for (auto& route : routes_) {
    if (route.prefix == prefix) {
      route.next_hop = next_hop;
      return;
    }
  }
  routes_.push_back(Route{prefix, next_hop});
}

bool LinearFib::erase(const Prefix& prefix) {
  const auto it =
      std::find_if(routes_.begin(), routes_.end(),
                   [&](const Route& r) { return r.prefix == prefix; });
  if (it == routes_.end()) return false;
  routes_.erase(it);
  return true;
}

NextHop LinearFib::lookup(Ipv4Address address) const {
  const Route* best = nullptr;
  for (const auto& route : routes_) {
    if (route.prefix.contains(address) &&
        (!best || route.prefix.length() > best->prefix.length())) {
      best = &route;
    }
  }
  return best ? best->next_hop : netbase::kNoRoute;
}

}  // namespace clue::trie
