// Unibit binary trie over IPv4 prefixes.
//
// This is the control-plane representation of the FIB: the ground truth
// that ONRTC compresses, that partition algorithms traverse, and that
// RRC-ME walks to compute cacheable prefixes. One node per prefix on a
// path; a node may or may not carry a route (next hop).
//
// Nodes come from a per-trie arena with a free list: route churn (the
// paper's 35K updates/s regime) must not pay one heap allocation per
// path node, and on a 400K-route table the arena keeps neighbours
// adjacent in memory, which matters for the walk-heavy algorithms.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"

namespace clue::trie {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

class BinaryTrie {
 public:
  struct Node {
    Node* child[2] = {nullptr, nullptr};
    std::optional<NextHop> next_hop;

    bool is_leaf() const { return !child[0] && !child[1]; }
  };

  BinaryTrie() = default;
  ~BinaryTrie() = default;  // arena owns all nodes

  // Deep copy; used by experiments that mutate a shared base table.
  BinaryTrie(const BinaryTrie& other);
  BinaryTrie& operator=(const BinaryTrie& other);
  BinaryTrie(BinaryTrie&&) noexcept = default;
  BinaryTrie& operator=(BinaryTrie&&) noexcept = default;

  /// Inserts or overwrites the route for `prefix`.
  /// Returns true when a new route was created, false when an existing
  /// route's next hop was replaced.
  bool insert(const Prefix& prefix, NextHop next_hop);

  /// Removes the route for `prefix` (exact match on prefix, not LPM).
  /// Returns true when a route was removed. Prunes now-useless nodes.
  bool erase(const Prefix& prefix);

  /// Longest-prefix-match lookup; kNoRoute when nothing matches.
  NextHop lookup(Ipv4Address address) const;

  /// Longest-prefix-match returning the winning route itself.
  std::optional<Route> lookup_route(Ipv4Address address) const;

  /// Exact-match query: the next hop stored at `prefix`, if any.
  std::optional<NextHop> find(const Prefix& prefix) const;

  /// Invokes `visit` for every stored route whose prefix contains
  /// `address`, shortest first (there are at most 33).
  void for_each_match(Ipv4Address address,
                      const std::function<void(const Route&)>& visit) const;

  /// Number of routes (nodes carrying a next hop).
  std::size_t size() const { return route_count_; }
  bool empty() const { return route_count_ == 0; }

  /// Number of live trie nodes (root included when present).
  std::size_t node_count() const { return node_count_; }

  /// Invokes `visit(route)` for every route in in-order (address-sorted,
  /// shorter prefix before its descendants) order.
  void for_each_route(const std::function<void(const Route&)>& visit) const;

  /// All routes, in in-order traversal order.
  std::vector<Route> routes() const;

  /// True when no stored route's prefix contains another stored route's
  /// prefix — the invariant ONRTC-compressed tables maintain.
  bool is_disjoint() const;

  /// Removes all routes and returns the arena to empty.
  void clear();

  /// Root node, for algorithms (ONRTC, partitioning, RRC-ME) that need
  /// structural access. Null for an empty trie.
  const Node* root() const { return root_; }

  /// The node whose path spells `prefix`, or null when no stored route
  /// lies at or below `prefix` (nodes exist only on paths to routes).
  const Node* node_at(const Prefix& prefix) const;

  /// All routes whose prefix is contained in `within`, in-order.
  std::vector<Route> routes_within(const Prefix& within) const;

  /// The next hop a lookup would inherit from the *strict* ancestors of
  /// `prefix` — i.e. the LPM answer just above it. kNoRoute when none.
  NextHop longest_match_above(const Prefix& prefix) const;

 private:
  Node* allocate();
  void release(Node* node);  // node must be childless
  Node* clone(const Node* node);

  Node* root_ = nullptr;
  std::size_t route_count_ = 0;
  std::size_t node_count_ = 0;

  // Arena: stable block storage plus an intrusive free list threaded
  // through child[0].
  std::deque<std::vector<Node>> blocks_;
  Node* free_list_ = nullptr;
  static constexpr std::size_t kBlockSize = 1024;
};

/// A linear-scan FIB used as a differential-testing oracle: stores routes
/// in a flat vector and answers LPM by scanning all of them.
class LinearFib {
 public:
  void insert(const Prefix& prefix, NextHop next_hop);
  bool erase(const Prefix& prefix);
  NextHop lookup(Ipv4Address address) const;
  std::size_t size() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }

 private:
  std::vector<Route> routes_;
};

}  // namespace clue::trie
