#include "workload/update_gen.hpp"

#include <stdexcept>

namespace clue::workload {

using netbase::make_next_hop;
using netbase::Prefix;
using netbase::Route;

UpdateGenerator::UpdateGenerator(const trie::BinaryTrie& fib,
                                 const UpdateConfig& config)
    : config_(config), rng_(config.seed, 0xa02bdbf7bb3c0a7ULL),
      live_(fib.routes()), membership_(fib) {
  if (live_.empty()) {
    throw std::invalid_argument("UpdateGenerator: table must be non-empty");
  }
}

UpdateMsg UpdateGenerator::next() {
  if (rng_.chance(config_.announce_ratio)) {
    return rng_.chance(config_.new_prefix_ratio) ? make_fresh_announce()
                                                 : make_reannounce();
  }
  if (live_.size() <= 1) return make_fresh_announce();  // keep table alive
  return make_withdraw();
}

std::vector<UpdateMsg> UpdateGenerator::generate(std::size_t count) {
  std::vector<UpdateMsg> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next());
  return out;
}

// BGP churn concentrates on specific (long) prefixes; covering
// aggregates are stable. Sampling a few candidates and taking the
// longest reproduces that skew.
std::size_t UpdateGenerator::pick_victim() {
  std::size_t best =
      rng_.next_below(static_cast<std::uint32_t>(live_.size()));
  for (int extra = 0; extra < 2; ++extra) {
    const std::size_t candidate =
        rng_.next_below(static_cast<std::uint32_t>(live_.size()));
    if (live_[candidate].prefix.length() > live_[best].prefix.length()) {
      best = candidate;
    }
  }
  return best;
}

UpdateMsg UpdateGenerator::make_withdraw() {
  const std::size_t index = pick_victim();
  const Route victim = live_[index];
  live_[index] = live_.back();
  live_.pop_back();
  membership_.erase(victim.prefix);
  return UpdateMsg{UpdateKind::kWithdraw, victim.prefix, victim.next_hop};
}

UpdateMsg UpdateGenerator::make_reannounce() {
  const std::size_t index = pick_victim();
  Route& route = live_[index];
  // New next hop, different from the current one when possible.
  auto hop = make_next_hop(1 + rng_.next_below(config_.next_hops));
  if (hop == route.next_hop && config_.next_hops > 1) {
    // Successor modulo the hop range is guaranteed different.
    hop = make_next_hop(1 + (netbase::to_index(route.next_hop) %
                             config_.next_hops));
  }
  route.next_hop = hop;
  membership_.insert(route.prefix, hop);
  return UpdateMsg{UpdateKind::kAnnounce, route.prefix, hop};
}

UpdateMsg UpdateGenerator::make_fresh_announce() {
  // New prefixes appear near routed space: take a live route and emit a
  // sibling-region /24 (or /22../26) nearby that isn't taken yet.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Route& anchor =
        live_[rng_.next_below(static_cast<std::uint32_t>(live_.size()))];
    const unsigned length = 22 + rng_.next_below(5);  // /22../26
    const std::uint32_t jitter = rng_.next_below(64) << (32 - length);
    const Prefix candidate(
        netbase::Ipv4Address(anchor.prefix.bits() + jitter), length);
    if (!membership_.find(candidate)) {
      auto hop = make_next_hop(1 + rng_.next_below(config_.next_hops));
      if (rng_.chance(config_.redundant_ratio)) {
        const auto covering = membership_.lookup(candidate.range_low());
        if (covering != netbase::kNoRoute) hop = covering;
      }
      membership_.insert(candidate, hop);
      live_.push_back(Route{candidate, hop});
      return UpdateMsg{UpdateKind::kAnnounce, candidate, hop};
    }
  }
  // Dense neighbourhoods everywhere (pathological): fall back to a fresh
  // random /24.
  const Prefix fallback(netbase::Ipv4Address(rng_.next()), 24);
  const auto hop = make_next_hop(1 + rng_.next_below(config_.next_hops));
  membership_.insert(fallback, hop);
  live_.push_back(Route{fallback, hop});
  return UpdateMsg{UpdateKind::kAnnounce, fallback, hop};
}

}  // namespace clue::workload
