#include "workload/traffic_gen.hpp"

#include <numeric>
#include <stdexcept>

namespace clue::workload {

TrafficGenerator::TrafficGenerator(std::vector<netbase::Prefix> prefixes,
                                   const TrafficConfig& config)
    : prefixes_(std::move(prefixes)),
      zipf_(prefixes_.empty() ? 1 : prefixes_.size(), config.zipf_skew),
      rng_(config.seed, 0x5851f42d4c957f2dULL),
      rank_to_prefix_(prefixes_.size()),
      burst_period_(config.burst_period),
      cluster_locality_(config.cluster_locality) {
  if (prefixes_.empty()) {
    throw std::invalid_argument("TrafficGenerator: prefix set is empty");
  }
  std::iota(rank_to_prefix_.begin(), rank_to_prefix_.end(), 0u);
  rotate_hot_set();
}

void TrafficGenerator::rotate_hot_set() {
  // Fisher-Yates: re-deal which prefixes occupy the hot Zipf ranks.
  for (std::size_t i = rank_to_prefix_.size(); i > 1; --i) {
    const std::size_t j = rng_.next_below(static_cast<std::uint32_t>(i));
    std::swap(rank_to_prefix_[i - 1], rank_to_prefix_[j]);
  }
  if (cluster_locality_ <= 0.0 || rank_to_prefix_.size() < 3) return;
  // Re-deal with spatial clustering: consecutive ranks usually walk to
  // the next prefix in address order, occasionally jump elsewhere. This
  // turns the hot head of the Zipf distribution into a few contiguous
  // hot address regions.
  const std::size_t n = rank_to_prefix_.size();
  std::vector<bool> used(n, false);
  std::size_t cursor = rng_.next_below(static_cast<std::uint32_t>(n));
  const auto next_free_from = [&used, n](std::size_t start) {
    std::size_t i = start;
    while (used[i]) i = (i + 1) % n;
    return i;
  };
  for (std::size_t rank = 0; rank < n; ++rank) {
    cursor = next_free_from(cursor);
    rank_to_prefix_[rank] = static_cast<std::uint32_t>(cursor);
    used[cursor] = true;
    if (!rng_.chance(cluster_locality_)) {
      cursor = rng_.next_below(static_cast<std::uint32_t>(n));
    }
  }
}

netbase::Ipv4Address TrafficGenerator::next() {
  if (burst_period_ != 0 && ++since_rotation_ >= burst_period_) {
    since_rotation_ = 0;
    rotate_hot_set();
  }
  const auto& prefix = prefixes_[rank_to_prefix_[zipf_.sample(rng_)]];
  std::uint32_t offset = 0;
  if (prefix.length() == 0) {
    offset = rng_.next();
  } else if (prefix.length() < 32) {
    offset = rng_.next_below(std::uint32_t{1} << (32 - prefix.length()));
  }
  return netbase::Ipv4Address(prefix.bits() | offset);
}

std::vector<netbase::Ipv4Address> TrafficGenerator::generate(
    std::size_t count) {
  std::vector<netbase::Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next());
  return out;
}

}  // namespace clue::workload
