#include "workload/rib_gen.hpp"

#include <array>

namespace clue::workload {

const std::vector<RouterProfile>& paper_routers() {
  static const std::vector<RouterProfile> routers = {
      {"rrc01", "LINX, London", 380'000, 36, 101},
      {"rrc03", "AMS-IX, Amsterdam", 395'000, 40, 103},
      {"rrc04", "CIXP, Geneva", 372'000, 30, 104},
      {"rrc05", "VIX, Vienna", 368'000, 28, 105},
      {"rrc06", "Otemachi, Japan", 355'000, 24, 106},
      {"rrc07", "Stockholm, Sweden", 377'000, 30, 107},
      {"rrc11", "New York (NY), USA", 398'000, 42, 111},
      {"rrc12", "Frankfurt, Germany", 402'000, 44, 112},
      {"rrc13", "Moscow, Russia", 362'000, 26, 113},
      {"rrc14", "Palo Alto, USA", 385'000, 38, 114},
      {"rrc15", "Sao Paulo, Brazil", 350'000, 22, 115},
      {"rrc16", "Miami, USA", 381'000, 34, 116},
  };
  return routers;
}

unsigned sample_prefix_length(netbase::Pcg32& rng) {
  // Empirical 2011 default-free-zone histogram (per-mille weights).
  // Mode at /24; /16 and the /19-/23 band carry most of the rest.
  static constexpr std::array<std::pair<unsigned, unsigned>, 18> kWeights = {{
      {8, 2},   {10, 2},  {11, 3},  {12, 5},  {13, 8},  {14, 12},
      {15, 14}, {16, 70}, {17, 24}, {18, 34}, {19, 45}, {20, 58},
      {21, 62}, {22, 92}, {23, 90}, {24, 465}, {25, 6},  {26, 8},
  }};
  static constexpr unsigned kTotal = [] {
    unsigned total = 0;
    for (const auto& [length, weight] : kWeights) total += weight;
    return total;
  }();
  unsigned draw = rng.next_below(kTotal);
  for (const auto& [length, weight] : kWeights) {
    if (draw < weight) return length;
    draw -= weight;
  }
  return 24;  // unreachable
}

namespace {

// Real address plans concentrate: registries handed whole /8s to a few
// regions, multicast/reserved space is empty, and the populated octets
// cluster. This skew is what defeats ID-bit partitioning (Fig. 9), so
// the generator must reproduce it: 70 % of blocks land in the "dense"
// unicast bands, the rest spread over the remaining legacy space.
std::uint32_t sample_block_bits(netbase::Pcg32& rng) {
  std::uint32_t octet;
  if (rng.chance(0.7)) {
    // Dense bands (APNIC/RIPE-era space): 58..125 and 172..222.
    octet = rng.chance(0.55) ? 58 + rng.next_below(68)
                             : 172 + rng.next_below(51);
  } else {
    octet = 1 + rng.next_below(223);  // anything unicast
  }
  return (octet << 24) | (rng.next() & 0x00FFFFFFu);
}

}  // namespace

trie::BinaryTrie generate_rib(const RibConfig& config) {
  netbase::Pcg32 rng(config.seed, 0x9e3779b97f4a7c15ULL);
  trie::BinaryTrie fib;

  const auto random_next_hop = [&rng, &config] {
    return netbase::make_next_hop(1 + rng.next_below(config.next_hops));
  };

  while (fib.size() < config.table_size) {
    // A sprinkle of standalone legacy allocations (/8../15) keeps every
    // short length block populated — real tables always have them and
    // they dominate Shah-Gupta's per-update block-cascade cost.
    if (rng.chance(0.004)) {
      const unsigned short_length = 8 + rng.next_below(8);
      fib.insert(
          Prefix(netbase::Ipv4Address(sample_block_bits(rng)), short_length),
          random_next_hop());
      continue;
    }
    // One allocation "super-block": a /12../16 region handled mostly by
    // one peer, filled with runs of consecutive prefixes (the shape real
    // registries hand out address space in).
    const unsigned block_length = 14 + rng.next_below(5);
    const Prefix block(netbase::Ipv4Address(sample_block_bits(rng)),
                       block_length);
    const NextHop dominant = random_next_hop();

    if (rng.chance(config.aggregate_share * 2.0)) {
      fib.insert(block, dominant);
    }

    const std::size_t block_quota = 8 + rng.next_below(33);  // 8..40 routes
    std::size_t emitted = 0;
    while (emitted < block_quota && fib.size() < config.table_size) {
      unsigned length = sample_prefix_length(rng);
      if (length <= block_length) length = block_length + 4;
      // Run of consecutive prefixes of this length, mostly dominant hop.
      const std::uint32_t span = 32 - length;
      const std::uint32_t slots_in_block =
          std::uint32_t{1} << (length - block_length);
      std::uint32_t slot = rng.next_below(slots_in_block);
      const std::size_t run = 1 + rng.next_below(7);  // 1..7 consecutive
      for (std::size_t r = 0; r < run && emitted < block_quota; ++r) {
        if (slot >= slots_in_block) break;
        const std::uint32_t bits = block.bits() | (slot << span);
        const NextHop hop =
            rng.chance(config.locality) ? dominant : random_next_hop();
        if (fib.insert(Prefix(netbase::Ipv4Address(bits), length), hop)) {
          ++emitted;
        }
        ++slot;
      }
    }
  }
  return fib;
}

trie::BinaryTrie generate_rib(const RouterProfile& profile) {
  RibConfig config;
  config.table_size = profile.table_size;
  config.next_hops = profile.next_hops;
  config.seed = profile.seed;
  return generate_rib(config);
}

}  // namespace clue::workload
