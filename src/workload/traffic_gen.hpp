// Synthetic destination-address traffic.
//
// Stand-in for the CAIDA Chicago trace (2011-02-17, 20:59-21:14): a
// Zipf-popularity stream over routed prefixes with optional on/off burst
// modulation that rotates the hot set — the property Dong Lin et al.
// observed ("average utilisation low, traffic very bursty") and the
// reason dynamic redundancy beats static redundancy.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.hpp"
#include "netbase/prefix.hpp"
#include "netbase/rng.hpp"

namespace clue::workload {

struct TrafficConfig {
  std::uint64_t seed = 13;
  /// Zipf exponent over prefix popularity (≈1 for Internet traffic).
  double zipf_skew = 1.0;
  /// Packets between hot-set rotations; 0 disables burst modulation.
  std::size_t burst_period = 0;
  /// Probability that consecutive popularity ranks land on *adjacent*
  /// prefixes (address order). Real traffic concentrates on contiguous
  /// allocations (CDNs, datacenters), which is what makes some
  /// partitions carry 20 %+ of all packets (paper Table II). 0 = hot
  /// prefixes scattered uniformly.
  double cluster_locality = 0.0;
};

/// Generates destination addresses drawn from a set of routed prefixes:
/// prefix by Zipf popularity (over a seeded shuffle of the table so
/// popularity is not correlated with address order), address uniform
/// within the prefix.
class TrafficGenerator {
 public:
  TrafficGenerator(std::vector<netbase::Prefix> prefixes,
                   const TrafficConfig& config);

  netbase::Ipv4Address next();
  std::vector<netbase::Ipv4Address> generate(std::size_t count);

  /// Popularity mass of prefix index `i` in the *current* rotation
  /// (used by the Table II workload report).
  const std::vector<netbase::Prefix>& prefixes() const { return prefixes_; }

 private:
  std::vector<netbase::Prefix> prefixes_;
  netbase::ZipfSampler zipf_;
  netbase::Pcg32 rng_;
  std::vector<std::uint32_t> rank_to_prefix_;
  std::size_t burst_period_;
  double cluster_locality_;
  std::size_t since_rotation_ = 0;

  void rotate_hot_set();
};

}  // namespace clue::workload
