// Plain-text RIB serialization.
//
// One route per line: "<prefix> <next-hop-id>", '#' comments and blank
// lines ignored. This is the interchange format of the `fib_tool`
// example and lets users feed their own tables (e.g. converted RIPE
// dumps) into every algorithm in the library.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "netbase/prefix.hpp"
#include "trie/binary_trie.hpp"

namespace clue::workload {

struct RibParseError {
  std::size_t line = 0;    ///< 1-based line number
  std::string text;        ///< offending line content
  std::string reason;
};

struct RibParseResult {
  std::vector<netbase::Route> routes;
  std::vector<RibParseError> errors;

  bool ok() const { return errors.empty(); }
};

/// Parses a RIB stream. Malformed lines are collected, not thrown: a
/// 400K-line table with three bad lines should load, with the damage
/// reported.
RibParseResult read_rib(std::istream& in);

/// Writes one route per line, in the order given.
void write_rib(std::ostream& out, const std::vector<netbase::Route>& routes);

/// Convenience: parse into a trie, ignoring nothing — any error throws
/// std::runtime_error with the first offending line.
trie::BinaryTrie read_rib_trie(std::istream& in);

/// Traffic traces: one destination address per line (dotted quad),
/// '#' comments and blank lines ignored. Malformed lines throw
/// std::runtime_error with the line number — a trace with holes would
/// silently skew every downstream measurement.
std::vector<netbase::Ipv4Address> read_trace(std::istream& in);
void write_trace(std::ostream& out,
                 const std::vector<netbase::Ipv4Address>& addresses);

}  // namespace clue::workload
