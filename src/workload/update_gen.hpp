// Synthetic BGP update stream.
//
// Stand-in for the paper's RIPE update trace (2011-10-01 08:00 → +24 h).
// Reproduces the mix that matters to TTF: mostly next-hop changes to
// existing prefixes, a smaller flow of fresh announcements (mostly /24s
// near already-routed space) and withdrawals, with prefix locality so
// consecutive updates often touch the same region.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/prefix.hpp"
#include "netbase/rng.hpp"
#include "trie/binary_trie.hpp"

namespace clue::workload {

enum class UpdateKind : std::uint8_t { kAnnounce, kWithdraw };

struct UpdateMsg {
  UpdateKind kind;
  netbase::Prefix prefix;
  netbase::NextHop next_hop;  ///< meaningful for announces only

  friend bool operator==(const UpdateMsg&, const UpdateMsg&) = default;
};

struct UpdateConfig {
  std::uint64_t seed = 7;
  std::uint32_t next_hops = 32;
  /// Probability an update is an announce (split below) vs a withdraw.
  double announce_ratio = 0.75;
  /// Of the announces, fraction that are brand-new prefixes (the rest
  /// re-announce an existing prefix with a different next hop).
  double new_prefix_ratio = 0.45;
  /// Probability a brand-new prefix carries the next hop its covering
  /// route already uses (route flaps / more-specific re-advertisements —
  /// the updates ONRTC absorbs without touching the data plane).
  double redundant_ratio = 0.85;
};

/// Generates `count` update messages consistent with `fib`'s contents:
/// withdraws always hit live routes, re-announces change live routes'
/// next hops, fresh announces avoid colliding with live prefixes.
/// Does not modify `fib`; tracks liveness internally so the stream can
/// be replayed against any copy of the same table.
class UpdateGenerator {
 public:
  UpdateGenerator(const trie::BinaryTrie& fib, const UpdateConfig& config);

  UpdateMsg next();
  std::vector<UpdateMsg> generate(std::size_t count);

 private:
  std::size_t pick_victim();
  UpdateMsg make_withdraw();
  UpdateMsg make_reannounce();
  UpdateMsg make_fresh_announce();

  UpdateConfig config_;
  netbase::Pcg32 rng_;
  // Live view of the table as the stream evolves it.
  std::vector<netbase::Route> live_;
  trie::BinaryTrie membership_;
};

}  // namespace clue::workload
