#include "workload/rib_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

namespace clue::workload {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

RibParseResult read_rib(std::istream& in) {
  RibParseResult result;
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    const std::string_view content = trim(line);
    if (content.empty() || content.front() == '#') continue;

    const auto space = content.find_first_of(" \t");
    if (space == std::string_view::npos) {
      result.errors.push_back({number, line, "missing next-hop field"});
      continue;
    }
    const auto prefix = netbase::Prefix::parse(content.substr(0, space));
    if (!prefix) {
      result.errors.push_back({number, line, "unparsable prefix"});
      continue;
    }
    const std::string_view hop_text = trim(content.substr(space + 1));
    std::uint32_t hop = 0;
    const auto [end, ec] = std::from_chars(
        hop_text.data(), hop_text.data() + hop_text.size(), hop);
    if (ec != std::errc{} || end != hop_text.data() + hop_text.size() ||
        hop == 0) {
      result.errors.push_back(
          {number, line, "next hop must be a positive integer"});
      continue;
    }
    result.routes.push_back(
        netbase::Route{*prefix, netbase::make_next_hop(hop)});
  }
  return result;
}

void write_rib(std::ostream& out,
               const std::vector<netbase::Route>& routes) {
  for (const auto& route : routes) {
    out << route.prefix.to_string() << ' '
        << netbase::to_index(route.next_hop) << '\n';
  }
}

std::vector<netbase::Ipv4Address> read_trace(std::istream& in) {
  std::vector<netbase::Ipv4Address> out;
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    const std::string_view content = trim(line);
    if (content.empty() || content.front() == '#') continue;
    const auto address = netbase::Ipv4Address::parse(content);
    if (!address) {
      throw std::runtime_error("trace parse error at line " +
                               std::to_string(number) + ": " + line);
    }
    out.push_back(*address);
  }
  return out;
}

void write_trace(std::ostream& out,
                 const std::vector<netbase::Ipv4Address>& addresses) {
  for (const auto address : addresses) {
    out << address.to_string() << '\n';
  }
}

trie::BinaryTrie read_rib_trie(std::istream& in) {
  const auto parsed = read_rib(in);
  if (!parsed.ok()) {
    const auto& first = parsed.errors.front();
    throw std::runtime_error("RIB parse error at line " +
                             std::to_string(first.line) + ": " +
                             first.reason + " (" + first.text + ")");
  }
  trie::BinaryTrie fib;
  for (const auto& route : parsed.routes) {
    fib.insert(route.prefix, route.next_hop);
  }
  return fib;
}

}  // namespace clue::workload
