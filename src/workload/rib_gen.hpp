// Synthetic RIB generation.
//
// Stand-in for the RIPE RIS tables of Table I (the 2011-10-01 08:00 RIBs
// are not redistributable here). The generator reproduces the two
// properties the paper's numbers actually depend on:
//
//  * the empirical prefix-length histogram of 2011 BGP tables (mode at
//    /24, secondary masses at /16 and /19-/23), which drives partition
//    and TCAM-update behaviour; and
//  * spatial next-hop correlation — neighbouring prefixes usually leave
//    through the same peer because they belong to the same region/AS —
//    which is what makes ONRTC compression land near the paper's 71 %.
//
// Each router profile gets its own seed, size and peer count, so the 12
// bars of Fig. 8 differ the way 12 real collectors differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/prefix.hpp"
#include "netbase/rng.hpp"
#include "trie/binary_trie.hpp"

namespace clue::workload {

using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

/// One simulated collector (Table I stand-in).
struct RouterProfile {
  std::string id;        ///< e.g. "rrc01"
  std::string location;  ///< e.g. "LINX, London"
  std::size_t table_size;
  std::uint32_t next_hops;  ///< number of distinct peers
  std::uint64_t seed;
};

/// The 12 routers of the paper's Table I with plausible 2011-era sizes.
const std::vector<RouterProfile>& paper_routers();

struct RibConfig {
  std::size_t table_size = 400'000;
  std::uint32_t next_hops = 32;
  std::uint64_t seed = 1;
  /// Probability that a prefix inherits its enclosing super-block's
  /// dominant next hop (spatial correlation knob; higher = more
  /// compressible). 0.875 calibrates ONRTC compression to the paper's
  /// measured 71 % average over the Table-I routers.
  double locality = 0.875;
  /// Fraction of routes that are short covering aggregates, creating the
  /// parent/child overlap real tables have.
  double aggregate_share = 0.08;
};

/// Generates a synthetic FIB. Deterministic in `config.seed`.
trie::BinaryTrie generate_rib(const RibConfig& config);

/// Convenience: the FIB of one Table-I router.
trie::BinaryTrie generate_rib(const RouterProfile& profile);

/// Draws a prefix length from the empirical 2011 BGP histogram.
unsigned sample_prefix_length(netbase::Pcg32& rng);

}  // namespace clue::workload
