#include "runtime/lookup_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "engine/dispatch_policy.hpp"
#include "partition/partition.hpp"
#include "tcam/updater.hpp"

namespace clue::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

// Batch sizes for the ring drains: large enough to amortise the cursor
// atomics and overlap flat-table prefetches across a batch, small
// enough to keep per-job latency and fence granularity low.
constexpr std::size_t kWorkerBatch = 32;   // jobs popped per worker pass
constexpr std::size_t kDrainBatch = 64;    // completions popped per pass
constexpr std::size_t kClientStage = 256;  // addresses staged per pass

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

LookupRuntime::LookupRuntime(const trie::BinaryTrie& fib,
                             const RuntimeConfig& config)
    : config_(config),
      fib_(fib),
      // One slot per worker plus one for the client role, which pins the
      // IndexingLogic snapshot during each dispatch pass.
      epoch_(config.worker_count + 1),
      planner_(config.rebalance),
      client_slot_(config.worker_count),
      ttf_ring_(config.ttf_trace_depth) {
  if (config.worker_count == 0) {
    throw std::invalid_argument("LookupRuntime: need at least one worker");
  }
  if (config.fifo_depth == 0) {
    throw std::invalid_argument("LookupRuntime: fifo_depth must be positive");
  }
  if (config.latency_sample_every &
      (config.latency_sample_every - 1)) {
    throw std::invalid_argument(
        "LookupRuntime: latency_sample_every must be a power of two or 0");
  }
  sample_enabled_ = config.latency_sample_every > 0;
  sample_mask_ = sample_enabled_ ? config.latency_sample_every - 1 : 0;
  if (config.fill_sample_every & (config.fill_sample_every - 1)) {
    throw std::invalid_argument(
        "LookupRuntime: fill_sample_every must be a power of two or 0");
  }
  fill_sample_enabled_ = config.fill_sample_every > 0;
  fill_mask_ = fill_sample_enabled_ ? config.fill_sample_every - 1 : 0;
  dred_enabled_ = config.dred_capacity > 0 && config.worker_count > 1;

  const auto table = fib_.compressed().routes();
  const auto partitions =
      partition::even_partition(table, config.worker_count);
  boundaries_ =
      partition::even_partition_boundaries(table, config.worker_count);
  std::vector<std::size_t> identity(config.worker_count);
  for (std::size_t i = 0; i < config.worker_count; ++i) identity[i] = i;
  indexing_.store(new engine::IndexingLogic(boundaries_, identity),
                  std::memory_order_seq_cst);

  if (config.chip_capacity > 0) {
    chip_capacity_ = config.chip_capacity;
  } else {
    const double headroom = std::max(config.chip_headroom, 0.0);
    const std::size_t per_chip = table.size() / config.worker_count + 1;
    chip_capacity_ = static_cast<std::size_t>(
                         static_cast<double>(per_chip) * (1.0 + headroom)) +
                     8192;
  }
  if (partitions.max_bucket() > chip_capacity_) {
    throw std::invalid_argument(
        "LookupRuntime: chip_capacity smaller than the initial even share");
  }

  control_pushed_.assign(config.worker_count, 0);
  workers_.reserve(config.worker_count);
  for (std::size_t i = 0; i < config.worker_count; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->jobs = std::make_unique<SpscRing<Job>>(config.fifo_depth);
    worker->completions =
        std::make_unique<SpscRing<Completion>>(config.completion_depth);
    worker->control =
        std::make_unique<SpscRing<ControlMsg>>(config.control_depth);
    if (dred_enabled_) {
      worker->fills.resize(config.worker_count);
      for (std::size_t peer = 0; peer < config.worker_count; ++peer) {
        if (peer == i) continue;
        worker->fills[peer] =
            std::make_unique<SpscRing<FillMsg>>(config.fill_depth);
      }
      worker->dred =
          std::make_unique<engine::DredStore>(config.dred_capacity);
    }
    auto* initial = new ChipTable{};
    for (const auto& route : partitions.buckets[i].routes) {
      initial->table.insert(route.prefix, route.next_hop);
    }
    attach_flat(*initial, nullptr, {});
    worker->flat_bytes.store(
        initial->flat ? initial->flat->memory_bytes() : 0,
        std::memory_order_relaxed);
    worker->occupancy.store(initial->table.size(),
                            std::memory_order_relaxed);
    worker->active.store(initial, std::memory_order_seq_cst);
    workers_.push_back(std::move(worker));
  }
  stage_.resize(config.worker_count);
  drain_scratch_.resize(kDrainBatch);
  for (std::size_t i = 0; i < config.worker_count; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
  if (config.update_ring_depth > 0) {
    if (config_.update_batch_max == 0) config_.update_batch_max = 1;
    update_ring_ = std::make_unique<SpscRing<workload::UpdateMsg>>(
        config.update_ring_depth);
    updater_thread_ = std::thread([this] { updater_main(); });
  }
}

void LookupRuntime::stop() {
  stop_.store(true, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(stop_mutex_);
  // Updater first: its in-flight apply_batch needs live workers to ack
  // (both sides also bail on stop_, so either order terminates — this
  // one lets a draining batch finish cleanly).
  if (updater_thread_.joinable()) updater_thread_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

LookupRuntime::~LookupRuntime() {
  stop();
  for (auto& worker : workers_) {
    delete worker->active.load(std::memory_order_relaxed);
  }
  delete indexing_.load(std::memory_order_relaxed);
  // epoch_'s destructor frees any still-retired versions.
}

// ---------------------------------------------------------------- workers

void LookupRuntime::worker_main(std::size_t w) {
  Worker& me = *workers_[w];
  std::vector<Job> batch(kWorkerBatch);
  std::vector<Completion> done;
  done.reserve(kWorkerBatch);
  // Completions the full ring would not take, drained before new jobs.
  std::vector<Completion> pending;
  std::size_t pending_at = 0;
  unsigned idle = 0;
  for (;;) {
    bool progress = drain_control(w);
    if (dred_enabled_) progress |= drain_fills(w);
    if (pending_at < pending.size()) {
      const std::size_t pushed = me.completions->try_push_n(
          pending.data() + pending_at, pending.size() - pending_at);
      if (pushed > 0) {
        pending_at += pushed;
        progress = true;
        if (pending_at == pending.size()) {
          pending.clear();
          pending_at = 0;
        }
      }
    }
    if (pending.empty()) {
      const std::size_t n = me.jobs->try_pop_n(batch.data(), kWorkerBatch);
      if (n > 0) {
        progress = true;
        process_batch(w, batch.data(), n, done);
        const std::size_t pushed = me.completions->try_push_n(done.data(), n);
        if (pushed < n) {
          pending.assign(done.begin() + static_cast<std::ptrdiff_t>(pushed),
                         done.end());
          pending_at = 0;
        }
      }
    }
    if (progress) {
      idle = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    ++idle;
    if (idle < 64) {
      cpu_relax();
    } else if (idle < 256) {
      std::this_thread::yield();
    } else {
      // Fully idle: back off so a single-core host can run the client.
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      idle = 256;
    }
  }
}

void LookupRuntime::process_batch(std::size_t w, const Job* jobs,
                                  std::size_t n,
                                  std::vector<Completion>& out) {
  Worker& me = *workers_[w];
  out.clear();
  // Snapshot discipline: pin the epoch once for the whole batch, then
  // load the pointer. The table stays alive until this guard's slot
  // passes the retire epoch; batches are tens of jobs, so the pin never
  // stretches a grace period meaningfully.
  EpochDomain::Guard guard(epoch_, w);
  const ChipTable* table = me.active.load(std::memory_order_seq_cst);
  if (const auto* flat = table->flat.get()) {
    // Request every job's level-1 line before resolving any: the flat
    // array is tens of MB and cache-cold per batch, so the loads overlap
    // instead of serialising one miss per job.
    for (std::size_t i = 0; i < n; ++i) {
      if (!jobs[i].dred_only) flat->prefetch(jobs[i].address);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(resolve_timed(w, jobs[i], *table));
  }
}

LookupRuntime::Completion LookupRuntime::process(std::size_t w,
                                                 const Job& job) {
  Worker& me = *workers_[w];
  EpochDomain::Guard guard(epoch_, w);
  const ChipTable* table = me.active.load(std::memory_order_seq_cst);
  return resolve_timed(w, job, *table);
}

LookupRuntime::Completion LookupRuntime::resolve_timed(
    std::size_t w, const Job& job, const ChipTable& table) {
  Worker& me = *workers_[w];
  // Service-time sampling: time one in every latency_sample_every jobs
  // so the histogram costs two clock reads per sample, not per lookup.
  // jobs_seen is worker-private, so the per-job cost is a plain
  // increment + mask rather than an atomic load.
  if (sample_enabled_ && (me.jobs_seen++ & sample_mask_) == 0) {
    const auto t0 = Clock::now();
    const Completion done = resolve_job(w, job, table);
    me.service_hist.record(elapsed_ns(t0));
    return done;
  }
  return resolve_job(w, job, table);
}

LookupRuntime::Completion LookupRuntime::resolve_job(std::size_t w,
                                                     const Job& job,
                                                     const ChipTable& table) {
  Worker& me = *workers_[w];
  me.counters.add(WorkerCounter::kJobs);
  if (job.dred_only) {
    me.counters.add(WorkerCounter::kDredLookups);
    const auto hop = me.dred->lookup(job.address);
    if (hop) {
      me.counters.add(WorkerCounter::kDredHits);
      return Completion{job.index, *hop, false, job.gen};
    }
    // Miss: the client re-enqueues at the home chip (the runtime's
    // version of the engine's beyond-FIFO-bound return acceptance).
    me.counters.add(WorkerCounter::kMissReturns);
    return Completion{job.index, netbase::kNoRoute, true, job.gen};
  }
  me.counters.add(WorkerCounter::kHomeLookups);
  NextHop hop = netbase::kNoRoute;
  std::optional<Route> harvest;
  if (table.flat) {
    // The flat image answers with the hop alone; a DRed fill needs the
    // stored route shape, so one in every fill_sample_every hits pays
    // one trie walk to harvest it. The trie path samples identically —
    // flat on/off A/B then compares lookup cost, not fill policy.
    me.counters.add(WorkerCounter::kFlatLookups);
    hop = table.flat->lookup(job.address);
    if (hop != netbase::kNoRoute && dred_enabled_ && fill_sample_enabled_ &&
        (me.hits_seen++ & fill_mask_) == 0) {
      harvest = table.table.lookup_route(job.address);
    }
  } else {
    me.counters.add(WorkerCounter::kTrieLookups);
    const auto matched = table.table.lookup_route(job.address);
    if (matched) {
      hop = matched->next_hop;
      if (dred_enabled_ && fill_sample_enabled_ &&
          (me.hits_seen++ & fill_mask_) == 0) {
        harvest = matched;
      }
    }
  }
  if (harvest) send_fills(w, *harvest, table.version);
  return Completion{job.index, hop, false, job.gen};
}

bool LookupRuntime::drain_control(std::size_t w) {
  Worker& me = *workers_[w];
  ControlMsg msg;
  bool any = false;
  while (me.control->try_pop(msg)) {
    any = true;
    if (msg.kind == ControlMsg::Kind::kFence) {
      drain_own_jobs(w);
    } else if (me.dred) {
      if (msg.kind == ControlMsg::Kind::kErase) {
        me.dred->erase(msg.route.prefix);
      } else {
        // fix(): rewrite in place without promoting the entry in LRU
        // order — a sync message is not a reuse.
        me.dred->fix(msg.route);
      }
    }
    me.control_applied.fetch_add(1, std::memory_order_release);
  }
  return any;
}

void LookupRuntime::drain_own_jobs(std::size_t w) {
  Worker& me = *workers_[w];
  Job job;
  std::size_t drained = 0;
  // Capacity-bounded: the jobs the fence must flush were enqueued before
  // the indexing republish and number at most one ring's worth; anything
  // pushed behind them was routed by the new indexing and is safe
  // against any table version, so there is no need to chase the ring
  // while the client keeps refilling it.
  while (drained < config_.fifo_depth && me.jobs->try_pop(job)) {
    ++drained;
    const Completion done = process(w, job);
    while (!me.completions->try_push(done)) {
      if (stop_.load(std::memory_order_acquire)) return;
      cpu_relax();
    }
  }
}

bool LookupRuntime::drain_fills(std::size_t w) {
  Worker& me = *workers_[w];
  bool any = false;
  FillMsg msg;
  for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
    if (peer == w) continue;
    while (me.fills[peer]->try_pop(msg)) {
      any = true;
      // Staleness guard: if the home chip republished since this fill
      // was produced, the route may no longer exist (updates, or a
      // migration that moved it off that chip) — drop rather than
      // poison the cache (a fresh hit will re-fill).
      const std::uint64_t current =
          workers_[msg.home]->published_version.load(
              std::memory_order_acquire);
      if (msg.version < current) {
        me.counters.add(WorkerCounter::kFillsDroppedStale);
        continue;
      }
      me.dred->insert(msg.route);
      me.counters.add(WorkerCounter::kFillsApplied);
    }
  }
  return any;
}

void LookupRuntime::send_fills(std::size_t w, const Route& matched,
                               std::uint64_t version) {
  Worker& me = *workers_[w];
  const FillMsg msg{matched, version, static_cast<std::uint32_t>(w)};
  for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
    if (!engine::dred_may_cache(peer, w)) continue;  // exclusion rule
    if (workers_[peer]->fills[w]->try_push(msg)) {
      me.counters.add(WorkerCounter::kFillsSent);
    } else {
      me.counters.add(WorkerCounter::kFillsDroppedFull);
    }
  }
}

// ----------------------------------------------------------------- client

bool LookupRuntime::try_submit(const engine::IndexingLogic& indexing,
                               const Job& job) {
  const std::size_t home = indexing.tcam_of(job.address);
  if (workers_[home]->jobs->try_push(job)) return true;
  return try_divert(home, job);
}

bool LookupRuntime::try_divert(std::size_t home, const Job& job) {
  if (!dred_enabled_) return false;  // nowhere useful to divert
  occupancy_scratch_.resize(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    occupancy_scratch_[i] = workers_[i]->jobs->size_approx();
  }
  const auto decision =
      engine::choose_queue(home, occupancy_scratch_, config_.fifo_depth);
  switch (decision.action) {
    case engine::DispatchDecision::Action::kHome:
      // The home ring drained between our push and the scan; retry it.
      return workers_[home]->jobs->try_push(job);
    case engine::DispatchDecision::Action::kDivert: {
      Job diverted = job;
      diverted.dred_only = true;
      if (workers_[decision.chip]->jobs->try_push(diverted)) {
        client_counters_.add(ClientCounter::kDiverted);
        return true;
      }
      return false;
    }
    case engine::DispatchDecision::Action::kReject:
      return false;
  }
  return false;
}

std::vector<NextHop> LookupRuntime::lookup_batch(
    std::span<const Ipv4Address> addresses,
    std::vector<double>* latency_ns) {
  std::vector<NextHop> results(addresses.size(), netbase::kNoRoute);
  // New generation: completions stranded in the rings by an aborted
  // earlier batch carry a stale gen and are dropped on drain below
  // instead of being written through a differently-sized results vector.
  const std::uint32_t gen = ++batch_gen_;
  if (latency_ns) {
    latency_ns->assign(addresses.size(), 0.0);
    submitted_.resize(addresses.size());
  }
  // Leftovers of an aborted earlier batch index a dead results vector.
  returns_.clear();
  backlog_.clear();
  for (auto& staged : stage_) staged.clear();
  std::size_t next = 0;
  std::size_t outstanding = 0;
  unsigned idle = 0;
  // No-progress episodes longer than this many spins count as a stall in
  // the metrics (workers wedged, descheduled, or the runtime stopping).
  constexpr unsigned kStallSpins = 10'000;
  bool stall_recorded = false;
  while (next < addresses.size() || outstanding > 0 || !backlog_.empty()) {
    bool progress = false;
    {
      // Dispatch pass: pin the epoch so the IndexingLogic snapshot we
      // route by cannot be freed under us by a concurrent rebalance.
      // Re-read every pass — after publish_indexing's grace period the
      // control plane may rely on no older snapshot being in use.
      EpochDomain::Guard guard(epoch_, client_slot_);
      const engine::IndexingLogic& indexing =
          *indexing_.load(std::memory_order_seq_cst);
      // Returned misses first: they are the oldest jobs in flight.
      for (std::size_t i = 0; i < returns_.size();) {
        const std::size_t home = indexing.tcam_of(returns_[i].address);
        if (workers_[home]->jobs->try_push(returns_[i])) {
          returns_[i] = returns_.back();
          returns_.pop_back();
          progress = true;
        } else {
          ++i;
        }
      }
      // Then jobs every ring rejected last pass (older than fresh ones).
      for (std::size_t i = 0; i < backlog_.size();) {
        if (try_submit(indexing, backlog_[i])) {
          if (latency_ns) submitted_[backlog_[i].index] = Clock::now();
          ++outstanding;
          backlog_[i] = backlog_.back();
          backlog_.pop_back();
          progress = true;
        } else {
          ++i;
        }
      }
      // Fresh submissions, staged per home chip so each ring takes one
      // batched push per pass instead of one cursor update per address.
      // Staging pauses while a backlog exists — everything is full
      // anyway, and order stays tidy.
      if (backlog_.empty() && next < addresses.size()) {
        const std::size_t stage_end =
            std::min(addresses.size(), next + kClientStage);
        for (; next < stage_end; ++next) {
          const std::size_t home = indexing.tcam_of(addresses[next]);
          stage_[home].push_back(Job{addresses[next],
                                     static_cast<std::uint32_t>(next), false,
                                     gen});
        }
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          auto& staged = stage_[w];
          if (staged.empty()) continue;
          const std::size_t pushed =
              workers_[w]->jobs->try_push_n(staged.data(), staged.size());
          if (pushed > 0) {
            progress = true;
            if (latency_ns) {
              // One stamp per sub-batch: the spread within a batched
              // push is nanoseconds against microsecond latencies.
              const auto stamp = Clock::now();
              for (std::size_t i = 0; i < pushed; ++i) {
                submitted_[staged[i].index] = stamp;
              }
            }
            outstanding += pushed;
          }
          for (std::size_t i = pushed; i < staged.size(); ++i) {
            if (try_divert(w, staged[i])) {
              if (latency_ns) submitted_[staged[i].index] = Clock::now();
              ++outstanding;
              progress = true;
            } else {
              backlog_.push_back(staged[i]);
            }
          }
          staged.clear();
        }
        if (!backlog_.empty()) {
          client_counters_.add(ClientCounter::kBackpressureWaits);
        }
      }
    }
    // Completion drain + reorder stage: results land at their
    // submission index regardless of which chip answered when.
    for (auto& worker : workers_) {
      std::size_t got;
      while ((got = worker->completions->try_pop_n(drain_scratch_.data(),
                                                   kDrainBatch)) > 0) {
        progress = true;
        for (std::size_t d = 0; d < got; ++d) {
          const Completion& done = drain_scratch_[d];
          if (done.gen != gen) continue;  // stranded by an aborted batch
          if (done.miss_return) {
            returns_.push_back(
                Job{addresses[done.index], done.index, false, gen});
          } else {
            results[done.index] = done.hop;
            if (latency_ns) {
              const double ns = elapsed_ns(submitted_[done.index]);
              (*latency_ns)[done.index] = ns;
              // Same 1-in-N sampling as worker service timing: on a
              // loaded host the client shares cycles with the workers,
              // so per-completion recording taxes lookup throughput.
              if (sample_enabled_ &&
                  (client_samples_seen_++ & sample_mask_) == 0) {
                client_hist_.record(ns);
              }
            }
            --outstanding;
          }
        }
      }
    }
    if (progress) {
      idle = 0;
      stall_recorded = false;
      continue;
    }
    // Bounded spin: a stopping runtime (workers joined, rings wedged)
    // must unblock the client instead of yielding forever. Unanswered
    // addresses keep their kNoRoute default.
    if (stop_.load(std::memory_order_acquire)) {
      client_counters_.add(ClientCounter::kBatchesAborted);
      break;
    }
    ++idle;
    if (idle >= kStallSpins && !stall_recorded) {
      client_counters_.add(ClientCounter::kStalls);
      stall_recorded = true;
    }
    if (idle < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  client_counters_.add(ClientCounter::kLookupsCompleted, addresses.size());
  return results;
}

NextHop LookupRuntime::lookup(Ipv4Address address) {
  const Ipv4Address one[1] = {address};
  return lookup_batch(std::span<const Ipv4Address>(one, 1)).front();
}

// ---------------------------------------------------------------- control

void LookupRuntime::publish_table(std::size_t chip, ChipTable* next) {
  Worker& worker = *workers_[chip];
  ChipTable* old = worker.active.load(std::memory_order_relaxed);
  worker.active.store(next, std::memory_order_seq_cst);
  worker.published_version.store(next->version, std::memory_order_seq_cst);
  worker.occupancy.store(next->table.size(), std::memory_order_release);
  worker.flat_bytes.store(next->flat ? next->flat->memory_bytes() : 0,
                          std::memory_order_relaxed);
  epoch_.retire(old);
  tables_published_.fetch_add(1, std::memory_order_relaxed);
}

double LookupRuntime::attach_flat(ChipTable& next, const ChipTable* prev,
                                  std::span<const Prefix> dirty) {
  if (!config_.flat_lookup) return 0.0;
  const auto t0 = Clock::now();
  try {
    if (prev && prev->flat) {
      next.flat = std::make_unique<engine::FlatLookupTable>(
          *prev->flat, next.table, dirty);
    } else {
      next.flat = std::make_unique<engine::FlatLookupTable>(
          next.table, config_.flat_table);
    }
  } catch (const std::exception&) {
    // A next hop the 31-bit entry encoding cannot hold (or a bad
    // config): this version answers from the trie instead.
    next.flat = nullptr;
  }
  const double ns = elapsed_ns(t0);
  flat_rebuild_hist_.record(ns);
  return ns;
}

void LookupRuntime::publish_indexing() {
  std::vector<std::size_t> identity(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) identity[i] = i;
  auto* next = new engine::IndexingLogic(boundaries_, identity);
  engine::IndexingLogic* old =
      indexing_.exchange(next, std::memory_order_seq_cst);
  epoch_.retire(old);
  // The retired indexing shares the epoch domain's reclaim accounting
  // with chip tables, so it must count as a published version too or
  // the reclaimed == published quiescence invariant breaks.
  tables_published_.fetch_add(1, std::memory_order_relaxed);
  // Grace period: once this returns, every dispatch pass routes by the
  // new boundaries — the migration protocol can fence the donor knowing
  // no more old-homed jobs will arrive behind the fence.
  epoch_.synchronize();
}

void LookupRuntime::push_control(std::size_t chip, const ControlMsg& msg) {
  Worker& worker = *workers_[chip];
  while (!worker.control->try_push(msg)) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
  ++control_pushed_[chip];
}

void LookupRuntime::push_control_n(std::size_t chip, ControlMsg* msgs,
                                   std::size_t count) {
  Worker& worker = *workers_[chip];
  std::size_t pushed = 0;
  while (pushed < count) {
    const std::size_t n =
        worker.control->try_push_n(msgs + pushed, count - pushed);
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    pushed += n;
  }
  // Only what actually landed counts toward the ack target (a stopping
  // runtime bails mid-push).
  control_pushed_[chip] += pushed;
}

void LookupRuntime::wait_control_ack(std::size_t chip) {
  Worker& worker = *workers_[chip];
  unsigned spins = 0;
  while (worker.control_applied.load(std::memory_order_acquire) <
         control_pushed_[chip]) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (++spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
}

std::vector<std::size_t> LookupRuntime::occupancy_snapshot() const {
  std::vector<std::size_t> occupancy(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    occupancy[i] = workers_[i]->occupancy.load(std::memory_order_acquire);
  }
  return occupancy;
}

std::vector<std::size_t> LookupRuntime::chip_occupancy() const {
  return occupancy_snapshot();
}

double LookupRuntime::skew() const {
  const auto occupancy = occupancy_snapshot();
  return RebalancePlanner::skew(occupancy);
}

std::size_t LookupRuntime::migrate(const MigrationStep& step) {
  Worker& donor = *workers_[step.donor];
  ChipTable* donor_old = donor.active.load(std::memory_order_relaxed);
  const std::vector<Route> donor_routes = donor_old->table.routes();
  if (donor_routes.empty()) return 0;
  const bool rightward = step.receiver == step.donor + 1;
  std::size_t count = std::min(step.count, donor_routes.size());
  // A leftward donor keeps its top entry so its upper boundary stays at
  // a real stored address (the planner enforces this too; re-clamp in
  // case occupancy moved between planning and execution).
  if (!rightward) count = std::min(count, donor_routes.size() - 1);
  if (count == 0) return 0;

  // routes() is address-sorted, so the boundary-adjacent run is the top
  // `count` routes for a rightward move, the bottom `count` leftward.
  const std::size_t first = rightward ? donor_routes.size() - count : 0;
  const std::span<const Route> migrated(donor_routes.data() + first, count);
  // The migrated prefixes are the dirty set for both chips' flat-image
  // rebuilds: everything else in either table is untouched.
  std::vector<Prefix> dirty;
  dirty.reserve(count);
  for (const auto& route : migrated) dirty.push_back(route.prefix);

  // 1. Publish the receiver's table with the migrated routes added.
  //    Both chips now store them, but the indexing still homes their
  //    addresses to the donor, whose table is untouched — every lookup
  //    answer is unchanged.
  {
    Worker& receiver = *workers_[step.receiver];
    ChipTable* old = receiver.active.load(std::memory_order_relaxed);
    auto* next = new ChipTable{old->table, old->version + 1, nullptr};
    for (const auto& route : migrated) {
      next->table.insert(route.prefix, route.next_hop);
    }
    attach_flat(*next, old, dirty);
    publish_table(step.receiver, next);
  }

  // 2. Move the shared boundary and wait out the grace period: after
  //    this, every dispatch routes migrated addresses to the receiver
  //    (whose table already answers them).
  const std::size_t boundary = rightward ? step.donor : step.receiver;
  boundaries_[boundary] =
      rightward ? migrated.front().prefix.range_low()
                : donor_routes[count].prefix.range_low();
  publish_indexing();

  // 3. Fence the donor: jobs that reached its ring under the old
  //    indexing are answered from its still-fat table before it shrinks
  //    (the fat table is a superset, so post-swap donor jobs drained
  //    alongside them get identical answers).
  push_control(step.donor, ControlMsg{ControlMsg::Kind::kFence, Route{}});
  wait_control_ack(step.donor);

  // 4. Shrink the donor. The version bump also staleness-kills every
  //    in-flight DRed fill the donor produced for a migrated route, so
  //    none can sneak into the receiver's DRed after step 5's sweep.
  {
    ChipTable* old = donor.active.load(std::memory_order_relaxed);
    auto* next = new ChipTable{old->table, old->version + 1, nullptr};
    for (const auto& route : migrated) next->table.erase(route.prefix);
    attach_flat(*next, old, dirty);
    publish_table(step.donor, next);
  }

  // 5. Re-home DRed state: the migrated prefixes are now the receiver's
  //    *own*, so its DRed must drop them or the exclusion invariant
  //    ("DRed i never stores chip i's prefixes") dies. Other chips'
  //    DReds may keep them — the route, and thus the answer, did not
  //    change, and they remain foreign prefixes there.
  if (dred_enabled_) {
    // One batched ring write for the whole erase sweep instead of one
    // cursor update per migrated route.
    std::vector<ControlMsg> erases;
    erases.reserve(migrated.size());
    for (const auto& route : migrated) {
      erases.push_back(ControlMsg{ControlMsg::Kind::kErase, route});
    }
    push_control_n(step.receiver, erases.data(), erases.size());
    wait_control_ack(step.receiver);
  }
  epoch_.reclaim();
  return count;
}

std::size_t LookupRuntime::rebalance_pass() {
  const auto t0 = Clock::now();
  std::size_t steps = 0;
  while (steps < planner_.config().max_steps_per_pass &&
         !stop_.load(std::memory_order_acquire)) {
    const auto occupancy = occupancy_snapshot();
    const auto step = planner_.plan_step(occupancy);
    if (!step) break;
    const std::size_t moved = migrate(*step);
    if (moved == 0) break;  // nothing executable despite the plan
    entries_migrated_.fetch_add(moved, std::memory_order_relaxed);
    rebalance_steps_.fetch_add(1, std::memory_order_relaxed);
    ++steps;
  }
  if (steps > 0) {
    rebalance_passes_.fetch_add(1, std::memory_order_relaxed);
    rebalance_hist_.record(elapsed_ns(t0));
  }
  return steps;
}

std::size_t LookupRuntime::rebalance_now() { return rebalance_pass(); }

// ----------------------------------------------------------- async ingress

bool LookupRuntime::submit(const workload::UpdateMsg& message) {
  if (!update_ring_) return false;
  while (!update_ring_->try_push(message)) {
    if (stop_.load(std::memory_order_acquire)) return false;
    std::this_thread::yield();
  }
  updates_submitted_.fetch_add(1, std::memory_order_release);
  return true;
}

void LookupRuntime::flush_updates() {
  if (!update_ring_) return;
  unsigned spins = 0;
  while (updates_ingested_.load(std::memory_order_acquire) <
         updates_submitted_.load(std::memory_order_acquire)) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (++spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
}

void LookupRuntime::updater_main() {
  std::vector<workload::UpdateMsg> batch(config_.update_batch_max);
  const double window_max_us = std::max(config_.update_window_us, 1.0);
  double window_us = 1.0;
  unsigned idle = 0;
  for (;;) {
    std::size_t n = update_ring_->try_pop_n(batch.data(), batch.size());
    if (n == 0) {
      // Empty ring at stop time = fully drained; exit. (A non-empty ring
      // keeps applying below even while stopping, so submitted work is
      // never silently dropped.)
      if (stop_.load(std::memory_order_acquire)) break;
      ++idle;
      if (idle < 64) {
        cpu_relax();
      } else if (idle < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        idle = 256;
      }
      continue;
    }
    idle = 0;
    // Adaptive batch window: a partial pop waits up to window_us for the
    // burst's stragglers so one commit covers them all.
    const bool waited = n < batch.size();
    if (waited) {
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::micro>(
                                 window_us));
      while (n < batch.size() && Clock::now() < deadline) {
        const std::size_t got =
            update_ring_->try_pop_n(batch.data() + n, batch.size() - n);
        if (got > 0) {
          n += got;
        } else {
          if (stop_.load(std::memory_order_acquire)) break;
          cpu_relax();
        }
      }
    }
    apply_batch(std::span<const workload::UpdateMsg>(batch.data(), n));
    updates_ingested_.fetch_add(n, std::memory_order_release);
    // Adapt: a batch that filled without waiting means the arrival rate
    // saturates the commit rate — shrink the window and commit sooner. A
    // mostly-empty batch means the window is what is holding updates
    // back — widen it (bounded) so the next burst amortises better.
    if (!waited) {
      window_us = std::max(1.0, window_us * 0.5);
    } else if (n < batch.size() / 4) {
      window_us = std::min(window_max_us, window_us * 2.0);
    }
  }
}

void LookupRuntime::rollback_update(const workload::UpdateMsg& message,
                                    const std::optional<NextHop>& prior) {
  // Invert the ground-truth mutation so trie, chips, and DReds agree
  // again: none of the data plane saw the rejected diff.
  if (prior) {
    fib_.announce(message.prefix, *prior);
  } else if (message.kind == workload::UpdateKind::kAnnounce) {
    fib_.withdraw(message.prefix);
  }
  // A withdraw of an absent prefix yields an empty diff and never
  // reaches admission, so there is no fourth case.
}

update::TtfSample LookupRuntime::apply(const workload::UpdateMsg& message) {
  // Exactly a group commit of one: same admission, same publish path,
  // same trace — plus the historical throwing contract on rejection.
  const workload::UpdateMsg one[1] = {message};
  const update::BatchTtfSample batch =
      apply_batch(std::span<const workload::UpdateMsg>(one, 1));
  if (batch.rejected > 0) {
    throw tcam::TcamFullError("LookupRuntime::apply", chip_capacity_);
  }
  return batch.ttf;
}

update::BatchTtfSample LookupRuntime::apply_batch(
    std::span<const workload::UpdateMsg> messages) {
  update::BatchTtfSample batch;
  if (messages.empty()) return batch;
  const auto t0 = Clock::now();

  // --- TTF1: every message's ONRTC diff, in submission order. --------
  // per_msg[k] keeps message k's raw ops separable so a suffix rollback
  // can drop them without re-running the kept prefix; priors[k] is its
  // exact prior ground-truth route — the rollback token.
  std::vector<std::vector<onrtc::FibOp>> per_msg;
  std::vector<std::optional<NextHop>> priors;
  per_msg.reserve(messages.size());
  priors.reserve(messages.size());
  for (const auto& message : messages) {
    priors.push_back(fib_.ground_truth().find(message.prefix));
    per_msg.push_back(
        message.kind == workload::UpdateKind::kAnnounce
            ? fib_.announce(message.prefix, message.next_hop)
            : fib_.withdraw(message.prefix));
  }
  batch.ttf.ttf1_ns = elapsed_ns(t0);

  obs::TtfTraceEntry trace;
  trace.ttf1_ns = batch.ttf.ttf1_ns;
  trace.batch_size = static_cast<std::uint32_t>(messages.size());
  // Queue-depth sample: how hard the data plane was running when this
  // commit cut in (correlates TTF tails with lookup pressure).
  std::size_t depth_sum = 0;
  for (const auto& worker : workers_) {
    const std::size_t depth = worker->jobs->size_approx();
    depth_sum += depth;
    trace.queue_depth_max =
        std::max(trace.queue_depth_max, static_cast<std::uint32_t>(depth));
  }
  trace.queue_depth_mean = static_cast<double>(depth_sum) /
                           static_cast<double>(workers_.size());

  // --- TTF2: coalesce, admit, shadow once per chip, publish once. ----
  const auto t1 = Clock::now();
  std::vector<ChipTable*> shadows(workers_.size(), nullptr);
  std::vector<ControlMsg> broadcast;
  // Per-chip dirty regions for the flat-image rebuild: insert pieces
  // plus each delete/modify op's covering prefix (its stored shapes all
  // lie within it).
  std::vector<std::vector<Prefix>> dirty(workers_.size());

  // Builds every affected chip's shadow at the *current* boundaries from
  // the already-coalesced net ops — one trie copy, one flat rebuild, one
  // publish per chip however many messages touched it. Inserts split
  // fresh; deletes/modifies instead range-query the chip for its
  // *stored* shapes — after a boundary migration the pieces stored at
  // insert time no longer match a fresh split, and an exact-prefix erase
  // of recomputed pieces would strand entries. The DRed broadcast uses
  // the same stored shapes, because DRed fills only ever carry stored
  // shapes.
  const auto build_shadows = [&](const std::vector<onrtc::FibOp>& ops) {
    for (auto& d : dirty) d.clear();  // admission retries rebuild these
    std::vector<std::vector<std::pair<onrtc::FibOpKind, Route>>> per_chip(
        workers_.size());
    for (const auto& op : ops) {
      if (op.kind == onrtc::FibOpKind::kInsert) {
        for (const auto& [chip, piece] :
             engine::split_at_boundaries(op.route.prefix, boundaries_)) {
          per_chip[chip].emplace_back(op.kind,
                                      Route{piece, op.route.next_hop});
          dirty[chip].push_back(piece);
        }
      } else {
        // Every stored shape of the region lies on a chip whose current
        // range intersects it; split only enumerates those chips.
        std::size_t last_chip = ~std::size_t{0};
        for (const auto& [chip, piece] :
             engine::split_at_boundaries(op.route.prefix, boundaries_)) {
          if (chip == last_chip) continue;
          last_chip = chip;
          per_chip[chip].emplace_back(op.kind, op.route);
          dirty[chip].push_back(op.route.prefix);
        }
      }
    }
    for (std::size_t chip = 0; chip < workers_.size(); ++chip) {
      if (per_chip[chip].empty()) continue;
      // The control thread is the only writer, so reading the active
      // version without a guard is safe; workers only ever read it.
      ChipTable* old = workers_[chip]->active.load(std::memory_order_relaxed);
      auto* next = new ChipTable{old->table, old->version + 1, nullptr};
      for (const auto& [kind, route] : per_chip[chip]) {
        switch (kind) {
          case onrtc::FibOpKind::kInsert:
            next->table.insert(route.prefix, route.next_hop);
            break;
          case onrtc::FibOpKind::kDelete:
            for (const auto& stored :
                 next->table.routes_within(route.prefix)) {
              next->table.erase(stored.prefix);
              broadcast.push_back(
                  ControlMsg{ControlMsg::Kind::kErase, stored});
            }
            break;
          case onrtc::FibOpKind::kModify:
            for (const auto& stored :
                 next->table.routes_within(route.prefix)) {
              next->table.insert(stored.prefix, route.next_hop);
              broadcast.push_back(
                  ControlMsg{ControlMsg::Kind::kFix,
                             Route{stored.prefix, route.next_hop}});
            }
            break;
        }
      }
      shadows[chip] = next;
    }
  };
  const auto discard_shadows = [&] {
    for (auto*& shadow : shadows) {
      delete shadow;
      shadow = nullptr;
    }
    broadcast.clear();
  };

  // Admission loop with exact suffix rollback. The merged ops are the
  // burst's net table transition; a shadow exceeding the chip capacity
  // first triggers one emergency rebalance (frees headroom by evening
  // out occupancy, moves boundaries — hence the full re-plan), then
  // messages are un-applied from the end of the batch (reverse order, so
  // each inversion sees exactly the trie state its message saw) until
  // the remainder fits. Nothing touches a chip or DRed until admission
  // has passed, so trie, chips, and DReds stay mutually consistent.
  std::size_t keep = messages.size();
  std::vector<onrtc::FibOp> raw;
  std::vector<onrtc::FibOp> merged;
  update::CoalesceStats stats;
  bool rebalanced = !planner_.config().enabled;
  for (;;) {
    raw.clear();
    for (std::size_t k = 0; k < keep; ++k) {
      raw.insert(raw.end(), per_msg[k].begin(), per_msg[k].end());
    }
    merged = update::coalesce_ops(raw, &stats);
    build_shadows(merged);
    bool fits = true;
    for (const auto* shadow : shadows) {
      if (shadow && shadow->table.size() > chip_capacity_) {
        fits = false;
        break;
      }
    }
    if (fits) break;
    discard_shadows();
    if (!rebalanced) {
      rebalanced = true;
      const auto rb0 = Clock::now();
      const std::uint64_t entries_before =
          entries_migrated_.load(std::memory_order_relaxed);
      const std::size_t moved_steps = rebalance_pass();
      trace.rebalance_steps += static_cast<std::uint32_t>(moved_steps);
      trace.entries_migrated += static_cast<std::uint32_t>(
          entries_migrated_.load(std::memory_order_relaxed) - entries_before);
      trace.rebalance_ns += elapsed_ns(rb0);
      if (moved_steps > 0) continue;
    }
    --keep;
    rollback_update(messages[keep], priors[keep]);
    updates_rejected_.fetch_add(1, std::memory_order_seq_cst);
  }
  batch.applied = keep;
  batch.rejected = messages.size() - keep;
  batch.raw_ops = stats.raw_ops;
  batch.merged_ops = stats.merged_ops;
  trace.ops_raw = static_cast<std::uint32_t>(stats.raw_ops);
  trace.ops_merged = static_cast<std::uint32_t>(stats.merged_ops);

  // Messages the data plane can observe: kept ones with a non-empty
  // diff. No-op messages never bump the oracle counters — exactly the
  // sequential path's empty-diff early return.
  std::size_t effective = 0;
  for (std::size_t k = 0; k < keep; ++k) {
    if (!per_msg[k].empty()) ++effective;
  }
  if (effective == 0) {
    batch.ttf.ttf2_ns = elapsed_ns(t1);
    return batch;
  }

  // Admission passed: from here the batch publishes. Any lookup answer
  // ever produced stays within the [updates_completed before submit,
  // updates_started after completion] oracle window — rejected messages
  // never bump either counter, migrations never change answers, and the
  // single publish per chip means no *intermediate* batch state is ever
  // observable: each chip jumps from the pre-batch to the post-batch
  // table in one pointer swap.
  trace.seq = updates_started_.fetch_add(effective,
                                         std::memory_order_seq_cst) +
              effective;
  for (std::size_t chip = 0; chip < workers_.size(); ++chip) {
    if (!shadows[chip]) continue;
    ++trace.chips_touched;
    // The flat rebuild is part of the publish (and so of TTF2): the new
    // image copy-on-writes from the still-active version's image over
    // this batch's dirty prefixes, so its cost tracks the net diff size
    // — each dirty chunk is rewritten once per batch, not per message.
    const ChipTable* old =
        workers_[chip]->active.load(std::memory_order_relaxed);
    trace.flat_ns += attach_flat(*shadows[chip], old, dirty[chip]);
    publish_table(chip, shadows[chip]);
    shadows[chip] = nullptr;
  }
  // One grace barrier closes the whole batch: after it every worker has
  // left the retired tables, so the reclaim below frees them all — the
  // batch holds at most one shadow per chip however many messages it
  // carried.
  if (trace.chips_touched > 0) epoch_.synchronize();
  batch.ttf.ttf2_ns = elapsed_ns(t1);

  // --- TTF3: one batched DRed erase/fix sweep, wait for worker acks. --
  const auto t2 = Clock::now();
  if (dred_enabled_ && !broadcast.empty()) {
    trace.control_msgs =
        static_cast<std::uint32_t>(broadcast.size() * workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      push_control_n(i, broadcast.data(), broadcast.size());
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) wait_control_ack(i);
  }
  batch.ttf.ttf3_ns = elapsed_ns(t2);

  updates_completed_.fetch_add(effective, std::memory_order_seq_cst);
  epoch_.reclaim();

  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  batch_ops_raw_.fetch_add(stats.raw_ops, std::memory_order_relaxed);
  batch_ops_merged_.fetch_add(stats.merged_ops, std::memory_order_relaxed);
  batch_publishes_.fetch_add(trace.chips_touched, std::memory_order_relaxed);

  // Drift watch (the rebalancer's steady-state trigger): occupancy just
  // changed, so re-check the watermarks and even out while the skew is
  // still small — many cheap migrations beat one giant one.
  if (planner_.should_rebalance(occupancy_snapshot(), chip_capacity_)) {
    const auto rb0 = Clock::now();
    const std::uint64_t entries_before =
        entries_migrated_.load(std::memory_order_relaxed);
    trace.rebalance_steps +=
        static_cast<std::uint32_t>(rebalance_pass());
    trace.entries_migrated += static_cast<std::uint32_t>(
        entries_migrated_.load(std::memory_order_relaxed) - entries_before);
    trace.rebalance_ns += elapsed_ns(rb0);
  }

  trace.ttf2_ns = batch.ttf.ttf2_ns;
  trace.ttf3_ns = batch.ttf.ttf3_ns;
  ttf_ring_.record(trace);
  batch_apply_hist_.record(elapsed_ns(t0));
  return batch;
}

// ---------------------------------------------------------------- metrics

RuntimeMetrics LookupRuntime::metrics() const {
  RuntimeMetrics m;
  m.per_worker_jobs.reserve(workers_.size());
  for (const auto& worker : workers_) {
    const auto& c = worker->counters;
    m.per_worker_jobs.push_back(c.get(WorkerCounter::kJobs));
    m.home_lookups += c.get(WorkerCounter::kHomeLookups);
    m.flat_lookups += c.get(WorkerCounter::kFlatLookups);
    m.trie_lookups += c.get(WorkerCounter::kTrieLookups);
    m.flat_bytes += worker->flat_bytes.load(std::memory_order_relaxed);
    m.dred_lookups += c.get(WorkerCounter::kDredLookups);
    m.dred_hits += c.get(WorkerCounter::kDredHits);
    m.miss_returns += c.get(WorkerCounter::kMissReturns);
    m.fills_sent += c.get(WorkerCounter::kFillsSent);
    m.fills_applied += c.get(WorkerCounter::kFillsApplied);
    m.fills_dropped_full += c.get(WorkerCounter::kFillsDroppedFull);
    m.fills_dropped_stale += c.get(WorkerCounter::kFillsDroppedStale);
  }
  m.lookups_completed = client_counters_.get(ClientCounter::kLookupsCompleted);
  m.diverted = client_counters_.get(ClientCounter::kDiverted);
  m.backpressure_waits =
      client_counters_.get(ClientCounter::kBackpressureWaits);
  m.client_stalls = client_counters_.get(ClientCounter::kStalls);
  m.batches_aborted = client_counters_.get(ClientCounter::kBatchesAborted);
  m.updates_applied = updates_completed_.load(std::memory_order_relaxed);
  m.updates_rejected = updates_rejected_.load(std::memory_order_relaxed);
  m.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  m.batch_ops_raw = batch_ops_raw_.load(std::memory_order_relaxed);
  m.batch_ops_merged = batch_ops_merged_.load(std::memory_order_relaxed);
  m.batch_publishes = batch_publishes_.load(std::memory_order_relaxed);
  m.updates_submitted = updates_submitted_.load(std::memory_order_relaxed);
  m.updates_ingested = updates_ingested_.load(std::memory_order_relaxed);
  m.tables_published = tables_published_.load(std::memory_order_relaxed);
  m.tables_reclaimed = epoch_.reclaimed();
  m.tables_pending = epoch_.pending();
  m.rebalance_passes = rebalance_passes_.load(std::memory_order_relaxed);
  m.rebalance_steps = rebalance_steps_.load(std::memory_order_relaxed);
  m.entries_migrated = entries_migrated_.load(std::memory_order_relaxed);
  m.chip_occupancy = occupancy_snapshot();
  m.skew = RebalancePlanner::skew(m.chip_occupancy);
  return m;
}

obs::HistogramSnapshot LookupRuntime::worker_service_histogram(
    std::size_t worker) const {
  return workers_[worker]->service_hist.snapshot();
}

obs::HistogramSnapshot LookupRuntime::client_latency_histogram() const {
  return client_hist_.snapshot();
}

std::vector<obs::TtfTraceEntry> LookupRuntime::ttf_trace() const {
  return ttf_ring_.snapshot();
}

void LookupRuntime::export_metrics(obs::MetricsRegistry& registry) const {
  const RuntimeMetrics m = metrics();
  registry.set_counter("runtime.lookups_completed", m.lookups_completed);
  registry.set_counter("runtime.home_lookups", m.home_lookups);
  registry.set_counter("runtime.flat_lookups", m.flat_lookups);
  registry.set_counter("runtime.trie_lookups", m.trie_lookups);
  registry.set_gauge("runtime.flat_bytes",
                     static_cast<double>(m.flat_bytes));
  registry.set_counter("runtime.dred_lookups", m.dred_lookups);
  registry.set_counter("runtime.dred_hits", m.dred_hits);
  registry.set_counter("runtime.miss_returns", m.miss_returns);
  registry.set_counter("runtime.diverted", m.diverted);
  registry.set_counter("runtime.backpressure_waits", m.backpressure_waits);
  registry.set_counter("runtime.client_stalls", m.client_stalls);
  registry.set_counter("runtime.batches_aborted", m.batches_aborted);
  registry.set_counter("runtime.fills_sent", m.fills_sent);
  registry.set_counter("runtime.fills_applied", m.fills_applied);
  registry.set_counter("runtime.fills_dropped_full", m.fills_dropped_full);
  registry.set_counter("runtime.fills_dropped_stale", m.fills_dropped_stale);
  registry.set_counter("runtime.updates_applied", m.updates_applied);
  registry.set_counter("runtime.updates_rejected", m.updates_rejected);
  registry.set_counter("runtime.batches_applied", m.batches_applied);
  registry.set_counter("runtime.batch_ops_raw", m.batch_ops_raw);
  registry.set_counter("runtime.batch_ops_merged", m.batch_ops_merged);
  registry.set_counter("runtime.batch_publishes", m.batch_publishes);
  registry.set_counter("runtime.updates_submitted", m.updates_submitted);
  registry.set_counter("runtime.updates_ingested", m.updates_ingested);
  // Fraction of raw diff ops the group commits never paid for.
  registry.set_gauge("runtime.batch_coalesce_saving",
                     m.batch_ops_raw == 0
                         ? 0.0
                         : 1.0 - static_cast<double>(m.batch_ops_merged) /
                                     static_cast<double>(m.batch_ops_raw));
  registry.set_counter("runtime.tables_published", m.tables_published);
  registry.set_counter("runtime.tables_reclaimed", m.tables_reclaimed);
  registry.set_counter("runtime.tables_pending", m.tables_pending);
  registry.set_counter("runtime.rebalance_passes", m.rebalance_passes);
  registry.set_counter("runtime.rebalance_steps", m.rebalance_steps);
  registry.set_counter("runtime.entries_migrated", m.entries_migrated);
  registry.set_counter("runtime.chip_capacity", chip_capacity_);
  registry.set_gauge("runtime.dred_hit_rate", m.dred_hit_rate());
  registry.set_gauge("runtime.skew", m.skew);
  std::size_t occupied_max = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::string prefix = "runtime.worker" + std::to_string(i);
    registry.set_counter(prefix + ".jobs", m.per_worker_jobs[i]);
    registry.set_counter(prefix + ".occupancy", m.chip_occupancy[i]);
    occupied_max = std::max(occupied_max, m.chip_occupancy[i]);
    registry.add_histogram(prefix + ".service_ns",
                           workers_[i]->service_hist.snapshot());
  }
  // Remaining growth headroom of the fullest chip, as a fraction of the
  // enforced capacity — the overflow early-warning gauge.
  registry.set_gauge(
      "runtime.headroom_remaining",
      chip_capacity_ == 0
          ? 0.0
          : 1.0 - static_cast<double>(occupied_max) /
                      static_cast<double>(chip_capacity_));
  registry.add_histogram("runtime.client.latency_ns", client_hist_.snapshot());
  registry.add_histogram("runtime.batch_apply_ns",
                         batch_apply_hist_.snapshot());
  registry.add_histogram("runtime.rebalance_ns", rebalance_hist_.snapshot());
  registry.add_histogram("runtime.flat_rebuild_ns",
                         flat_rebuild_hist_.snapshot());
  registry.add_ttf_trace("runtime.ttf", ttf_ring_.snapshot());
}

}  // namespace clue::runtime
