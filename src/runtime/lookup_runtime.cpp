#include "runtime/lookup_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "engine/dispatch_policy.hpp"
#include "partition/partition.hpp"

namespace clue::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

LookupRuntime::LookupRuntime(const trie::BinaryTrie& fib,
                             const RuntimeConfig& config)
    : config_(config),
      fib_(fib),
      epoch_(config.worker_count == 0 ? 1 : config.worker_count),
      ttf_ring_(config.ttf_trace_depth) {
  if (config.worker_count == 0) {
    throw std::invalid_argument("LookupRuntime: need at least one worker");
  }
  if (config.fifo_depth == 0) {
    throw std::invalid_argument("LookupRuntime: fifo_depth must be positive");
  }
  if (config.latency_sample_every &
      (config.latency_sample_every - 1)) {
    throw std::invalid_argument(
        "LookupRuntime: latency_sample_every must be a power of two or 0");
  }
  sample_enabled_ = config.latency_sample_every > 0;
  sample_mask_ = sample_enabled_ ? config.latency_sample_every - 1 : 0;
  dred_enabled_ = config.dred_capacity > 0 && config.worker_count > 1;

  const auto table = fib_.compressed().routes();
  const auto partitions =
      partition::even_partition(table, config.worker_count);
  boundaries_ =
      partition::even_partition_boundaries(table, config.worker_count);
  std::vector<std::size_t> identity(config.worker_count);
  for (std::size_t i = 0; i < config.worker_count; ++i) identity[i] = i;
  indexing_ =
      std::make_unique<engine::IndexingLogic>(boundaries_, identity);

  control_pushed_.assign(config.worker_count, 0);
  workers_.reserve(config.worker_count);
  for (std::size_t i = 0; i < config.worker_count; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->jobs = std::make_unique<SpscRing<Job>>(config.fifo_depth);
    worker->completions =
        std::make_unique<SpscRing<Completion>>(config.completion_depth);
    worker->control =
        std::make_unique<SpscRing<ControlMsg>>(config.control_depth);
    if (dred_enabled_) {
      worker->fills.resize(config.worker_count);
      for (std::size_t peer = 0; peer < config.worker_count; ++peer) {
        if (peer == i) continue;
        worker->fills[peer] =
            std::make_unique<SpscRing<FillMsg>>(config.fill_depth);
      }
      worker->dred =
          std::make_unique<engine::DredStore>(config.dred_capacity);
    }
    auto* initial = new ChipTable{};
    for (const auto& route : partitions.buckets[i].routes) {
      initial->table.insert(route.prefix, route.next_hop);
    }
    worker->active.store(initial, std::memory_order_seq_cst);
    workers_.push_back(std::move(worker));
  }
  for (std::size_t i = 0; i < config.worker_count; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

void LookupRuntime::stop() {
  stop_.store(true, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(stop_mutex_);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

LookupRuntime::~LookupRuntime() {
  stop();
  for (auto& worker : workers_) {
    delete worker->active.load(std::memory_order_relaxed);
  }
  // epoch_'s destructor frees any still-retired versions.
}

// ---------------------------------------------------------------- workers

void LookupRuntime::worker_main(std::size_t w) {
  Worker& me = *workers_[w];
  std::optional<Completion> pending;
  unsigned idle = 0;
  for (;;) {
    bool progress = drain_control(w);
    if (dred_enabled_) progress |= drain_fills(w);
    if (pending) {
      if (me.completions->try_push(*pending)) {
        pending.reset();
        progress = true;
      }
    } else {
      Job job;
      if (me.jobs->try_pop(job)) {
        const Completion done = process(w, job);
        if (!me.completions->try_push(done)) pending = done;
        progress = true;
      }
    }
    if (progress) {
      idle = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    ++idle;
    if (idle < 64) {
      cpu_relax();
    } else if (idle < 256) {
      std::this_thread::yield();
    } else {
      // Fully idle: back off so a single-core host can run the client.
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      idle = 256;
    }
  }
}

LookupRuntime::Completion LookupRuntime::process(std::size_t w,
                                                 const Job& job) {
  Worker& me = *workers_[w];
  // Service-time sampling: time one in every latency_sample_every jobs
  // so the histogram costs two clock reads per sample, not per lookup.
  // jobs_seen is worker-private, so the per-job cost is a plain
  // increment + mask rather than an atomic load.
  if (sample_enabled_ && (me.jobs_seen++ & sample_mask_) == 0) {
    const auto t0 = Clock::now();
    const Completion done = process_job(w, job);
    me.service_hist.record(elapsed_ns(t0));
    return done;
  }
  return process_job(w, job);
}

LookupRuntime::Completion LookupRuntime::process_job(std::size_t w,
                                                     const Job& job) {
  Worker& me = *workers_[w];
  me.counters.add(WorkerCounter::kJobs);
  if (job.dred_only) {
    me.counters.add(WorkerCounter::kDredLookups);
    const auto hop = me.dred->lookup(job.address);
    if (hop) {
      me.counters.add(WorkerCounter::kDredHits);
      return Completion{job.index, *hop, false};
    }
    // Miss: the client re-enqueues at the home chip (the runtime's
    // version of the engine's beyond-FIFO-bound return acceptance).
    me.counters.add(WorkerCounter::kMissReturns);
    return Completion{job.index, netbase::kNoRoute, true};
  }
  me.counters.add(WorkerCounter::kHomeLookups);
  std::optional<Route> matched;
  std::uint64_t version = 0;
  {
    // Snapshot discipline: pin the epoch, then load the pointer. The
    // table stays alive until this guard's slot passes the retire epoch.
    EpochDomain::Guard guard(epoch_, w);
    const ChipTable* table = me.active.load(std::memory_order_seq_cst);
    matched = table->table.lookup_route(job.address);
    version = table->version;
  }
  if (!matched) return Completion{job.index, netbase::kNoRoute, false};
  if (dred_enabled_) send_fills(w, *matched, version);
  return Completion{job.index, matched->next_hop, false};
}

bool LookupRuntime::drain_control(std::size_t w) {
  Worker& me = *workers_[w];
  ControlMsg msg;
  bool any = false;
  while (me.control->try_pop(msg)) {
    any = true;
    if (me.dred) {
      if (msg.kind == ControlMsg::Kind::kErase) {
        me.dred->erase(msg.route.prefix);
      } else {
        // fix(): rewrite in place without promoting the entry in LRU
        // order — a sync message is not a reuse.
        me.dred->fix(msg.route);
      }
    }
    me.control_applied.fetch_add(1, std::memory_order_release);
  }
  return any;
}

bool LookupRuntime::drain_fills(std::size_t w) {
  Worker& me = *workers_[w];
  bool any = false;
  FillMsg msg;
  for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
    if (peer == w) continue;
    while (me.fills[peer]->try_pop(msg)) {
      any = true;
      // Staleness guard: if the home chip republished since this fill
      // was produced, the route may no longer exist — drop rather than
      // poison the cache (a fresh hit will re-fill).
      const std::uint64_t current =
          workers_[msg.home]->published_version.load(
              std::memory_order_acquire);
      if (msg.version < current) {
        me.counters.add(WorkerCounter::kFillsDroppedStale);
        continue;
      }
      me.dred->insert(msg.route);
      me.counters.add(WorkerCounter::kFillsApplied);
    }
  }
  return any;
}

void LookupRuntime::send_fills(std::size_t w, const Route& matched,
                               std::uint64_t version) {
  Worker& me = *workers_[w];
  const FillMsg msg{matched, version, static_cast<std::uint32_t>(w)};
  for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
    if (!engine::dred_may_cache(peer, w)) continue;  // exclusion rule
    if (workers_[peer]->fills[w]->try_push(msg)) {
      me.counters.add(WorkerCounter::kFillsSent);
    } else {
      me.counters.add(WorkerCounter::kFillsDroppedFull);
    }
  }
}

// ----------------------------------------------------------------- client

bool LookupRuntime::try_submit(Ipv4Address address, std::uint32_t index) {
  const std::size_t home = indexing_->tcam_of(address);
  if (workers_[home]->jobs->try_push(Job{address, index, false})) {
    return true;
  }
  if (!dred_enabled_) return false;  // nowhere useful to divert
  std::vector<std::size_t> occupancy(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    occupancy[i] = workers_[i]->jobs->size_approx();
  }
  const auto decision =
      engine::choose_queue(home, occupancy, config_.fifo_depth);
  switch (decision.action) {
    case engine::DispatchDecision::Action::kHome:
      // The home ring drained between our push and the scan; retry it.
      return workers_[home]->jobs->try_push(Job{address, index, false});
    case engine::DispatchDecision::Action::kDivert:
      if (workers_[decision.chip]->jobs->try_push(
              Job{address, index, true})) {
        client_counters_.add(ClientCounter::kDiverted);
        return true;
      }
      return false;
    case engine::DispatchDecision::Action::kReject:
      return false;
  }
  return false;
}

std::vector<NextHop> LookupRuntime::lookup_batch(
    std::span<const Ipv4Address> addresses,
    std::vector<double>* latency_ns) {
  std::vector<NextHop> results(addresses.size(), netbase::kNoRoute);
  std::vector<Clock::time_point> submitted;
  if (latency_ns) {
    latency_ns->assign(addresses.size(), 0.0);
    submitted.resize(addresses.size());
  }
  std::vector<Job> returns;  // DRed misses awaiting home-ring room
  std::size_t next = 0;
  std::size_t outstanding = 0;
  unsigned idle = 0;
  // No-progress episodes longer than this many spins count as a stall in
  // the metrics (workers wedged, descheduled, or the runtime stopping).
  constexpr unsigned kStallSpins = 10'000;
  bool stall_recorded = false;
  while (next < addresses.size() || outstanding > 0) {
    bool progress = false;
    // Returned misses first: they are the oldest jobs in flight.
    for (std::size_t i = 0; i < returns.size();) {
      const std::size_t home = indexing_->tcam_of(returns[i].address);
      if (workers_[home]->jobs->try_push(returns[i])) {
        returns[i] = returns.back();
        returns.pop_back();
        progress = true;
      } else {
        ++i;
      }
    }
    // Fresh submissions until backpressure.
    while (next < addresses.size()) {
      if (!try_submit(addresses[next], static_cast<std::uint32_t>(next))) {
        client_counters_.add(ClientCounter::kBackpressureWaits);
        break;
      }
      if (latency_ns) submitted[next] = Clock::now();
      ++next;
      ++outstanding;
      progress = true;
    }
    // Completion drain + reorder stage: results land at their
    // submission index regardless of which chip answered when.
    Completion done;
    for (auto& worker : workers_) {
      while (worker->completions->try_pop(done)) {
        progress = true;
        if (done.miss_return) {
          returns.push_back(Job{addresses[done.index], done.index, false});
        } else {
          results[done.index] = done.hop;
          if (latency_ns) {
            const double ns = elapsed_ns(submitted[done.index]);
            (*latency_ns)[done.index] = ns;
            // Same 1-in-N sampling as worker service timing: on a
            // loaded host the client shares cycles with the workers,
            // so per-completion recording taxes lookup throughput.
            if (sample_enabled_ &&
                (client_samples_seen_++ & sample_mask_) == 0) {
              client_hist_.record(ns);
            }
          }
          --outstanding;
        }
      }
    }
    if (progress) {
      idle = 0;
      stall_recorded = false;
      continue;
    }
    // Bounded spin: a stopping runtime (workers joined, rings wedged)
    // must unblock the client instead of yielding forever. Unanswered
    // addresses keep their kNoRoute default.
    if (stop_.load(std::memory_order_acquire)) {
      client_counters_.add(ClientCounter::kBatchesAborted);
      break;
    }
    ++idle;
    if (idle >= kStallSpins && !stall_recorded) {
      client_counters_.add(ClientCounter::kStalls);
      stall_recorded = true;
    }
    if (idle < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  client_counters_.add(ClientCounter::kLookupsCompleted, addresses.size());
  return results;
}

NextHop LookupRuntime::lookup(Ipv4Address address) {
  const Ipv4Address one[1] = {address};
  return lookup_batch(std::span<const Ipv4Address>(one, 1)).front();
}

// ---------------------------------------------------------------- control

update::TtfSample LookupRuntime::apply(const workload::UpdateMsg& message) {
  update::TtfSample sample;
  const auto t0 = Clock::now();
  const auto ops =
      message.kind == workload::UpdateKind::kAnnounce
          ? fib_.announce(message.prefix, message.next_hop)
          : fib_.withdraw(message.prefix);
  sample.ttf1_ns = elapsed_ns(t0);
  if (ops.empty()) return sample;

  obs::TtfTraceEntry trace;
  trace.seq = updates_started_.fetch_add(1, std::memory_order_seq_cst) + 1;
  trace.ttf1_ns = sample.ttf1_ns;
  // Queue-depth sample: how hard the data plane was running when this
  // update cut in (correlates TTF tails with lookup pressure).
  std::size_t depth_sum = 0;
  for (const auto& worker : workers_) {
    const std::size_t depth = worker->jobs->size_approx();
    depth_sum += depth;
    trace.queue_depth_max =
        std::max(trace.queue_depth_max, static_cast<std::uint32_t>(depth));
  }
  trace.queue_depth_mean = static_cast<double>(depth_sum) /
                           static_cast<double>(workers_.size());

  // --- TTF2: shadow copy, piece ops, one pointer swap per chip. ------
  const auto t1 = Clock::now();
  std::vector<std::vector<std::pair<onrtc::FibOpKind, Route>>> per_chip(
      workers_.size());
  std::vector<ControlMsg> broadcast;
  for (const auto& op : ops) {
    for (const auto& [chip, piece] :
         engine::split_at_boundaries(op.route.prefix, boundaries_)) {
      per_chip[chip].emplace_back(op.kind,
                                  Route{piece, op.route.next_hop});
      // DRed synchronisation (§IV-C): deletes and modifies broadcast to
      // every DRed; inserts need nothing.
      if (op.kind != onrtc::FibOpKind::kInsert) {
        broadcast.push_back(
            ControlMsg{op.kind == onrtc::FibOpKind::kDelete
                           ? ControlMsg::Kind::kErase
                           : ControlMsg::Kind::kFix,
                       Route{piece, op.route.next_hop}});
      }
    }
  }
  for (std::size_t chip = 0; chip < workers_.size(); ++chip) {
    if (per_chip[chip].empty()) continue;
    ++trace.chips_touched;
    Worker& worker = *workers_[chip];
    // The control thread is the only writer, so reading the active
    // version without a guard is safe; workers only ever read it.
    ChipTable* old = worker.active.load(std::memory_order_relaxed);
    auto* next = new ChipTable{old->table, old->version + 1};
    for (const auto& [kind, route] : per_chip[chip]) {
      if (kind == onrtc::FibOpKind::kDelete) {
        next->table.erase(route.prefix);
      } else {
        next->table.insert(route.prefix, route.next_hop);
      }
    }
    worker.active.store(next, std::memory_order_seq_cst);
    worker.published_version.store(next->version,
                                   std::memory_order_seq_cst);
    epoch_.retire(old);
    tables_published_.fetch_add(1, std::memory_order_relaxed);
  }
  sample.ttf2_ns = elapsed_ns(t1);

  // --- TTF3: DRed erase/fix broadcast, wait for worker acks. ---------
  const auto t2 = Clock::now();
  if (dred_enabled_ && !broadcast.empty()) {
    trace.control_msgs =
        static_cast<std::uint32_t>(broadcast.size() * workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& worker = *workers_[i];
      for (const auto& msg : broadcast) {
        while (!worker.control->try_push(msg)) std::this_thread::yield();
        ++control_pushed_[i];
      }
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& worker = *workers_[i];
      unsigned spins = 0;
      while (worker.control_applied.load(std::memory_order_acquire) <
             control_pushed_[i]) {
        if (++spins < 64) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }
  sample.ttf3_ns = elapsed_ns(t2);

  updates_completed_.fetch_add(1, std::memory_order_seq_cst);
  epoch_.reclaim();
  trace.ttf2_ns = sample.ttf2_ns;
  trace.ttf3_ns = sample.ttf3_ns;
  ttf_ring_.record(trace);
  return sample;
}

// ---------------------------------------------------------------- metrics

RuntimeMetrics LookupRuntime::metrics() const {
  RuntimeMetrics m;
  m.per_worker_jobs.reserve(workers_.size());
  for (const auto& worker : workers_) {
    const auto& c = worker->counters;
    m.per_worker_jobs.push_back(c.get(WorkerCounter::kJobs));
    m.home_lookups += c.get(WorkerCounter::kHomeLookups);
    m.dred_lookups += c.get(WorkerCounter::kDredLookups);
    m.dred_hits += c.get(WorkerCounter::kDredHits);
    m.miss_returns += c.get(WorkerCounter::kMissReturns);
    m.fills_sent += c.get(WorkerCounter::kFillsSent);
    m.fills_applied += c.get(WorkerCounter::kFillsApplied);
    m.fills_dropped_full += c.get(WorkerCounter::kFillsDroppedFull);
    m.fills_dropped_stale += c.get(WorkerCounter::kFillsDroppedStale);
  }
  m.lookups_completed = client_counters_.get(ClientCounter::kLookupsCompleted);
  m.diverted = client_counters_.get(ClientCounter::kDiverted);
  m.backpressure_waits =
      client_counters_.get(ClientCounter::kBackpressureWaits);
  m.client_stalls = client_counters_.get(ClientCounter::kStalls);
  m.batches_aborted = client_counters_.get(ClientCounter::kBatchesAborted);
  m.updates_applied = updates_completed_.load(std::memory_order_relaxed);
  m.tables_published = tables_published_.load(std::memory_order_relaxed);
  m.tables_reclaimed = epoch_.reclaimed();
  m.tables_pending = epoch_.pending();
  return m;
}

obs::HistogramSnapshot LookupRuntime::worker_service_histogram(
    std::size_t worker) const {
  return workers_[worker]->service_hist.snapshot();
}

obs::HistogramSnapshot LookupRuntime::client_latency_histogram() const {
  return client_hist_.snapshot();
}

std::vector<obs::TtfTraceEntry> LookupRuntime::ttf_trace() const {
  return ttf_ring_.snapshot();
}

void LookupRuntime::export_metrics(obs::MetricsRegistry& registry) const {
  const RuntimeMetrics m = metrics();
  registry.set_counter("runtime.lookups_completed", m.lookups_completed);
  registry.set_counter("runtime.home_lookups", m.home_lookups);
  registry.set_counter("runtime.dred_lookups", m.dred_lookups);
  registry.set_counter("runtime.dred_hits", m.dred_hits);
  registry.set_counter("runtime.miss_returns", m.miss_returns);
  registry.set_counter("runtime.diverted", m.diverted);
  registry.set_counter("runtime.backpressure_waits", m.backpressure_waits);
  registry.set_counter("runtime.client_stalls", m.client_stalls);
  registry.set_counter("runtime.batches_aborted", m.batches_aborted);
  registry.set_counter("runtime.fills_sent", m.fills_sent);
  registry.set_counter("runtime.fills_applied", m.fills_applied);
  registry.set_counter("runtime.fills_dropped_full", m.fills_dropped_full);
  registry.set_counter("runtime.fills_dropped_stale", m.fills_dropped_stale);
  registry.set_counter("runtime.updates_applied", m.updates_applied);
  registry.set_counter("runtime.tables_published", m.tables_published);
  registry.set_counter("runtime.tables_reclaimed", m.tables_reclaimed);
  registry.set_counter("runtime.tables_pending", m.tables_pending);
  registry.set_gauge("runtime.dred_hit_rate", m.dred_hit_rate());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::string prefix = "runtime.worker" + std::to_string(i);
    registry.set_counter(prefix + ".jobs", m.per_worker_jobs[i]);
    registry.add_histogram(prefix + ".service_ns",
                           workers_[i]->service_hist.snapshot());
  }
  registry.add_histogram("runtime.client.latency_ns", client_hist_.snapshot());
  registry.add_ttf_trace("runtime.ttf", ttf_ring_.snapshot());
}

}  // namespace clue::runtime
