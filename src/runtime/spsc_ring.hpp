// SpscRing — a bounded single-producer/single-consumer ring buffer.
//
// This is the paper's per-chip home FIFO made real: in the clock-stepped
// ParallelEngine the FIFO is a std::deque ticked by the simulation loop;
// in runtime::LookupRuntime it is this ring, crossed by two live threads
// (one submitter, one chip worker) without locks.
//
// Layout discipline:
//   * head_ (consumer cursor) and tail_ (producer cursor) live on their
//     own cache lines so the two sides never false-share;
//   * each side keeps a *cached* copy of the other side's cursor and
//     re-reads the shared atomic only when the cached value would make
//     the ring look full/empty — the common-case push/pop touches one
//     shared line, not two;
//   * release/acquire pairs order the slot write against the cursor
//     bump: the consumer's acquire load of tail_ makes the producer's
//     slot writes visible, and vice versa for recycled slots.
//
// Capacity is rounded up to a power of two so the cursors can be
// free-running counters masked into slot indices.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace clue::runtime {

/// One side must be written by exactly one thread at a time; which
/// thread that is may change only across a synchronisation point (e.g.
/// thread join).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (caller decides whether
  /// to divert, retry, or drop — that policy lives outside the ring).
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Batched producer side: pushes up to `count` values from `values`,
  /// returning how many were accepted (0 when full). Partial pushes take
  /// the longest prefix that fits, so FIFO order is preserved; the
  /// cursor is bumped once per call, not per element.
  std::size_t try_push_n(T* values, std::size_t count) {
    if (count == 0) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity_ - (tail - cached_head_);
    if (free < count) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - cached_head_);
      if (free == 0) return 0;
    }
    const std::size_t n = count < free ? count : free;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(values[i]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Batched consumer side: pops up to `max_count` values into `out`,
  /// returning how many were taken (0 when empty). One acquire load and
  /// one cursor bump cover the whole batch.
  std::size_t try_pop_n(T* out, std::size_t max_count) {
    if (max_count == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = max_count < avail ? max_count : avail;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Occupancy estimate, callable from any thread. Exact only when both
  /// sides are quiescent; good enough for the idlest-queue heuristic.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: its cursor plus its cached view of the consumer.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  // Consumer-owned line: its cursor plus its cached view of the producer.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace clue::runtime
