// LookupRuntime — the concurrent data-plane runtime.
//
// Where engine::ParallelEngine *simulates* the paper's Fig. 1 with a
// clock loop, this subsystem *runs* it: one OS thread per TCAM chip,
// each fed through a bounded lock-free SPSC ring (the home FIFO made
// real), with the §III-B dispatch rule applied by the submitting client
// and BGP updates landing concurrently with lookups.
//
// Thread roles (externally, at most one thread per role at a time; the
// client and control roles may be different threads running
// concurrently):
//
//   client thread   lookup_batch() — dispatches jobs to the per-chip
//                   job rings (home first; home full -> idlest other
//                   chip for a DRed-only lookup), drains completion
//                   rings, re-enqueues DRed misses to the home ring,
//                   and reorders results back into submission order.
//   control thread  apply() — runs the ONRTC diff, builds a shadow
//                   copy of each affected chip's table, publishes it
//                   with one atomic pointer swap, broadcasts DRed
//                   erase/fix messages, and waits for the workers to
//                   ack them (so TTF2/TTF3 are measured end to end).
//                   It also owns the boundary rebalancer: per-chip
//                   occupancy is re-checked after every apply(), and
//                   when skew or headroom pressure crosses the
//                   configured watermark (RebalanceConfig), runs of
//                   boundary-adjacent entries migrate between
//                   neighboring chips — receiver table published
//                   first, then the boundary swap (epoch-
//                   synchronized), then a donor fence and shrink — so
//                   lookups stay correct at every intermediate epoch.
//   chip workers    pop jobs, look up against the current table
//                   snapshot under an epoch guard, serve DRed-only
//                   lookups from their private DRed, exchange DRed
//                   fills over per-pair SPSC rings.
//
// Snapshot/epoch invariant: a worker never dereferences a chip table
// without pinning its epoch slot first, and the control plane never
// frees a retired table until every slot has passed the retire epoch —
// lookups never block on updates, updates never corrupt lookups.
//
// All cross-thread rings are strictly single-producer single-consumer:
//   client  -> worker i   job ring
//   worker i-> client     completion ring
//   control -> worker i   control ring (DRed erase/fix)
//   worker i-> worker j   fill ring (DRed cache fills, i != j)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/dred.hpp"
#include "engine/flat_table.hpp"
#include "engine/indexing_logic.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/ttf_trace.hpp"
#include "onrtc/compressed_fib.hpp"
#include "runtime/epoch.hpp"
#include "runtime/rebalancer.hpp"
#include "runtime/spsc_ring.hpp"
#include "trie/binary_trie.hpp"
#include "update/cost_model.hpp"
#include "update/group_commit.hpp"
#include "workload/update_gen.hpp"

namespace clue::runtime {

using netbase::Ipv4Address;
using netbase::NextHop;
using netbase::Prefix;
using netbase::Route;

struct RuntimeConfig {
  std::size_t worker_count = 4;    ///< one thread per simulated chip
  std::size_t fifo_depth = 256;    ///< per-chip job ring (the home FIFO)
  std::size_t dred_capacity = 1024;  ///< per chip; 0 disables DRed+diversion
  std::size_t completion_depth = 1024;
  std::size_t control_depth = 4096;
  std::size_t fill_depth = 256;
  /// Retained apply() traces (TTF spans + queue depths); 0 disables.
  std::size_t ttf_trace_depth = 1024;
  /// Modeled per-chip TCAM capacity enforced by apply(): an update whose
  /// admission would push a chip past it triggers an emergency rebalance
  /// and, failing that, a clean TcamFullError rejection. 0 auto-sizes to
  /// (initial table / worker_count + 1) * (1 + chip_headroom) + 8192.
  std::size_t chip_capacity = 0;
  /// Fraction of growth headroom the auto-sized chip capacity reserves
  /// above the initial even share (ignored when chip_capacity is set).
  double chip_headroom = 1.0;
  /// Online boundary-rebalancer knobs (watermarks, step bounds).
  RebalanceConfig rebalance;
  /// Workers time one in every `latency_sample_every` jobs into their
  /// service-time histogram, and the client records one in every
  /// `latency_sample_every` completion latencies (power of two; 0
  /// disables sampling). The default costs two clock reads per 64
  /// lookups — noise.
  std::size_t latency_sample_every = 64;
  /// Publish a FlatLookupTable image beside every chip-table version and
  /// answer home lookups from it (the trie stays authoritative for
  /// updates, range queries, and as the fallback when a next hop cannot
  /// be encoded). Off = the pre-flat trie-walk hot path, kept for A/B.
  bool flat_lookup = true;
  /// Stride / chunk geometry of the published flat images.
  engine::FlatTableConfig flat_table;
  /// The flat path yields a bare next hop, not the stored route shape a
  /// DRed fill needs, so workers harvest fills by re-walking the trie on
  /// one in every `fill_sample_every` home hits (power of two; 0
  /// disables fills). Applied on the trie path too, so flat on/off A/B
  /// compares lookup cost, not fill policy.
  std::size_t fill_sample_every = 8;
  /// Async control-plane ingress: > 0 starts an updater thread fed by a
  /// bounded SPSC ring of this depth; submit() enqueues update messages
  /// and the updater drains them through apply_batch() in adaptive
  /// windows. 0 (the default) disables the thread — apply()/apply_batch()
  /// stay direct calls from the external control role. While the ingress
  /// is enabled it *is* the control role: do not call apply(),
  /// apply_batch(), or rebalance_now() from outside.
  std::size_t update_ring_depth = 0;
  /// Largest batch one updater pass hands to apply_batch().
  std::size_t update_batch_max = 256;
  /// Upper bound of the adaptive batch window: after a partial pop the
  /// updater keeps topping the batch up for at most this long before
  /// committing. The live window halves whenever a batch fills without
  /// waiting (arrival rate is high; commit early, stay low-latency) and
  /// doubles after a mostly-empty batch, clamped to [1us, this bound].
  double update_window_us = 128.0;
};

/// Per-worker counter names; one obs::CounterBlock per chip worker.
enum class WorkerCounter : std::size_t {
  kJobs,
  kHomeLookups,
  kFlatLookups,  ///< home lookups answered from the flat image
  kTrieLookups,  ///< home lookups that walked the trie (flat off/fallback)
  kDredLookups,
  kDredHits,
  kMissReturns,
  kFillsSent,
  kFillsApplied,
  kFillsDroppedFull,
  kFillsDroppedStale,
  kCount,
};

/// Client-role counter names (one block, owned by the submitting thread).
enum class ClientCounter : std::size_t {
  kLookupsCompleted,
  kDiverted,
  kBackpressureWaits,
  kStalls,          ///< no-progress episodes that exceeded the spin bound
  kBatchesAborted,  ///< lookup_batch unblocked by stop() mid-flight
  kCount,
};

/// Aggregated counters; a consistent-enough snapshot (relaxed reads).
struct RuntimeMetrics {
  std::uint64_t lookups_completed = 0;
  std::uint64_t home_lookups = 0;
  std::uint64_t flat_lookups = 0;  ///< home lookups served by the flat image
  std::uint64_t trie_lookups = 0;  ///< home lookups that walked the trie
  std::uint64_t flat_bytes = 0;    ///< heap bytes of the active flat images
  std::uint64_t dred_lookups = 0;
  std::uint64_t dred_hits = 0;
  std::uint64_t miss_returns = 0;  ///< DRed misses re-enqueued home
  std::uint64_t diverted = 0;      ///< jobs sent to a non-home chip
  std::uint64_t backpressure_waits = 0;  ///< all queues full -> client spun
  std::uint64_t client_stalls = 0;   ///< spin-bound exceeded with no progress
  std::uint64_t batches_aborted = 0; ///< batches unblocked by stop()
  std::uint64_t fills_sent = 0;
  std::uint64_t fills_applied = 0;
  std::uint64_t fills_dropped_full = 0;   ///< fill ring full (best effort)
  std::uint64_t fills_dropped_stale = 0;  ///< home table moved on: discarded
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_rejected = 0;  ///< TcamFullError after rollback
  std::uint64_t batches_applied = 0;   ///< apply_batch() calls that published
  std::uint64_t batch_ops_raw = 0;     ///< diff ops entering coalescing
  std::uint64_t batch_ops_merged = 0;  ///< diff ops surviving coalescing
  /// Chip tables published by batch commits; batch_publishes /
  /// batches_applied is the publish-amortisation ratio (affected chips
  /// per batch — exactly one publish each).
  std::uint64_t batch_publishes = 0;
  std::uint64_t updates_submitted = 0;  ///< accepted by submit()
  std::uint64_t updates_ingested = 0;   ///< drained by the updater thread
  /// RCU versions published: chip tables plus indexing republishes
  /// (each is one retire in the shared epoch domain).
  std::uint64_t tables_published = 0;
  std::uint64_t tables_reclaimed = 0;
  std::uint64_t tables_pending = 0;  ///< retired, not yet reclaimed
  std::uint64_t rebalance_passes = 0;
  std::uint64_t rebalance_steps = 0;    ///< individual chip migrations
  std::uint64_t entries_migrated = 0;   ///< entries moved across boundaries
  std::vector<std::uint64_t> per_worker_jobs;
  std::vector<std::size_t> chip_occupancy;  ///< entries stored per chip
  double skew = 1.0;  ///< max/min chip occupancy (empty chips count as 1)

  double dred_hit_rate() const {
    return dred_lookups ? static_cast<double>(dred_hits) /
                              static_cast<double>(dred_lookups)
                        : 0.0;
  }
};

class LookupRuntime {
 public:
  /// Compresses `fib` (ONRTC), splits it into `worker_count` even range
  /// partitions, and starts the worker threads.
  LookupRuntime(const trie::BinaryTrie& fib, const RuntimeConfig& config);
  ~LookupRuntime();

  LookupRuntime(const LookupRuntime&) = delete;
  LookupRuntime& operator=(const LookupRuntime&) = delete;

  /// Client role. Dispatches every address, waits for all completions,
  /// and returns next hops in submission order (the reorder stage).
  /// When `latency_ns` is non-null it is filled with one per-address
  /// submit-to-completion latency sample.
  std::vector<NextHop> lookup_batch(std::span<const Ipv4Address> addresses,
                                    std::vector<double>* latency_ns = nullptr);

  /// Convenience single lookup (a batch of one).
  NextHop lookup(Ipv4Address address);

  /// Control role. Applies one BGP update end to end: ONRTC diff
  /// (TTF1), shadow-copy + atomic publish of affected chip tables
  /// (TTF2), DRed erase/fix broadcast + worker ack (TTF3). Returns wall
  /// -clock nanoseconds per stage; lookups proceed concurrently.
  ///
  /// Admission control: an update that would push a chip past
  /// chip_capacity() first triggers an emergency rebalance; if even a
  /// balanced layout cannot absorb it, the trie diff is rolled back (no
  /// chip table or DRed is touched — trie/TCAM/DRed stay mutually
  /// consistent), updates_rejected is counted, and tcam::TcamFullError
  /// is thrown. After a successful apply, a skew- or headroom-watermark
  /// crossing runs an ordinary rebalance pass before returning.
  update::TtfSample apply(const workload::UpdateMsg& message);

  /// Control role. Group commit: applies a whole burst of updates as one
  /// table transition per affected chip. All ONRTC diffs run first
  /// (TTF1), the combined diff-op stream is coalesced to its net effect
  /// (insert+delete pairs cancel, modifies last-writer-win), each
  /// affected chip's shadow is built and published *once* — one flat
  /// image rebuild and one epoch retire per chip per batch, closed by a
  /// single grace barrier — and all DRed erase/fix messages go out as
  /// one batched sweep per worker ring (TTF3).
  ///
  /// Admission stays exact at batch granularity: on overflow one
  /// emergency rebalance runs, then messages roll back from the *end* of
  /// the batch until the remainder fits. Never throws: the rejected
  /// suffix is reported in the returned sample (and updates_rejected)
  /// and trie/chips/DReds stay mutually consistent. apply() is exactly
  /// apply_batch() of one message plus a throw when that message was
  /// rejected.
  update::BatchTtfSample apply_batch(
      std::span<const workload::UpdateMsg> messages);

  /// Async ingress (enabled by RuntimeConfig::update_ring_depth > 0).
  /// Enqueues one update for the updater thread; single producer. Blocks
  /// (spins) while the ring is full; returns false only when the ingress
  /// is disabled or the runtime stopped before the message was accepted.
  bool submit(const workload::UpdateMsg& message);
  /// Waits until every submit()-accepted update has been applied by the
  /// updater thread (or the runtime stopped). Call from the submitting
  /// thread after its last submit().
  void flush_updates();

  /// Control role. Forces one rebalance pass regardless of watermarks;
  /// returns the number of migrations executed (0 when already even).
  std::size_t rebalance_now();

  /// Entries currently stored per chip (updated by the control role on
  /// every publish; readable from any thread).
  std::vector<std::size_t> chip_occupancy() const;
  /// Current max/min chip occupancy ratio (empty chips count as 1).
  double skew() const;
  /// The enforced per-chip capacity (explicit or auto-sized).
  std::size_t chip_capacity() const { return chip_capacity_; }

  /// Stops the runtime: workers drain and exit, and any in-flight
  /// lookup_batch (even on another thread) unblocks, returning kNoRoute
  /// for addresses it never got an answer for (counted in
  /// RuntimeMetrics::batches_aborted). Idempotent; the destructor calls
  /// it. After stop(), lookup_batch returns immediately and apply() must
  /// not be called.
  void stop();
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Frees retired table versions all workers have quiesced past.
  std::size_t reclaim() { return epoch_.reclaim(); }

  /// Updates fully visible to the data plane (tables published AND
  /// DReds synced). Monotonic; bumped at the end of apply() and, by the
  /// number of applied messages, at the end of apply_batch() — a batch
  /// exposes only its boundary states, so both counters move across it
  /// without any intermediate value becoming observable.
  std::uint64_t updates_completed() const {
    return updates_completed_.load(std::memory_order_seq_cst);
  }
  /// Updates whose publication has begun. Any lookup answer ever
  /// produced reflects a table state in [updates_completed() sampled
  /// before submit, updates_started() sampled after completion].
  std::uint64_t updates_started() const {
    return updates_started_.load(std::memory_order_seq_cst);
  }

  const onrtc::CompressedFib& fib() const { return fib_; }
  /// The current indexing function. Rebalancing republishes it; only
  /// call this when no rebalance can run concurrently (tests,
  /// post-mortems) — the client role reads it under an epoch pin.
  const engine::IndexingLogic& indexing() const {
    return *indexing_.load(std::memory_order_acquire);
  }
  /// Range-partition boundaries (ascending, worker_count-1 of them).
  /// Control-role state: rebalancing rewrites it, so read only from the
  /// control thread or while updates are quiescent.
  const std::vector<Ipv4Address>& boundaries() const { return boundaries_; }
  std::size_t worker_count() const { return workers_.size(); }
  const RuntimeConfig& config() const { return config_; }

  RuntimeMetrics metrics() const;

  // ---- observability exports (all off the hot path) ----

  /// Fills `registry` with every runtime counter, per-worker service-time
  /// histograms ("runtime.worker<i>.service_ns"), the client latency
  /// histogram ("runtime.client.latency_ns", populated when lookup_batch
  /// is called with latency sampling), and the TTF trace ("runtime.ttf").
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Per-worker service-time histogram (sampled 1-in-
  /// `latency_sample_every` jobs).
  obs::HistogramSnapshot worker_service_histogram(std::size_t worker) const;
  /// Submit-to-completion latencies recorded by lookup_batch when the
  /// caller asks for latency samples (sampled 1-in-
  /// `latency_sample_every` completions).
  obs::HistogramSnapshot client_latency_histogram() const;
  /// The most recent apply() traces, oldest first.
  std::vector<obs::TtfTraceEntry> ttf_trace() const;

  /// Worker `i`'s DRed store, or nullptr when DRed is disabled. Workers
  /// mutate their DReds concurrently: only read this after stop() or
  /// while the data plane is otherwise quiescent (tests, post-mortems).
  const engine::DredStore* dred(std::size_t worker) const {
    return workers_[worker]->dred.get();
  }

 private:
  struct Job {
    Ipv4Address address{0};
    std::uint32_t index = 0;
    bool dred_only = false;
    /// Batch generation: an aborted batch can leave completions in the
    /// rings; the next batch must discard them instead of writing
    /// results[index] against a differently-sized vector.
    std::uint32_t gen = 0;
  };
  struct Completion {
    std::uint32_t index = 0;
    NextHop hop = netbase::kNoRoute;
    bool miss_return = false;
    std::uint32_t gen = 0;
  };
  struct ControlMsg {
    /// kErase/kFix sync a DRed entry; kFence makes the worker drain its
    /// own job ring (bounded by its capacity) before acking, so the
    /// control plane knows every job submitted under a since-retired
    /// indexing has been answered from the still-fat donor table.
    enum class Kind : std::uint8_t { kErase, kFix, kFence };
    Kind kind = Kind::kErase;
    Route route;
  };
  struct FillMsg {
    Route route;
    std::uint64_t version = 0;
    std::uint32_t home = 0;
  };

  /// One immutable published FIB version for one chip. `flat` is the
  /// direct-index image workers answer from when present; null means
  /// this version falls back to the trie (flat path disabled, or a next
  /// hop the flat encoding cannot hold).
  struct ChipTable {
    trie::BinaryTrie table;
    std::uint64_t version = 0;
    std::unique_ptr<const engine::FlatLookupTable> flat;
  };

  struct Worker {
    std::unique_ptr<SpscRing<Job>> jobs;
    std::unique_ptr<SpscRing<Completion>> completions;
    std::unique_ptr<SpscRing<ControlMsg>> control;
    /// fills[i]: ring produced by worker i, consumed by this worker.
    std::vector<std::unique_ptr<SpscRing<FillMsg>>> fills;
    std::atomic<ChipTable*> active{nullptr};
    std::atomic<std::uint64_t> published_version{0};
    std::atomic<std::uint64_t> control_applied{0};
    /// Entries in the active table; written by the control role at every
    /// publish, read by metrics/rebalance planning from any thread.
    std::atomic<std::size_t> occupancy{0};
    std::unique_ptr<engine::DredStore> dred;
    /// memory_bytes() of the active flat image (0 when null); written by
    /// the control role at publish, read by the metrics exporter.
    std::atomic<std::size_t> flat_bytes{0};
    obs::CounterBlock<WorkerCounter> counters;
    obs::LatencyHistogram service_hist;
    /// Worker-private job count for the sampling decision — plain (not
    /// atomic) because only the owning thread reads or writes it.
    std::uint64_t jobs_seen = 0;
    /// Worker-private home-hit count for fill-harvest sampling.
    std::uint64_t hits_seen = 0;
    std::thread thread;
  };

  void worker_main(std::size_t w);
  /// Pops up to kWorkerBatch jobs, pins the epoch once, prefetches the
  /// flat-table lines across the whole batch, then resolves in order.
  void process_batch(std::size_t w, const Job* jobs, std::size_t n,
                     std::vector<Completion>& out);
  /// Single-job path (fence drains): pins the epoch itself.
  Completion process(std::size_t w, const Job& job);
  /// Resolves one job against the already-pinned `table`, with 1-in-N
  /// service-time sampling.
  Completion resolve_timed(std::size_t w, const Job& job,
                           const ChipTable& table);
  Completion resolve_job(std::size_t w, const Job& job,
                         const ChipTable& table);
  bool drain_control(std::size_t w);
  bool drain_fills(std::size_t w);
  void send_fills(std::size_t w, const Route& matched, std::uint64_t version);
  /// kFence handler: answers every job currently in worker w's ring
  /// (bounded by ring capacity) against the active table.
  void drain_own_jobs(std::size_t w);

  /// Client-side dispatch of one job; false = all queues full.
  /// `indexing` is the epoch-pinned snapshot the caller loaded.
  bool try_submit(const engine::IndexingLogic& indexing, const Job& job);
  /// Home ring was full: §III-B fallback — retry home or divert to the
  /// idlest chip as a DRed-only job. Uses occupancy_scratch_.
  bool try_divert(std::size_t home, const Job& job);

  // ---- control-role internals (single control thread at a time) ----

  /// Swaps chip `chip` to `next` (version already bumped), retires the
  /// old version, refreshes occupancy/published_version.
  void publish_table(std::size_t chip, ChipTable* next);
  /// Publishes a new IndexingLogic for `boundaries` and waits out a
  /// grace period so no reader still uses the old one.
  void publish_indexing();
  /// Pushes one control message to worker `chip` (spin on a full ring).
  void push_control(std::size_t chip, const ControlMsg& msg);
  /// Batched variant: lands `count` messages with as few ring-cursor
  /// updates as the free space allows (spins between partial pushes).
  void push_control_n(std::size_t chip, ControlMsg* msgs, std::size_t count);
  /// Waits until worker `chip` acked everything pushed to it.
  void wait_control_ack(std::size_t chip);
  /// Executes one planned migration; returns entries moved.
  std::size_t migrate(const MigrationStep& step);
  /// Runs plan_step/migrate until even or bounded; returns steps run.
  std::size_t rebalance_pass();
  std::vector<std::size_t> occupancy_snapshot() const;
  /// Inverse of the `message` diff against the pre-update ground truth
  /// (`prior` = the exact route stored at message.prefix beforehand).
  void rollback_update(const workload::UpdateMsg& message,
                       const std::optional<NextHop>& prior);

  /// Builds the flat image for `next` (copy-on-write from `prev`'s image
  /// over the `dirty` prefixes when available, full build otherwise),
  /// records the build time, and returns it in nanoseconds. A table the
  /// flat encoding cannot hold leaves next.flat null (trie fallback).
  /// Control role only; 0 and no-op when flat_lookup is off.
  double attach_flat(ChipTable& next, const ChipTable* prev,
                     std::span<const Prefix> dirty);

  /// Updater-thread main loop: pops submitted updates in adaptive
  /// windows and runs them through apply_batch().
  void updater_main();

  RuntimeConfig config_;
  onrtc::CompressedFib fib_;
  std::vector<Ipv4Address> boundaries_;  // control-role state
  std::atomic<engine::IndexingLogic*> indexing_{nullptr};
  EpochDomain epoch_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool dred_enabled_ = false;
  std::size_t chip_capacity_ = 0;
  RebalancePlanner planner_;
  /// The client role's epoch slot (slot worker_count); pins the
  /// IndexingLogic snapshot for one dispatch pass.
  std::size_t client_slot_ = 0;
  /// Client-private batch generation; stamps jobs so completions from an
  /// aborted batch are discarded by the next one (plain, single writer).
  std::uint32_t batch_gen_ = 0;

  // Client-role scratch, reused across lookup_batch calls so the steady
  // state allocates nothing per batch (client is single-threaded by
  // contract). stage_[w] collects jobs homed to worker w for one
  // try_push_n; backlog_ holds jobs every ring rejected; returns_ holds
  // DRed misses awaiting home-ring room; submitted_ holds latency stamps.
  std::vector<std::vector<Job>> stage_;
  std::vector<Job> backlog_;
  std::vector<Job> returns_;
  std::vector<Completion> drain_scratch_;
  std::vector<std::size_t> occupancy_scratch_;
  std::vector<std::chrono::steady_clock::time_point> submitted_;

  std::atomic<std::uint64_t> updates_started_{0};
  std::atomic<std::uint64_t> updates_completed_{0};
  std::atomic<std::uint64_t> updates_rejected_{0};
  std::atomic<std::uint64_t> rebalance_passes_{0};
  std::atomic<std::uint64_t> rebalance_steps_{0};
  std::atomic<std::uint64_t> entries_migrated_{0};
  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> batch_ops_raw_{0};
  std::atomic<std::uint64_t> batch_ops_merged_{0};
  std::atomic<std::uint64_t> batch_publishes_{0};

  // Async ingress (null/absent unless config.update_ring_depth > 0).
  std::unique_ptr<SpscRing<workload::UpdateMsg>> update_ring_;
  std::thread updater_thread_;
  std::atomic<std::uint64_t> updates_submitted_{0};
  std::atomic<std::uint64_t> updates_ingested_{0};

  // Control-thread-private bookkeeping (how many control messages have
  // been pushed to each worker, to wait for acks).
  std::vector<std::uint64_t> control_pushed_;
  std::atomic<std::uint64_t> tables_published_{0};

  // Client-role observability (single writer: the client thread).
  obs::CounterBlock<ClientCounter> client_counters_;
  obs::LatencyHistogram client_hist_;
  /// Client-private completion count for latency sampling — plain (not
  /// atomic) because only the client thread touches it.
  std::uint64_t client_samples_seen_ = 0;

  // Control-role observability.
  obs::TtfTraceRing ttf_ring_;
  /// Wall time of each apply_batch() call, entry to return (control
  /// thread is the single writer; exported as "runtime.batch_apply_ns").
  obs::LatencyHistogram batch_apply_hist_;
  /// Wall time of each rebalance pass (control thread is the single
  /// writer; exported as "runtime.rebalance_ns").
  obs::LatencyHistogram rebalance_hist_;
  /// Wall time of each flat-image rebuild (control thread is the single
  /// writer; exported as "runtime.flat_rebuild_ns").
  obs::LatencyHistogram flat_rebuild_hist_;

  // Service-time sampling: jobs & sample_mask_ == 0 gets timed.
  bool sample_enabled_ = false;
  std::uint64_t sample_mask_ = 0;
  // Fill-harvest sampling: home hits & fill_mask_ == 0 send DRed fills.
  bool fill_sample_enabled_ = false;
  std::uint64_t fill_mask_ = 0;

  std::mutex stop_mutex_;  // serialises the join in stop()
};

}  // namespace clue::runtime
