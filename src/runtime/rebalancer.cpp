#include "runtime/rebalancer.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace clue::runtime {

RebalancePlanner::RebalancePlanner(RebalanceConfig config)
    : config_(config) {
  if (config_.skew_watermark < 1.0) config_.skew_watermark = 1.0;
  if (config_.headroom_watermark <= 0.0) config_.headroom_watermark = 1.0;
  if (config_.max_steps_per_pass == 0) config_.max_steps_per_pass = 1;
}

double RebalancePlanner::skew(std::span<const std::size_t> occupancy) {
  if (occupancy.size() < 2) return 1.0;
  std::size_t lo = *std::min_element(occupancy.begin(), occupancy.end());
  std::size_t hi = *std::max_element(occupancy.begin(), occupancy.end());
  lo = std::max<std::size_t>(lo, 1);
  hi = std::max<std::size_t>(hi, 1);
  return static_cast<double>(hi) / static_cast<double>(lo);
}

std::vector<std::size_t> RebalancePlanner::even_targets(
    std::span<const std::size_t> occupancy) {
  const std::size_t n = occupancy.size();
  std::vector<std::size_t> targets(n, 0);
  if (n == 0) return targets;
  const std::size_t total =
      std::accumulate(occupancy.begin(), occupancy.end(), std::size_t{0});
  const std::size_t base = total / n;
  const std::size_t extra = total % n;
  if (base == 0) {
    // Degenerate: fewer entries than chips. Occupied chips go at the
    // *end* so the top chip — whose upper boundary must cover the top
    // of the address space — is never left empty (mirrors
    // partition::even_partition's empties-first layout).
    for (std::size_t i = n - extra; i < n; ++i) targets[i] = 1;
    return targets;
  }
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = base + (i < extra ? 1 : 0);
  }
  return targets;
}

bool RebalancePlanner::should_rebalance(
    std::span<const std::size_t> occupancy, std::size_t chip_capacity) const {
  if (!config_.enabled || occupancy.size() < 2) return false;
  if (chip_capacity > 0) {
    const double limit = config_.headroom_watermark *
                         static_cast<double>(chip_capacity);
    for (std::size_t occ : occupancy) {
      if (static_cast<double>(occ) > limit) return true;
    }
  }
  const std::size_t total =
      std::accumulate(occupancy.begin(), occupancy.end(), std::size_t{0});
  if (total < config_.min_total_entries) return false;
  return skew(occupancy) > config_.skew_watermark;
}

std::optional<MigrationStep> RebalancePlanner::plan_step(
    std::span<const std::size_t> occupancy) const {
  const std::size_t n = occupancy.size();
  if (n < 2) return std::nullopt;
  const std::vector<std::size_t> targets = even_targets(occupancy);

  // delta over boundary i (between chip i and chip i+1): how many
  // entries the prefix [0..i] holds in excess of its even share.
  // Positive means flow rightward across the boundary, negative
  // leftward. Executing a step shrinks exactly one |delta| and leaves
  // the others untouched, so repeated plan_step strictly reduces total
  // imbalance: no oscillation, convergence in <= n-1 full steps.
  std::optional<MigrationStep> best;
  std::int64_t best_mag = 0;
  std::int64_t running = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    running += static_cast<std::int64_t>(occupancy[i]) -
               static_cast<std::int64_t>(targets[i]);
    if (running == 0) continue;
    const std::int64_t mag = running > 0 ? running : -running;
    if (mag <= best_mag) continue;
    MigrationStep step;
    std::size_t movable = 0;
    if (running > 0) {
      step.donor = i;
      step.receiver = i + 1;
      movable = occupancy[i];
    } else {
      // Leftward donors keep >= 1 entry: the donor's upper boundary
      // must stay at a real stored entry so the range map never needs
      // an address past the top of the space.
      step.donor = i + 1;
      step.receiver = i;
      movable = occupancy[i + 1] > 0 ? occupancy[i + 1] - 1 : 0;
    }
    step.count = std::min<std::size_t>(static_cast<std::size_t>(mag), movable);
    if (config_.max_entries_per_step > 0) {
      step.count = std::min(step.count, config_.max_entries_per_step);
    }
    if (step.count == 0) continue;
    best = step;
    best_mag = mag;
  }
  return best;
}

}  // namespace clue::runtime
