#include "runtime/epoch.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace clue::runtime {

EpochDomain::EpochDomain(std::size_t reader_slots) : slots_(reader_slots) {
  if (reader_slots == 0) {
    throw std::invalid_argument("EpochDomain: need at least one reader slot");
  }
}

EpochDomain::~EpochDomain() {
  // By now every reader thread must have exited (slots idle); free the
  // backlog unconditionally rather than leak it.
  std::lock_guard<std::mutex> lock(writer_mutex_);
  for (const auto& r : retired_) r.deleter(r.object);
  reclaimed_.fetch_add(retired_.size(), std::memory_order_acq_rel);
  retired_.clear();
}

void EpochDomain::retire_erased(void* object, void (*deleter)(void*)) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Advance first: readers pinned from now on announce an epoch strictly
  // greater than the stamp, so they can only have loaded the *new*
  // pointer (the caller swapped it before retiring the old one).
  const std::uint64_t stamp =
      global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  retired_.push_back(Retired{object, deleter, stamp - 1});
}

std::uint64_t EpochDomain::min_pinned() const {
  std::uint64_t lowest = kIdle;
  for (const auto& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    lowest = std::min(lowest, e);
  }
  return lowest;
}

std::size_t EpochDomain::reclaim() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (retired_.empty()) return 0;
  const std::uint64_t floor = min_pinned();
  std::size_t freed = 0;
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    // A reader pinned at epoch e can hold objects retired at stamp >= e;
    // stamps strictly below every pinned epoch are unreachable.
    if (it->epoch < floor) {
      it->deleter(it->object);
      ++freed;
    } else {
      *keep++ = *it;
    }
  }
  retired_.erase(keep, retired_.end());
  reclaimed_.fetch_add(freed, std::memory_order_acq_rel);
  return freed;
}

void EpochDomain::synchronize() {
  std::uint64_t target;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    target = global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }
  for (const auto& slot : slots_) {
    // A slot pinned below `target` was pinned before the advance and may
    // still be reading pre-advance state; wait it out. Slots re-pinned at
    // >= target can only see post-advance pointers, so they don't block.
    while (true) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e == kIdle || e >= target) break;
      std::this_thread::yield();
    }
  }
}

std::size_t EpochDomain::pending() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return retired_.size();
}

}  // namespace clue::runtime
