// Online boundary rebalancer — planning side.
//
// The paper's keystone (§III-A) is that the non-overlapping table splits
// into *exactly even* range partitions, but that evenness is only true at
// construction time: a realistic insert-heavy BGP churn lands most new
// prefixes in a few hot /8s, so chip occupancies drift apart until the
// hot chip exhausts its capacity. The rebalancer watches per-chip
// occupancy and, when skew (max/min) or headroom pressure crosses a
// watermark, plans migrations of boundary-adjacent entry runs between
// *neighboring* chips. Because the table is non-overlapping and each
// chip owns one contiguous address range, a migration is always "move
// the k highest entries of chip i to chip i+1" (or the mirror) plus one
// boundary move — every migrated entry is a plain append on the
// receiver and a one-shift delete on the donor (§IV-B).
//
// This header is pure planning: occupancies in, one executable
// MigrationStep out. The execution protocols live with the hosts —
// runtime::LookupRuntime runs the epoch-ordered concurrent protocol,
// system::ClueSystem the serial one — so the same planner drives both
// planes and they balance identically.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace clue::runtime {

struct RebalanceConfig {
  /// Master switch; disabled means occupancies drift freely (and a full
  /// chip is a hard TcamFullError instead of an emergency migration).
  bool enabled = true;
  /// Rebalance when max/min chip occupancy exceeds this ratio (empty
  /// chips count as occupancy 1 for the ratio). Must be >= 1.
  double skew_watermark = 1.25;
  /// With a known per-chip capacity, rebalance when any chip's
  /// occupancy/capacity fraction exceeds this — the headroom-remaining
  /// trigger that front-runs overflow.
  double headroom_watermark = 0.85;
  /// Skew on tiny tables is noise; below this total occupancy the skew
  /// trigger stays quiet (the headroom trigger still fires).
  std::size_t min_total_entries = 256;
  /// Upper bound on migrations per rebalance pass (safety valve; a pass
  /// normally converges in at most chips-1 steps).
  std::size_t max_steps_per_pass = 64;
  /// Cap on entries moved by one migration; 0 = move the full planned
  /// run in one step.
  std::size_t max_entries_per_step = 0;
};

/// One planned migration between two *adjacent* chips: move `count`
/// boundary-adjacent entries from `donor` to `receiver`
/// (receiver == donor ± 1) and shift the shared boundary accordingly.
struct MigrationStep {
  std::size_t donor = 0;
  std::size_t receiver = 0;
  std::size_t count = 0;
};

class RebalancePlanner {
 public:
  explicit RebalancePlanner(RebalanceConfig config = {});

  const RebalanceConfig& config() const { return config_; }

  /// max/min occupancy ratio, with empty chips counted as 1 so the
  /// ratio stays finite. 1.0 for perfectly even (or <2 chips).
  static double skew(std::span<const std::size_t> occupancy);

  /// The per-chip entry counts an exactly even split would give
  /// (ceil/floor of total/n; when total < n the occupied chips sit at
  /// the *end*, matching partition::even_partition's degenerate layout).
  static std::vector<std::size_t> even_targets(
      std::span<const std::size_t> occupancy);

  /// True when either watermark is crossed: skew above skew_watermark
  /// (and total >= min_total_entries), or — when `chip_capacity` > 0 —
  /// any chip above headroom_watermark of capacity.
  bool should_rebalance(std::span<const std::size_t> occupancy,
                        std::size_t chip_capacity = 0) const;

  /// The next executable migration toward the even targets, or nullopt
  /// when balanced (or no executable step exists). Executable means the
  /// donor actually has the entries: a donor giving entries *leftward*
  /// always keeps at least one, so its boundary stays representable
  /// (the top chip must keep owning the top of the address space).
  /// Iterating plan_step + execute strictly decreases total imbalance,
  /// so a pass converges; steps honor max_entries_per_step.
  std::optional<MigrationStep> plan_step(
      std::span<const std::size_t> occupancy) const;

 private:
  RebalanceConfig config_;
};

}  // namespace clue::runtime
