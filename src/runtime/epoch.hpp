// EpochDomain — epoch-based reclamation for read-mostly snapshots.
//
// The runtime publishes each chip's FIB as an immutable heap-allocated
// version behind a single atomic pointer (RCU discipline: readers never
// block, the writer swaps and retires). This domain answers the one
// question that makes the swap safe: *when may the old version be
// freed?*
//
// Scheme (classic epoch-based reclamation):
//   * a global epoch counter only the writer advances;
//   * one cache-line-aligned slot per reader; a reader entering a
//     critical section pins the current global epoch into its slot
//     (seq_cst, so the announcement and the subsequent pointer load
//     cannot be reordered past a writer's scan), and stores kIdle on
//     exit;
//   * retire(p) stamps p with the epoch *after* an advance, so any
//     reader that could still hold p is pinned at a strictly smaller
//     epoch;
//   * reclaim() frees every retired object whose stamp is <= every
//     pinned epoch (idle slots don't constrain).
//
// The writer side (retire/reclaim/advance) is serialized by a mutex so
// multiple control-plane threads stay safe; the reader side is entirely
// lock-free and writes only its own slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace clue::runtime {

class EpochDomain {
 public:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  explicit EpochDomain(std::size_t reader_slots);
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII pin of one reader slot. A slot belongs to exactly one thread
  /// at a time; nesting on the same slot is not supported.
  class Guard {
   public:
    Guard(EpochDomain& domain, std::size_t slot) : domain_(domain), slot_(slot) {
      domain_.pin(slot_);
    }
    ~Guard() { domain_.unpin(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain& domain_;
    std::size_t slot_;
  };

  void pin(std::size_t slot) {
    // seq_cst: the announcement must be globally ordered before this
    // thread's subsequent protected-pointer load, or a concurrent
    // reclaim scan could miss us and free what we are about to read.
    slots_[slot].epoch.store(global_.load(std::memory_order_acquire),
                             std::memory_order_seq_cst);
  }
  void unpin(std::size_t slot) {
    slots_[slot].epoch.store(kIdle, std::memory_order_release);
  }

  /// Hands `object` to the domain for deferred deletion. Advances the
  /// global epoch so the stamp strictly exceeds every reader that could
  /// still hold the object.
  template <typename T>
  void retire(T* object) {
    retire_erased(object, [](void* p) { delete static_cast<T*>(p); });
  }

  /// Frees every retired object no pinned reader can still see.
  /// Returns how many were freed this call.
  std::size_t reclaim();

  /// Grace-period barrier: advances the global epoch and spins until
  /// every reader slot is idle or pinned at the new epoch (or later).
  /// On return, no reader critical section that began before the call
  /// is still running — anything the caller unpublished beforehand is
  /// invisible. Writer-side only; never call from a reader thread that
  /// holds a pin on this domain (it would wait on itself).
  void synchronize();

  /// Total objects freed so far — the destruction counter the
  /// reclamation tests assert on.
  std::uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_acquire);
  }
  /// Retired but not yet freed.
  std::size_t pending() const;

  std::uint64_t current_epoch() const {
    return global_.load(std::memory_order_acquire);
  }
  std::size_t reader_slots() const { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
  };
  struct Retired {
    void* object;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  void retire_erased(void* object, void (*deleter)(void*));
  /// Smallest pinned epoch across all slots (kIdle when none pinned).
  std::uint64_t min_pinned() const;

  std::atomic<std::uint64_t> global_{1};
  std::vector<Slot> slots_;

  mutable std::mutex writer_mutex_;
  std::vector<Retired> retired_;
  std::atomic<std::uint64_t> reclaimed_{0};
};

}  // namespace clue::runtime
