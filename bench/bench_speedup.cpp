// Reproduces Figure 16: speedup factor vs DRed hit rate for CLUE and
// CLPL against the theoretical worst-case bound t = (N-1)h + 1.
//
// Paper: both systems track each other (same hit rate -> same speedup)
// and both sit above the worst-case line. We sweep the DRed size to move
// the hit rate, under all-traffic-to-one-chip worst-case homing.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

namespace {

constexpr std::size_t kTcams = 4;
constexpr std::size_t kPackets = 400'000;

struct Point {
  double hit_rate;
  double speedup;
};

Point run_engine(clue::engine::EngineMode mode,
                 const clue::engine::EngineSetup& setup,
                 const clue::trie::BinaryTrie* full_fib,
                 std::size_t dred_size,
                 const std::vector<clue::netbase::Prefix>& hot,
                 std::uint64_t seed) {
  clue::engine::EngineConfig config;
  config.tcam_count = kTcams;
  config.dred_capacity = dred_size;
  clue::engine::ParallelEngine engine(mode, config, setup, full_fib);
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = seed;
  traffic_config.zipf_skew = 1.1;
  clue::workload::TrafficGenerator traffic(hot, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, kPackets);
  return {metrics.dred_hit_rate(), metrics.speedup(config.service_clocks)};
}

}  // namespace

int main() {
  using clue::stats::fixed;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 1601;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);

  // Worst case: every packet's home is TCAM 0 — traffic drawn only from
  // TCAM 0's routes under an identity even partition.
  const auto setup = clue::bench::clue_setup(table, kTcams);
  const auto clpl_setup = clue::bench::clpl_setup(fib, table, kTcams);
  const auto hot = clue::bench::prefixes_of(setup.tcam_routes[0]);

  std::cout << "=== Figure 16: speedup factor vs hit rate (worst case: all "
               "traffic homed at TCAM 1) ===\n\n";
  clue::stats::TablePrinter out({"DRedSize", "Mode", "HitRate", "Speedup",
                                 "Theory(N-1)h+1"});
  std::vector<double> clue_h, clue_t, clpl_h, clpl_t;
  for (const std::size_t dred_size :
       {16, 48, 64, 128, 256, 512, 1024, 2048, 4096, 16384}) {
    const auto clue_point = run_engine(clue::engine::EngineMode::kClue, setup,
                                       nullptr, dred_size, hot, 1602);
    const auto clpl_point =
        run_engine(clue::engine::EngineMode::kClpl, clpl_setup, &fib,
                   dred_size, hot, 1602);
    clue_h.push_back(clue_point.hit_rate);
    clue_t.push_back(clue_point.speedup);
    clpl_h.push_back(clpl_point.hit_rate);
    clpl_t.push_back(clpl_point.speedup);
    out.add_row({std::to_string(dred_size), "CLUE",
                 fixed(clue_point.hit_rate, 4), fixed(clue_point.speedup, 3),
                 fixed(3.0 * clue_point.hit_rate + 1.0, 3)});
    out.add_row({"", "CLPL", fixed(clpl_point.hit_rate, 4),
                 fixed(clpl_point.speedup, 3),
                 fixed(3.0 * clpl_point.hit_rate + 1.0, 3)});
  }
  out.print(std::cout);

  {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < clue_h.size(); ++i) {
      rows.push_back({fixed(clue_h[i], 5), fixed(clue_t[i], 5),
                      fixed(clpl_h[i], 5), fixed(clpl_t[i], 5),
                      fixed(3.0 * clue_h[i] + 1.0, 5)});
    }
    clue::obs::MetricsRegistry registry;
    registry.add_table(
        "fig16_speedup",
        {"clue_h", "clue_t", "clpl_h", "clpl_t", "theory_at_clue_h"}, rows);
    clue::bench::export_run("speedup", registry);
  }

  // The paper draws its Fig. 16 curves with cubic fits; emit ours so the
  // two dotted lines can be compared directly.
  const auto clue_fit = clue::stats::polyfit(clue_h, clue_t, 3);
  const auto clpl_fit = clue::stats::polyfit(clpl_h, clpl_t, 3);
  std::cout << "\nCubic fits t(h) sampled at h = 0.3/0.6/0.9:\n";
  for (const double h : {0.3, 0.6, 0.9}) {
    std::cout << "  h=" << fixed(h, 1)
              << "  CLUE " << fixed(clue::stats::polyval(clue_fit, h), 3)
              << "  CLPL " << fixed(clue::stats::polyval(clpl_fit, h), 3)
              << "  theory " << fixed(3.0 * h + 1.0, 3) << "\n";
  }
  std::cout << "\nExpected shape: speedup rises with hit rate; every row's\n"
               "Speedup >= Theory (eq. 5 is a lower bound); CLUE and CLPL\n"
               "fits coincide at equal hit rate (paper Fig. 16).\n";
  return 0;
}
