// Reproduces Figure 17: DRed hit rate vs DRed size, CLUE vs CLPL.
//
// Two effects separate the curves at equal per-chip DRed size:
//  1. CLUE's exclusion rule (DRed i never stores chip i's prefixes)
//     stops fills that could never be hit from consuming capacity;
//  2. CLUE caches the matched *disjoint region* directly, while CLPL
//     caches RRC-ME minimal expansions — longer prefixes covering less
//     address space, so each CLPL entry earns fewer hits.
// Paper: CLUE's curve dominates CLPL's everywhere; with 4 chips CLUE
// needs ~3/4 of CLPL's redundancy for equal hit rate.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  constexpr std::size_t kTcams = 4;
  constexpr std::size_t kPackets = 300'000;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 1701;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  const auto clue_setup = clue::bench::clue_setup(table, kTcams);
  const auto clpl_setup = clue::bench::clpl_setup(fib, table, kTcams);
  const auto hot = clue::bench::prefixes_of(clue_setup.tcam_routes[0]);

  std::cout << "=== Figure 17: hit rate vs DRed size (worst-case traffic) "
               "===\n\n";
  std::vector<std::vector<std::string>> csv_rows;
  clue::stats::TablePrinter out(
      {"DRedSize", "CLUE hit", "CLPL hit", "CLUE speedup", "CLPL speedup"});
  for (const std::size_t dred_size : {16, 32, 64, 128, 256, 512, 1024, 2048}) {
    double hit[2];
    double speed[2];
    for (int mode = 0; mode < 2; ++mode) {
      clue::engine::EngineConfig config;
      config.tcam_count = kTcams;
      config.dred_capacity = dred_size;
      clue::engine::ParallelEngine engine(
          mode == 0 ? clue::engine::EngineMode::kClue
                    : clue::engine::EngineMode::kClpl,
          config, mode == 0 ? clue_setup : clpl_setup,
          mode == 0 ? nullptr : &fib);
      clue::workload::TrafficConfig traffic_config;
      traffic_config.seed = 1702;
      traffic_config.zipf_skew = 1.1;
      clue::workload::TrafficGenerator traffic(hot, traffic_config);
      const auto metrics =
          engine.run([&traffic] { return traffic.next(); }, kPackets);
      hit[mode] = metrics.dred_hit_rate();
      speed[mode] = metrics.speedup(config.service_clocks);
    }
    out.add_row({std::to_string(dred_size), percent(hit[0]), percent(hit[1]),
                 fixed(speed[0], 3), fixed(speed[1], 3)});
    csv_rows.push_back({std::to_string(dred_size), fixed(hit[0], 5),
                        fixed(hit[1], 5), fixed(speed[0], 5),
                        fixed(speed[1], 5)});
  }
  out.print(std::cout);
  clue::obs::MetricsRegistry registry;
  registry.add_table(
      "fig17_hitrate",
      {"dred_size", "clue_hit", "clpl_hit", "clue_speedup", "clpl_speedup"},
      csv_rows);
  clue::bench::export_run("hitrate", registry);
  std::cout << "\nExpected shape: CLUE's hit-rate curve dominates CLPL's at\n"
               "every size (paper Fig. 17), hence the same speedup with a\n"
               "smaller DRed (the 3/4-redundancy claim).\n";
  return 0;
}
