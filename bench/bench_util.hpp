// Shared setup helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "engine/parallel_engine.hpp"
#include "netbase/prefix.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "trie/binary_trie.hpp"
#include "workload/rib_gen.hpp"

namespace clue::bench {

/// Builds a CLUE engine setup (even partition of the compressed table,
/// identity bucket->TCAM mapping) from a ground-truth FIB.
inline engine::EngineSetup clue_setup(const std::vector<netbase::Route>& table,
                                      std::size_t tcams) {
  engine::EngineSetup setup;
  const auto partitions = partition::even_partition(table, tcams);
  setup.tcam_routes.resize(tcams);
  for (std::size_t i = 0; i < tcams; ++i) {
    setup.tcam_routes[i] = partitions.buckets[i].routes;
  }
  setup.bucket_boundaries = partition::even_partition_boundaries(table, tcams);
  setup.bucket_to_tcam.resize(tcams);
  for (std::size_t i = 0; i < tcams; ++i) setup.bucket_to_tcam[i] = i;
  return setup;
}

/// CLPL engine setup: sub-tree partition of the *uncompressed* FIB. The
/// indexing for diverted traffic still needs range boundaries, so we use
/// the compressed table's even ranges for bucket->TCAM homing (both
/// engines must agree on "home" for a fair DRed comparison) while each
/// chip stores its sub-tree bucket plus covering replicas.
inline engine::EngineSetup clpl_setup(const trie::BinaryTrie& fib,
                                      const std::vector<netbase::Route>& table,
                                      std::size_t tcams) {
  engine::EngineSetup setup = clue_setup(table, tcams);
  const auto partitions = partition::subtree_partition(fib, tcams);
  // Keep the homing identical to CLUE's, but store the (overlapping)
  // sub-tree buckets: every chip must answer LPM for its own range, so
  // fold each sub-tree bucket into the chip owning most of its range.
  // For benchmarking we simply store the full uncompressed route set of
  // each range (range split over the original FIB), replicating covering
  // prefixes — this is what CLPL's redundancy pays for.
  setup.tcam_routes.assign(tcams, {});
  std::vector<netbase::Route> all = fib.routes();
  // Assign each original route to the chip whose range holds it.
  const engine::IndexingLogic indexing(setup.bucket_boundaries,
                                       setup.bucket_to_tcam);
  for (const auto& route : all) {
    setup.tcam_routes[indexing.tcam_of(route.prefix.range_low())].push_back(
        route);
  }
  // Covering prefixes that straddle a boundary must be replicated into
  // every chip whose range they intersect.
  for (const auto& route : all) {
    const std::size_t first = indexing.tcam_of(route.prefix.range_low());
    const std::size_t last = indexing.tcam_of(route.prefix.range_high());
    for (std::size_t chip = first + 1; chip <= last; ++chip) {
      setup.tcam_routes[chip].push_back(route);
    }
  }
  return setup;
}

inline std::vector<netbase::Prefix> prefixes_of(
    const std::vector<netbase::Route>& table) {
  std::vector<netbase::Prefix> out;
  out.reserve(table.size());
  for (const auto& route : table) out.push_back(route.prefix);
  return out;
}

/// The paper's Table-II / Fig-15 construction: split the table into
/// `buckets` even partitions, measure each partition's traffic share
/// with a probe stream, sort by load, and deal buckets/tcams partitions
/// per chip in descending order — deliberately the most uneven mapping.
struct WorstCaseSetup {
  engine::EngineSetup setup;
  std::vector<double> offered_share;  ///< per-TCAM share of probe traffic
};

template <typename AddressSource>
WorstCaseSetup worst_case_setup(const std::vector<netbase::Route>& table,
                                std::size_t tcams, std::size_t buckets,
                                AddressSource&& probe,
                                std::size_t probe_packets) {
  const auto partitions = partition::even_partition(table, buckets);
  auto boundaries = partition::even_partition_boundaries(table, buckets);

  std::vector<std::size_t> bucket_ids(buckets);
  for (std::size_t i = 0; i < buckets; ++i) bucket_ids[i] = i;
  const engine::IndexingLogic probe_index(boundaries, bucket_ids);
  std::vector<std::uint64_t> load(buckets, 0);
  for (std::size_t i = 0; i < probe_packets; ++i) {
    ++load[probe_index.bucket_of(probe())];
  }

  std::vector<std::size_t> order(buckets);
  for (std::size_t i = 0; i < buckets; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&load](std::size_t a, std::size_t b) { return load[a] > load[b]; });

  WorstCaseSetup result;
  result.setup.bucket_boundaries = std::move(boundaries);
  result.setup.bucket_to_tcam.assign(buckets, 0);
  result.setup.tcam_routes.assign(tcams, {});
  result.offered_share.assign(tcams, 0.0);
  const std::size_t per_chip = buckets / tcams;
  for (std::size_t rank = 0; rank < buckets; ++rank) {
    const std::size_t bucket = order[rank];
    const std::size_t chip = rank / per_chip;
    result.setup.bucket_to_tcam[bucket] = chip;
    auto& routes = result.setup.tcam_routes[chip];
    routes.insert(routes.end(), partitions.buckets[bucket].routes.begin(),
                  partitions.buckets[bucket].routes.end());
    result.offered_share[chip] += static_cast<double>(load[bucket]) /
                                  static_cast<double>(probe_packets);
  }
  return result;
}

}  // namespace clue::bench
