// Reproduces the paper's §III-C design argument: "caching prefixes is
// more efficient [than caching destination addresses], and this is also
// in accord with our experimental results."
//
// Same traffic, same capacity budget, three cache granularities:
//   address   — exact-IP LRU (Shyu / Chiueh / Talbot style);
//   rrc-me    — minimal-expansion prefixes (what CLPL caches);
//   region    — ONRTC disjoint regions (what CLUE caches).
// Each entry of a coarser granularity covers more of the address space,
// so at equal capacity hit rates must order address < rrc-me < region.
#include <iostream>

#include "engine/address_cache.hpp"
#include "engine/dred.hpp"
#include "metrics_out.hpp"
#include "onrtc/onrtc.hpp"
#include "rrcme/rrc_me.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 2301;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  clue::trie::BinaryTrie disjoint;
  for (const auto& route : table) disjoint.insert(route.prefix, route.next_hop);

  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 2302;
  traffic_config.zipf_skew = 1.05;
  std::vector<clue::netbase::Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto trace = traffic.generate(400'000);

  std::cout << "=== §III-C: cache granularity at equal capacity ===\n\n";
  clue::stats::TablePrinter out(
      {"Capacity", "address-cache", "rrc-me-prefix", "onrtc-region"});
  for (const std::size_t capacity : {256, 1024, 4096, 16384}) {
    clue::engine::AddressCache addresses(capacity);
    clue::engine::DredStore expansions(capacity);
    clue::engine::DredStore regions(capacity);
    for (const auto address : trace) {
      // Miss -> fill, the standard demand-filled cache discipline.
      if (!addresses.lookup(address)) {
        addresses.insert(address, fib.lookup(address));
      }
      if (!expansions.lookup(address)) {
        if (const auto fill = clue::rrcme::minimal_expansion(fib, address)) {
          expansions.insert(
              clue::netbase::Route{fill->prefix, fill->next_hop});
        }
      }
      if (!regions.lookup(address)) {
        if (const auto matched = disjoint.lookup_route(address)) {
          regions.insert(*matched);
        }
      }
    }
    out.add_row({std::to_string(capacity),
                 percent(addresses.stats().hit_rate()),
                 percent(expansions.stats().hit_rate()),
                 percent(regions.stats().hit_rate())});
  }
  out.print(std::cout);
  clue::bench::export_table("cache_granularity", out);
  std::cout << "\nExpected shape: region >= rrc-me >> address at every\n"
               "capacity — each coarser entry covers more addresses, which\n"
               "is why CLPL caches prefixes and CLUE's regions do even\n"
               "better (Fig. 17's mechanism).\n";
  return 0;
}
