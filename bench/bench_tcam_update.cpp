// Reproduces §IV-B's TCAM-update comparison (Fig. 7 discussion):
// average entry operations per routing update for the naive length-
// sorted layout, Shah-Gupta's partial order, and CLUE's order-free
// layout, under the same BGP-like update stream.
//
// Paper reference: Shah-Gupta ≈ 14.994 shifts (0.36 us at 24 ns/op);
// CLUE ≤ 1 shift (0.024 us). The naive layout is O(n) and shown for
// scale on a smaller table.
#include <iostream>

#include "metrics_out.hpp"
#include "onrtc/compressed_fib.hpp"
#include "system/clpl_system.hpp"
#include "system/clue_system.hpp"
#include "onrtc/onrtc.hpp"
#include "stats/stats.hpp"
#include "tcam/updater.hpp"
#include "update/cost_model.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

// Replays announce/withdraw messages against one updater; announces of
// unknown prefixes insert, announces of known prefixes rewrite, and
// withdrawals erase. Returns per-update operation statistics.
clue::stats::Summary replay(clue::tcam::TcamUpdater& updater,
                            const std::vector<clue::workload::UpdateMsg>& messages) {
  clue::stats::Summary ops;
  for (const auto& message : messages) {
    if (message.kind == clue::workload::UpdateKind::kAnnounce) {
      ops.add(static_cast<double>(updater.insert(
          clue::tcam::TcamEntry{message.prefix, message.next_hop})));
    } else {
      ops.add(static_cast<double>(updater.erase(message.prefix)));
    }
  }
  return ops;
}

void report(const char* name, const clue::stats::Summary& ops,
            std::size_t table_size) {
  using clue::stats::fixed;
  std::cout << name << " (table " << table_size << "): mean "
            << fixed(ops.mean(), 3) << " ops/update = "
            << fixed(ops.mean() * clue::update::CostModel::kTcamOpNs / 1000.0,
                     4)
            << " us, max " << fixed(ops.max(), 0) << " ops\n";
}

}  // namespace

int main() {
  std::cout << "=== §IV-B: TCAM update cost (24 ns per entry operation) "
               "===\n\n";

  clue::obs::MetricsRegistry registry;
  const auto record = [&registry](const char* layout,
                                  const clue::stats::Summary& ops) {
    const std::string prefix = std::string("tcam_update.") + layout;
    registry.set_gauge(prefix + ".mean_ops", ops.mean());
    registry.set_gauge(prefix + ".mean_us",
                       ops.mean() * clue::update::CostModel::kTcamOpNs /
                           1000.0);
    registry.set_gauge(prefix + ".max_ops", ops.max());
  };

  // Naive layout: small table (it is O(n) per update).
  {
    clue::workload::RibConfig rib_config;
    rib_config.table_size = 4'000;
    rib_config.seed = 701;
    const auto fib = clue::workload::generate_rib(rib_config);
    clue::tcam::NaiveUpdater naive(3 * fib.size() + 1024);
    fib.for_each_route([&naive](const clue::netbase::Route& route) {
      naive.insert(clue::tcam::TcamEntry{route.prefix, route.next_hop});
    });
    clue::workload::UpdateConfig update_config;
    update_config.seed = 702;
    clue::workload::UpdateGenerator updates(fib, update_config);
    const auto ops = replay(naive, updates.generate(2'000));
    report("naive      ", ops, fib.size());
    record("naive", ops);
  }

  // Shah-Gupta (CLPL) and CLUE on the same larger table and stream.
  clue::workload::RibConfig rib_config;
  rib_config.table_size = 120'000;
  rib_config.seed = 703;
  const auto fib = clue::workload::generate_rib(rib_config);
  clue::workload::UpdateConfig update_config;
  update_config.seed = 704;
  const auto messages =
      clue::workload::UpdateGenerator(fib, update_config).generate(20'000);

  {
    clue::tcam::ShahGuptaUpdater shah(2 * fib.size() + 65536);
    fib.for_each_route([&shah](const clue::netbase::Route& route) {
      shah.insert(clue::tcam::TcamEntry{route.prefix, route.next_hop});
    });
    const auto ops = replay(shah, messages);
    report("shah-gupta ", ops, fib.size());
    record("shah_gupta", ops);
    std::cout << "             (paper: 14.994 shifts avg, 0.3598 us)\n";
  }
  {
    // CLUE updates the *compressed* table: replay the same BGP stream
    // through the incremental compressor and apply its diff ops.
    clue::onrtc::CompressedFib compressed(fib);
    clue::tcam::ClueUpdater updater(2 * fib.size() + 65536);
    for (const auto& route : compressed.compressed().routes()) {
      updater.insert(clue::tcam::TcamEntry{route.prefix, route.next_hop});
    }
    clue::stats::Summary ops;
    for (const auto& message : messages) {
      const auto diff =
          message.kind == clue::workload::UpdateKind::kAnnounce
              ? compressed.announce(message.prefix, message.next_hop)
              : compressed.withdraw(message.prefix);
      double total = 0;
      for (const auto& op : diff) {
        switch (op.kind) {
          case clue::onrtc::FibOpKind::kInsert:
          case clue::onrtc::FibOpKind::kModify:
            total += static_cast<double>(updater.insert(
                clue::tcam::TcamEntry{op.route.prefix, op.route.next_hop}));
            break;
          case clue::onrtc::FibOpKind::kDelete:
            total += static_cast<double>(updater.erase(op.route.prefix));
            break;
        }
      }
      ops.add(total);
    }
    report("clue       ", ops, compressed.size());
    record("clue", ops);
    std::cout << "             (paper: <=1 shift per diff op, 0.024 us; our\n"
                 "              mean counts every diff op of the update)\n";
  }

  // System-level view (§IV-B's "current partition algorithms probably
  // need to change more than one prefix when one update arrives"):
  // entries and chips actually touched across 4 partitioned chips.
  {
    clue::workload::RibConfig system_rib;
    system_rib.table_size = 30'000;
    system_rib.seed = 705;
    const auto system_fib = clue::workload::generate_rib(system_rib);
    clue::workload::UpdateConfig system_updates_config;
    system_updates_config.seed = 706;

    clue::system::ClplSystem clpl(system_fib, clue::system::ClplSystemConfig{});
    clue::system::ClueSystem clue_system(system_fib,
                                         clue::system::SystemConfig{});
    clue::workload::UpdateGenerator clpl_stream(system_fib,
                                                system_updates_config);
    clue::workload::UpdateGenerator clue_stream(system_fib,
                                                system_updates_config);
    clue::stats::Summary clpl_chips, clpl_entries, clpl_ttf2, clue_ttf2;
    for (int i = 0; i < 5'000; ++i) {
      const auto impact = clpl.apply(clpl_stream.next());
      clpl_chips.add(static_cast<double>(impact.chips_touched));
      clpl_entries.add(static_cast<double>(impact.entries_written));
      clpl_ttf2.add(impact.ttf.ttf2_ns);
      clue_ttf2.add(clue_system.apply(clue_stream.next()).ttf2_ns);
    }
    std::cout << "\n4-chip systems, same 5000-update stream:\n"
              << "  clpl-system: " << clue::stats::fixed(clpl_chips.mean(), 2)
              << " chips touched/update (max "
              << clue::stats::fixed(clpl_chips.max(), 0) << "), "
              << clue::stats::fixed(clpl_entries.mean(), 2)
              << " entries written, critical-path TTF2 "
              << clue::stats::fixed(clpl_ttf2.mean() / 1000.0, 4) << " us\n"
              << "  clue-system: critical-path TTF2 "
              << clue::stats::fixed(clue_ttf2.mean() / 1000.0, 4)
              << " us (diff ops land on one chip each, <=1 shift)\n";
    registry.set_gauge("tcam_update.system.clpl_ttf2_mean_us",
                       clpl_ttf2.mean() / 1000.0);
    registry.set_gauge("tcam_update.system.clue_ttf2_mean_us",
                       clue_ttf2.mean() / 1000.0);
    registry.set_gauge("tcam_update.system.clpl_chips_touched_mean",
                       clpl_chips.mean());
  }
  clue::bench::export_run("tcam_update", registry);
  clue::bench::export_bench_section("BENCH_update", "tcam_update", registry);
  return 0;
}
