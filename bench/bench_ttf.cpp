// Reproduces Figures 10-14: the TTF time series of CLUE vs CLPL over a
// 24-hour update stream (replayed as 48 half-hour buckets).
//
// Paper reference points (means):
//   TTF1: CLUE 0.2210 us, slightly above the uncompressed ground truth;
//   TTF2: CLPL 0.3598 us (≈15 shifts x 24 ns), CLUE 0.024 us (one shift);
//   TTF3: CLPL 0.1993 us (RRC-ME SRAM walk + cache probes), CLUE 0.024 us;
//   TTF2+TTF3: CLUE ≈ 4.29 % of CLPL; total TTF: CLPL ≈ 234 % of CLUE.
// TTF2/TTF3 use the same 24 ns/op hardware model as the paper, so they
// are directly comparable; TTF1 is measured on this machine and is
// faster in absolute terms than the paper's 2008-era host.
#include <iostream>

#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "update/clpl_pipeline.hpp"
#include "update/clue_pipeline.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

constexpr std::size_t kTableSize = 60'000;
constexpr std::size_t kUpdates = 48'000;   // "24 hours" of updates
constexpr std::size_t kBuckets = 48;       // one point per half hour

struct Series {
  clue::stats::TimeSeries ttf1{kUpdates / kBuckets};
  clue::stats::TimeSeries ttf2{kUpdates / kBuckets};
  clue::stats::TimeSeries ttf3{kUpdates / kBuckets};
  clue::stats::TimeSeries data_plane{kUpdates / kBuckets};
  clue::stats::TimeSeries total{kUpdates / kBuckets};
  clue::stats::Percentiles data_plane_pct;
  clue::stats::Percentiles total_pct;

  void add(const clue::update::TtfSample& sample) {
    ttf1.add(sample.ttf1_ns / 1000.0);  // report microseconds
    ttf2.add(sample.ttf2_ns / 1000.0);
    ttf3.add(sample.ttf3_ns / 1000.0);
    data_plane.add(sample.data_plane_ns() / 1000.0);
    total.add(sample.total_ns() / 1000.0);
    data_plane_pct.add(sample.data_plane_ns() / 1000.0);
    total_pct.add(sample.total_ns() / 1000.0);
  }
};

void print_series(const char* figure, const char* metric,
                  const clue::stats::TimeSeries& clpl,
                  const clue::stats::TimeSeries& clue_series) {
  using clue::stats::fixed;
  std::cout << "\n=== " << figure << ": " << metric
            << " (us, per half-hour bucket) ===\n";
  const auto clpl_means = clpl.bucket_means();
  const auto clue_means = clue_series.bucket_means();
  clue::stats::TablePrinter table({"bucket", "CLPL", "CLUE"});
  for (std::size_t i = 0; i < clpl_means.size(); i += 4) {  // print every 4th
    table.add_row({std::to_string(i), fixed(clpl_means[i], 4),
                   fixed(clue_means[i], 4)});
  }
  table.print(std::cout);
  std::cout << metric << " summary: CLPL mean " << fixed(clpl.overall().mean(), 4)
            << " [" << fixed(clpl.overall().min(), 4) << ", "
            << fixed(clpl.overall().max(), 4) << "]; CLUE mean "
            << fixed(clue_series.overall().mean(), 4) << " ["
            << fixed(clue_series.overall().min(), 4) << ", "
            << fixed(clue_series.overall().max(), 4) << "]\n";
}

}  // namespace

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = kTableSize;
  rib_config.seed = 2011;
  const auto fib = clue::workload::generate_rib(rib_config);

  clue::update::PipelineConfig pipeline_config;
  clue::update::CluePipeline clue_pipeline(fib, pipeline_config);
  clue::update::ClplPipeline clpl_pipeline(fib, pipeline_config);

  // Warm both DRed/cache sets with identical traffic so TTF3 sees
  // realistic occupancy.
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 77;
  std::vector<clue::netbase::Prefix> prefixes;
  fib.for_each_route([&prefixes](const clue::netbase::Route& route) {
    prefixes.push_back(route.prefix);
  });
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto warm = traffic.generate(8'000);
  clue_pipeline.warm(warm);
  clpl_pipeline.warm(warm);

  clue::workload::UpdateConfig update_config;
  update_config.seed = 2012;
  clue::workload::UpdateGenerator clue_updates(fib, update_config);
  clue::workload::UpdateGenerator clpl_updates(fib, update_config);

  Series clue_series, clpl_series;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    clue_series.add(clue_pipeline.apply(clue_updates.next()));
    clpl_series.add(clpl_pipeline.apply(clpl_updates.next()));
  }

  std::cout << "Table: " << kTableSize << " routes; updates: " << kUpdates
            << " (announce/withdraw mix), hardware model 24 ns/TCAM op.\n";

  print_series("Figure 10", "TTF1 (trie update)", clpl_series.ttf1,
               clue_series.ttf1);
  print_series("Figure 11", "TTF2 (TCAM update)", clpl_series.ttf2,
               clue_series.ttf2);
  print_series("Figure 12", "TTF3 (DRed update)", clpl_series.ttf3,
               clue_series.ttf3);
  print_series("Figure 13", "TTF2+TTF3 (data plane)", clpl_series.data_plane,
               clue_series.data_plane);
  print_series("Figure 14", "TTF total", clpl_series.total,
               clue_series.total);

  const double dp_ratio = clue_series.data_plane.overall().mean() /
                          clpl_series.data_plane.overall().mean();
  const double total_ratio = clpl_series.total.overall().mean() /
                             clue_series.total.overall().mean();
  std::cout << "\nHeadline comparisons:\n"
            << "  TTF2+TTF3 CLUE/CLPL = " << percent(dp_ratio)
            << "   (paper: 4.29%)\n"
            << "  TTF total CLPL/CLUE = " << percent(total_ratio)
            << "   (paper: 234%; inverted here because measured TTF1\n"
               "   dominates on this host — see EXPERIMENTS.md)\n";
  // Figure series (one row per half-hour bucket) for plotting.
  {
    std::vector<std::vector<std::string>> rows;
    const auto emit = [&rows](const clue::stats::TimeSeries& clpl,
                              const clue::stats::TimeSeries& clue_series,
                              std::size_t column_pair) {
      const auto a = clpl.bucket_means();
      const auto b = clue_series.bucket_means();
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (column_pair == 0) {
          rows.push_back({std::to_string(i)});
        }
        rows[i].push_back(clue::stats::fixed(a[i], 5));
        rows[i].push_back(clue::stats::fixed(b[i], 5));
      }
    };
    emit(clpl_series.ttf1, clue_series.ttf1, 0);
    emit(clpl_series.ttf2, clue_series.ttf2, 1);
    emit(clpl_series.ttf3, clue_series.ttf3, 2);
    emit(clpl_series.total, clue_series.total, 3);
    clue::obs::MetricsRegistry registry;
    registry.add_table(
        "fig10_14_ttf",
        {"bucket", "ttf1_clpl", "ttf1_clue", "ttf2_clpl", "ttf2_clue",
         "ttf3_clpl", "ttf3_clue", "total_clpl", "total_clue"},
        rows);
    registry.set_gauge("ttf.clue.data_plane_mean_us",
                       clue_series.data_plane.overall().mean());
    registry.set_gauge("ttf.clpl.data_plane_mean_us",
                       clpl_series.data_plane.overall().mean());
    registry.set_gauge("ttf.data_plane_ratio", dp_ratio);
    registry.set_gauge("ttf.total_ratio", total_ratio);
    // Per-stage means, so the combined update-path report
    // (BENCH_update.json) carries the TTF1/2/3 split without parsing the
    // figure table.
    registry.set_gauge("ttf.clue.ttf1_mean_us",
                       clue_series.ttf1.overall().mean());
    registry.set_gauge("ttf.clue.ttf2_mean_us",
                       clue_series.ttf2.overall().mean());
    registry.set_gauge("ttf.clue.ttf3_mean_us",
                       clue_series.ttf3.overall().mean());
    registry.set_gauge("ttf.clpl.ttf1_mean_us",
                       clpl_series.ttf1.overall().mean());
    registry.set_gauge("ttf.clpl.ttf2_mean_us",
                       clpl_series.ttf2.overall().mean());
    registry.set_gauge("ttf.clpl.ttf3_mean_us",
                       clpl_series.ttf3.overall().mean());
    clue::bench::export_run("ttf", registry);
    clue::bench::export_bench_section("BENCH_update", "ttf", registry);
  }

  std::cout << "\nData-plane percentiles (us):\n"
            << "  CLUE  p50 " << fixed(clue_series.data_plane_pct.quantile(0.5), 4)
            << "  p90 " << fixed(clue_series.data_plane_pct.quantile(0.9), 4)
            << "  p99 " << fixed(clue_series.data_plane_pct.quantile(0.99), 4)
            << "\n  CLPL  p50 " << fixed(clpl_series.data_plane_pct.quantile(0.5), 4)
            << "  p90 " << fixed(clpl_series.data_plane_pct.quantile(0.9), 4)
            << "  p99 " << fixed(clpl_series.data_plane_pct.quantile(0.99), 4)
            << "\n";
  return 0;
}
