// Design-space sweep the paper fixes at one point (Fig. 15 uses
// FIFO 256): how deep do the per-chip FIFOs need to be?
//
// Deeper FIFOs absorb bursts before diverting (fewer DRed lookups) but
// add queueing delay and reorder-buffer pressure; shallower FIFOs
// divert earlier and leaning harder on the DReds. The sweep shows the
// throughput/latency/reorder trade-off under the worst-case mapping.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  constexpr std::size_t kTcams = 4;
  constexpr std::size_t kPackets = 250'000;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 2401;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  const auto setup = clue::bench::clue_setup(table, kTcams);
  const auto hot = clue::bench::prefixes_of(setup.tcam_routes[0]);

  std::cout << "=== FIFO depth sweep (worst-case traffic, DRed 1024) ===\n\n";
  clue::stats::TablePrinter out({"FIFO", "Speedup", "HitRate", "Diverted",
                                 "ReorderMax", "MeanHold(clk)"});
  for (const std::size_t fifo : {4, 16, 64, 256, 1024}) {
    clue::engine::EngineConfig config;
    config.tcam_count = kTcams;
    config.fifo_depth = fifo;
    config.track_reorder = true;
    clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue,
                                        config, setup);
    clue::workload::TrafficConfig traffic_config;
    traffic_config.seed = 2402;
    traffic_config.zipf_skew = 1.1;
    clue::workload::TrafficGenerator traffic(hot, traffic_config);
    const auto metrics =
        engine.run([&traffic] { return traffic.next(); }, kPackets);
    out.add_row({std::to_string(fifo),
                 fixed(metrics.speedup(config.service_clocks), 3),
                 percent(metrics.dred_hit_rate()),
                 percent(static_cast<double>(metrics.dred_lookups) /
                         static_cast<double>(metrics.packets_offered)),
                 std::to_string(metrics.reorder_max_occupancy),
                 fixed(metrics.reorder_mean_hold_clocks, 1)});
  }
  out.print(std::cout);
  clue::bench::export_table("fifo_sweep", out);
  std::cout << "\nExpected shape: throughput is insensitive once the FIFO\n"
               "covers a few service times; reorder-buffer pressure grows\n"
               "with depth (longer home queues let diverted packets overtake\n"
               "by more) — the paper's 256 sits on the flat part.\n";
  return 0;
}
