// The paper's §I/§II-B motivation, measured: static redundancy (SLPL)
// balances the long-term average but collapses when traffic shifts;
// dynamic redundancy (CLUE) adapts.
//
// Both engines get the same table and the same 25 %-of-table redundancy
// budget (SLPL as pre-replicated entries, CLUE as DRed capacity). The
// SLPL chip assignment is trained on a "long-period" probe trace; then
// both engines face (a) traffic matching that profile and (b) a shifted
// profile whose hot set has rotated — Dong Lin's bursty reality.
#include <iostream>

#include "bench_util.hpp"
#include "engine/slpl_setup.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

namespace {

constexpr std::size_t kTcams = 4;
constexpr std::size_t kBuckets = 32;
constexpr std::size_t kPackets = 400'000;

struct Row {
  double speedup;
  double drop_rate;
};

Row run(clue::engine::EngineMode mode, const clue::engine::EngineSetup& setup,
        std::size_t dred_capacity,
        const std::vector<clue::netbase::Prefix>& prefixes,
        std::uint64_t traffic_seed) {
  clue::engine::EngineConfig config;
  config.tcam_count = kTcams;
  config.dred_capacity = dred_capacity;
  clue::engine::ParallelEngine engine(mode, config, setup);
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = traffic_seed;
  traffic_config.zipf_skew = 1.05;
  traffic_config.cluster_locality = 0.9;
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, kPackets);
  return {metrics.speedup(config.service_clocks),
          static_cast<double>(metrics.packets_dropped) /
              static_cast<double>(metrics.packets_offered)};
}

}  // namespace

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 2201;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  const auto prefixes = clue::bench::prefixes_of(table);

  // Long-period statistics: probe with the "stable" seed.
  constexpr std::uint64_t kStableSeed = 2202;
  constexpr std::uint64_t kShiftedSeed = 9901;
  const auto boundaries =
      clue::partition::even_partition_boundaries(table, kBuckets);
  clue::workload::TrafficConfig probe_config;
  probe_config.seed = kStableSeed;
  probe_config.zipf_skew = 1.05;
  probe_config.cluster_locality = 0.9;
  clue::workload::TrafficGenerator probe(prefixes, probe_config);
  const auto load = clue::engine::measure_bucket_load(
      boundaries, kBuckets, [&probe] { return probe.next(); }, 400'000);

  clue::engine::SlplConfig slpl_config;
  slpl_config.tcam_count = kTcams;
  slpl_config.buckets = kBuckets;
  slpl_config.replication_budget = 0.25;
  const auto slpl = clue::engine::build_slpl_setup(table, load, slpl_config);

  // CLUE with the same redundancy budget as DRed capacity.
  const auto clue_setup = clue::bench::clue_setup(table, kTcams);
  const std::size_t dred_capacity =
      static_cast<std::size_t>(0.25 * static_cast<double>(table.size())) /
      kTcams;

  std::size_t slpl_entries = 0;
  for (const auto& routes : slpl.tcam_routes) slpl_entries += routes.size();
  std::cout << "=== Static (SLPL) vs dynamic (CLUE) redundancy ===\n\n"
            << "table " << table.size() << " entries; SLPL stores "
            << slpl_entries << " (replication "
            << percent(static_cast<double>(slpl_entries - table.size()) /
                       static_cast<double>(table.size()))
            << "); CLUE DRed " << dred_capacity << "/chip\n\n";

  clue::stats::TablePrinter out(
      {"Workload", "Mode", "Speedup", "DropRate"});
  for (const auto& [label, seed] :
       std::vector<std::pair<const char*, std::uint64_t>>{
           {"stable (matches stats)", kStableSeed},
           {"shifted (hot set moved)", kShiftedSeed}}) {
    const auto slpl_row = run(clue::engine::EngineMode::kSlpl, slpl, 1,
                              prefixes, seed);
    const auto clue_row = run(clue::engine::EngineMode::kClue, clue_setup,
                              dred_capacity, prefixes, seed);
    out.add_row({label, "SLPL", fixed(slpl_row.speedup, 3),
                 percent(slpl_row.drop_rate)});
    out.add_row({"", "CLUE", fixed(clue_row.speedup, 3),
                 percent(clue_row.drop_rate)});
  }
  out.print(std::cout);
  clue::bench::export_table("static_vs_dynamic", out);
  std::cout << "\nExpected shape: comparable on the stable workload; on the\n"
               "shifted workload SLPL's speedup falls (its replicas sit on\n"
               "yesterday's hot buckets) while CLUE's DReds re-learn the new\n"
               "hot set within a few thousand packets.\n";
  return 0;
}
