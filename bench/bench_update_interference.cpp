// Validates premise 1 of the paper's speedup proof (§III-D): "the
// update cost is ignored" — justified by Dong Lin et al.'s observation
// that one update per 5000 clock cycles does not dent throughput, and
// by CLUE's O(1) updates.
//
// We inject periodic update stalls (each blocks one chip, round-robin,
// for `stall` clocks — 1 for CLUE's single shift, 15 for Shah-Gupta's
// cascade) and sweep the update interval from "none" to absurdly hot.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  constexpr std::size_t kTcams = 4;
  constexpr std::size_t kPackets = 300'000;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 2101;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  const auto setup = clue::bench::clue_setup(table, kTcams);

  std::cout << "=== Premise 1: lookup throughput under concurrent updates "
               "===\n\n";
  clue::stats::TablePrinter out({"UpdateEvery", "StallClocks", "Speedup",
                                 "StallShare", "HitRate"});
  for (const std::size_t interval : {std::size_t{0}, std::size_t{5000},
                                     std::size_t{500}, std::size_t{50},
                                     std::size_t{10}}) {
    for (const std::size_t stall :
         {std::size_t{1}, std::size_t{15}}) {
      if (interval == 0 && stall != 1) continue;  // one "no updates" row
      clue::engine::EngineConfig config;
      config.tcam_count = kTcams;
      config.update_interval_clocks = interval;
      config.update_stall_clocks = stall;
      clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue,
                                          config, setup);
      clue::workload::TrafficConfig traffic_config;
      traffic_config.seed = 2102;
      traffic_config.zipf_skew = 1.0;
      clue::workload::TrafficGenerator traffic(
          clue::bench::prefixes_of(table), traffic_config);
      const auto metrics =
          engine.run([&traffic] { return traffic.next(); }, kPackets);
      const double stall_share =
          static_cast<double>(metrics.update_stalls) /
          static_cast<double>(metrics.clocks * kTcams);
      out.add_row({interval == 0 ? "never" : std::to_string(interval),
                   std::to_string(stall),
                   fixed(metrics.speedup(config.service_clocks), 3),
                   percent(stall_share), percent(metrics.dred_hit_rate())});
    }
  }
  out.print(std::cout);
  clue::bench::export_table("update_interference", out);
  std::cout << "\nExpected shape: at one update per 5000 clocks (the paper's\n"
               "reference point) the speedup is indistinguishable from the\n"
               "no-update row, even with 15-clock Shah-Gupta stalls; only\n"
               "absurd update rates (every 10 clocks) bite — and CLUE's\n"
               "1-clock updates bite ~15x less than the cascade.\n";
  return 0;
}
