// Reproduces Table I + Figure 8: FIB size before/after ONRTC compression
// on the 12 Table-I routers, plus compression wall time.
//
// Paper: compressed size is 71 % of the original on average; compression
// takes ≈39 ms per table on a 2.8 GHz dual-core Pentium.
#include <chrono>
#include <iostream>

#include "metrics_out.hpp"
#include "onrtc/baselines.hpp"
#include "onrtc/onrtc.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  std::cout << "=== Figure 8 / Table I: ONRTC compression on 12 routers ===\n\n";
  clue::stats::TablePrinter table(
      {"ID", "Location", "Original", "Compressed", "Ratio", "Time(ms)"});

  clue::stats::Summary ratios;
  clue::stats::Summary times;
  for (const auto& router : clue::workload::paper_routers()) {
    const auto fib = clue::workload::generate_rib(router);
    const auto start = std::chrono::steady_clock::now();
    const auto result = clue::onrtc::compress_with_stats(fib);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ratios.add(result.stats.ratio());
    times.add(ms);
    table.add_row({router.id, router.location,
                   std::to_string(result.stats.original_routes),
                   std::to_string(result.stats.compressed_routes),
                   percent(result.stats.ratio()), fixed(ms, 1)});
  }
  table.print(std::cout);
  std::cout << "\nMean compressed/original ratio: " << percent(ratios.mean())
            << "   (paper: ~71%)\n";
  std::cout << "Mean compression time: " << fixed(times.mean(), 1)
            << " ms   (paper: ~39 ms on 2008-era hardware)\n";

  // Context (§II-A): where ONRTC sits between the optimal overlapping
  // compressor and the only other overlap-free construction.
  std::cout << "\n=== Compression baselines on rrc01 ===\n\n";
  const auto fib = clue::workload::generate_rib(
      clue::workload::paper_routers().front());
  clue::stats::TablePrinter baselines(
      {"Algorithm", "Entries", "vsOriginal", "Overlap-free"});
  const auto row = [&](const char* name, std::size_t entries, bool free) {
    baselines.add_row({name, std::to_string(entries),
                       percent(static_cast<double>(entries) /
                               static_cast<double>(fib.size())),
                       free ? "yes" : "no"});
  };
  row("original", fib.size(), false);
  row("ortc (optimal overlapping)", clue::onrtc::ortc_compress(fib).size(),
      false);
  row("onrtc (optimal non-overlap)", clue::onrtc::compress(fib).size(), true);
  row("leaf-push (no merging)", clue::onrtc::leaf_push(fib).size(), true);
  baselines.print(std::cout);
  std::cout << "\nOrdering must hold: ortc <= onrtc <= original <= "
               "leaf-push.\nONRTC pays a modest premium over ORTC to make "
               "the table TCAM-order-free.\n";

  clue::obs::MetricsRegistry registry;
  clue::bench::add_table(registry, "compression", table);
  clue::bench::add_table(registry, "compression_baselines", baselines);
  registry.set_gauge("compression.mean_ratio", ratios.mean());
  registry.set_gauge("compression.mean_time_ms", times.mean());
  clue::bench::export_run("compression", registry);
  return 0;
}
