// Reproduces Figure 15: per-TCAM load before and after CLUE's dynamic
// load balancing under the Table-II worst-case mapping.
//
// Paper settings: 4 TCAMs, 4 clocks per lookup, one arrival per clock,
// FIFO 256, DRed 1024. The "Original" bars are the offered load per chip
// (77.88/17.43/4.54/0.16 %); the "CLUE" bars are the processed share per
// chip after diversion through the DReds — nearly even.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::percent;

  constexpr std::size_t kTcams = 4;
  constexpr std::size_t kBuckets = 32;
  constexpr std::size_t kPackets = 1'000'000;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 120'000;
  rib_config.seed = 1501;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);

  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 1502;
  traffic_config.zipf_skew = 1.05;
  traffic_config.cluster_locality = 0.95;
  clue::workload::TrafficGenerator probe(clue::bench::prefixes_of(table),
                                         traffic_config);
  auto worst = clue::bench::worst_case_setup(
      table, kTcams, kBuckets, [&probe] { return probe.next(); }, 500'000);

  clue::engine::EngineConfig config;
  config.tcam_count = kTcams;
  config.fifo_depth = 256;
  config.dred_capacity = 1024;
  config.service_clocks = 4;
  clue::engine::ParallelEngine engine(clue::engine::EngineMode::kClue, config,
                                      worst.setup);

  clue::workload::TrafficGenerator traffic(clue::bench::prefixes_of(table),
                                           traffic_config);
  const auto metrics = engine.run([&traffic] { return traffic.next(); },
                                  kPackets);

  std::cout << "=== Figure 15: load balancing under the worst-case mapping "
               "(FIFO 256, DRed 1024, 4 clk/lookup) ===\n\n";
  clue::stats::TablePrinter out({"TCAM", "Original(offered)", "CLUE(processed)"});
  std::uint64_t total_lookups = 0;
  for (const auto count : metrics.per_tcam_lookups) total_lookups += count;
  for (std::size_t chip = 0; chip < kTcams; ++chip) {
    out.add_row({std::to_string(chip + 1), percent(worst.offered_share[chip]),
                 percent(static_cast<double>(metrics.per_tcam_lookups[chip]) /
                         static_cast<double>(total_lookups))});
  }
  out.print(std::cout);
  clue::bench::export_table("loadbalance", out);
  std::cout << "\nThroughput: " << metrics.packets_completed << "/"
            << metrics.packets_offered << " packets completed, speedup "
            << clue::stats::fixed(metrics.speedup(config.service_clocks), 2)
            << " of " << kTcams << " (DRed hit rate "
            << percent(metrics.dred_hit_rate()) << ")\n"
            << "Expected shape: offered load extremely skewed; processed\n"
               "load per chip nearly even (paper Fig. 15 'CLUE' bars).\n";
  return 0;
}
