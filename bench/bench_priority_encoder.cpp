// Ablation (paper §II-A / §III): what non-overlap buys inside the chip.
//
// On an overlapping table, a TCAM search raises multiple match lines and
// needs a priority encoder (and a length-sorted layout) to produce LPM.
// After ONRTC the table is disjoint: at most one line rises, entries can
// sit anywhere, and the encoder disappears. We measure the match-line
// statistics and demonstrate the layout-independence property.
#include <iostream>

#include "metrics_out.hpp"
#include "netbase/rng.hpp"
#include "onrtc/onrtc.hpp"
#include "stats/stats.hpp"
#include "tcam/tcam_chip.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 30'000;
  rib_config.seed = 1901;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);

  // Load both images: original (slot order = length-sorted, as a real
  // overlapping deployment must) and compressed in *scrambled* order.
  clue::tcam::TcamChip original(fib.size() + 1);
  {
    auto routes = fib.routes();
    std::sort(routes.begin(), routes.end(),
              [](const clue::netbase::Route& a, const clue::netbase::Route& b) {
                return a.prefix.length() > b.prefix.length();
              });
    std::size_t slot = 0;
    for (const auto& route : routes) {
      original.write(slot++, clue::tcam::TcamEntry{route.prefix, route.next_hop});
    }
  }
  clue::tcam::TcamChip compressed(table.size() + 1);
  {
    auto shuffled = table;
    clue::netbase::Pcg32 rng(1902);
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1],
                shuffled[rng.next_below(static_cast<std::uint32_t>(i))]);
    }
    std::size_t slot = 0;
    for (const auto& route : shuffled) {
      compressed.write(slot++,
                       clue::tcam::TcamEntry{route.prefix, route.next_hop});
    }
  }

  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 1903;
  std::vector<clue::netbase::Prefix> prefixes;
  for (const auto& route : table) prefixes.push_back(route.prefix);
  clue::workload::TrafficGenerator traffic(prefixes, traffic_config);

  clue::stats::Summary original_matches;
  clue::stats::Summary compressed_matches;
  std::size_t disagreements = 0;
  constexpr int kProbes = 200'000;
  for (int i = 0; i < kProbes; ++i) {
    const auto address = traffic.next();
    const auto a = original.search(address);
    const auto b = compressed.search(address);
    original_matches.add(static_cast<double>(a.match_count));
    compressed_matches.add(static_cast<double>(b.match_count));
    // Length-sorted + encoder on the original == any-order, no encoder
    // on the compressed image: both must give true LPM.
    if (a.next_hop != b.next_hop || a.hit != b.hit) ++disagreements;
  }

  std::cout << "=== Ablation: priority encoder & match-line statistics ("
            << kProbes << " lookups) ===\n\n";
  clue::stats::TablePrinter out(
      {"Image", "Entries", "MeanMatches", "MaxMatches", "EncoderNeeded"});
  out.add_row({"original (overlapping)", std::to_string(fib.size()),
               fixed(original_matches.mean(), 3),
               fixed(original_matches.max(), 0),
               original_matches.max() > 1 ? "yes" : "no"});
  out.add_row({"ONRTC (disjoint, scrambled slots)",
               std::to_string(table.size()),
               fixed(compressed_matches.mean(), 3),
               fixed(compressed_matches.max(), 0),
               compressed_matches.max() > 1 ? "yes" : "no"});
  out.print(std::cout);
  clue::bench::export_table("priority_encoder", out);
  std::cout << "\nForwarding disagreements between the two images: "
            << disagreements << " (must be 0)\n"
            << "Compressed image energy per search: "
            << percent(static_cast<double>(table.size()) /
                       static_cast<double>(fib.size()))
            << " of the original's activated entries.\n";
  return disagreements == 0 ? 0 : 1;
}
