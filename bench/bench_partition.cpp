// Reproduces Figure 9: partition quality of the three algorithms on the
// rrc01 table for a growing number of partitions.
//
// Paper: SCPL (= SLPL's ID-bit partition) cannot split evenly; CLPL's
// sub-tree partition splits evenly at the cost of redundancy; CLUE
// splits exactly evenly with zero redundancy, and its per-partition
// count is the smallest because the table itself is compressed first.
#include <iostream>

#include "metrics_out.hpp"
#include "onrtc/onrtc.hpp"
#include "partition/partition.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"

int main() {
  const auto& router = clue::workload::paper_routers().front();  // rrc01
  const auto fib = clue::workload::generate_rib(router);
  const auto compressed = clue::onrtc::compress(fib);

  std::cout << "=== Figure 9: partition comparison on " << router.id
            << " (" << fib.size() << " routes, " << compressed.size()
            << " after ONRTC) ===\n\n";

  clue::stats::TablePrinter table({"n", "Algorithm", "MaxBucket", "MinBucket",
                                   "Redundancy", "TotalEntries"});
  for (const std::size_t n : {4, 8, 16, 32}) {
    const auto slpl = clue::partition::idbit_partition(fib, n);
    const auto clpl = clue::partition::subtree_partition(fib, n);
    const auto clue_part = clue::partition::even_partition(compressed, n);
    for (const auto* result : {&slpl, &clpl, &clue_part}) {
      table.add_row({std::to_string(n), result->algorithm,
                     std::to_string(result->max_bucket()),
                     std::to_string(result->min_bucket()),
                     std::to_string(result->redundancy),
                     std::to_string(result->total_entries())});
    }
  }
  table.print(std::cout);
  clue::bench::export_table("partition", table);
  std::cout << "\nExpected shape: slpl-idbit uneven; clpl-subtree even with\n"
               "redundancy growing in n; clue-even exactly even, redundancy 0,\n"
               "smallest buckets (compressed table).\n";
  return 0;
}
