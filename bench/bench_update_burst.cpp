// Group-commit burst replay: sustained update throughput of the batched
// TTF pipeline (LookupRuntime::apply_batch) vs the sequential apply()
// path, with lookup traffic running concurrently so the p99 lookup
// latency *during* the burst is part of the result.
//
// For each burst size B in 1..4096 the same skewed update stream (half
// the messages re-hit a prefix already in the burst — the router-facing
// case group commit exists for: flaps and hot /8 churn that coalesce to
// one net op) is replayed in bursts of B. The sequential baseline is the
// identical stream through apply(), one message per commit. A third
// phase drives the async ingress (submit() + updater thread) to measure
// the end-to-end rate including the handoff ring.
//
// Headline gauges (exported into BENCH_update.json, section
// "update_burst"):
//   update_burst.sequential_updates_per_sec
//   update_burst.batched_updates_per_sec      (burst = 1024)
//   update_burst.speedup                      (batched / sequential)
//   update_burst.async_updates_per_sec
// CLUE_BENCH_UPDATES scales the per-phase update quota (default 4096).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "metrics_out.hpp"
#include "runtime/lookup_runtime.hpp"
#include "stats/stats.hpp"
#include "tcam/updater.hpp"
#include "workload/rib_gen.hpp"
#include "workload/traffic_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using clue::netbase::NextHop;
using clue::workload::UpdateKind;
using clue::workload::UpdateMsg;

constexpr std::size_t kTableSize = 60'000;
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kLookupChunk = 512;

std::size_t updates_from_env() {
  if (const char* env = std::getenv("CLUE_BENCH_UPDATES"); env && *env) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 4096;
}

/// The skewed burst stream: a consistent UpdateGenerator stream where
/// half the slots re-announce a prefix an earlier message of the *same
/// burst* already announced (fresh next hop) — intra-burst repeats are
/// exactly what coalescing folds to one net op.
std::vector<UpdateMsg> make_stream(const clue::trie::BinaryTrie& fib,
                                   std::size_t count, std::size_t burst,
                                   std::uint64_t seed) {
  clue::workload::UpdateConfig config;
  config.seed = seed;
  clue::workload::UpdateGenerator generator(fib, config);
  clue::netbase::Pcg32 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<UpdateMsg> stream;
  stream.reserve(count);
  std::vector<std::size_t> burst_announces;  // indices into stream
  for (std::size_t i = 0; i < count; ++i) {
    if (i % burst == 0) burst_announces.clear();
    const bool repeat = !burst_announces.empty() && (rng.next() & 1) == 0;
    if (repeat) {
      const std::size_t victim =
          burst_announces[rng.next() % burst_announces.size()];
      UpdateMsg msg = stream[victim];
      msg.next_hop = clue::netbase::make_next_hop(
          (clue::netbase::to_index(msg.next_hop) % 32) + 1);
      stream.push_back(msg);
    } else {
      stream.push_back(generator.next());
    }
    if (stream.back().kind == UpdateKind::kAnnounce) {
      burst_announces.push_back(stream.size() - 1);
    }
  }
  return stream;
}

struct LookupLoad {
  std::thread thread;
  std::atomic<bool> stop{false};
  clue::stats::Percentiles latency_us;
  std::uint64_t lookups = 0;

  void start(clue::runtime::LookupRuntime& runtime,
             const std::vector<clue::netbase::Ipv4Address>& addresses) {
    thread = std::thread([this, &runtime, &addresses] {
      std::vector<double> latency;
      std::size_t at = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t n =
            std::min(kLookupChunk, addresses.size() - at);
        const std::span<const clue::netbase::Ipv4Address> chunk(
            addresses.data() + at, n);
        runtime.lookup_batch(chunk, &latency);
        for (std::size_t i = 0; i < n; ++i) {
          latency_us.add(latency[i] / 1000.0);
        }
        lookups += n;
        at = (at + n) % addresses.size();
      }
    });
  }
  void finish() {
    stop.store(true, std::memory_order_release);
    if (thread.joinable()) thread.join();
  }
};

struct PhaseResult {
  double updates_per_sec = 0;
  double p99_lookup_us = 0;
  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  std::uint64_t ops_raw = 0;
  std::uint64_t ops_merged = 0;
  std::uint64_t publishes = 0;
  std::uint64_t batches = 0;
};

clue::runtime::RuntimeConfig runtime_config(std::size_t ring_depth) {
  clue::runtime::RuntimeConfig config;
  config.worker_count = kWorkers;
  config.update_ring_depth = ring_depth;
  return config;
}

/// Replays `stream` in bursts of `burst` (1 = the sequential apply()
/// path) against a fresh runtime, under concurrent lookup load.
PhaseResult run_phase(const clue::trie::BinaryTrie& fib,
                      const std::vector<UpdateMsg>& stream,
                      const std::vector<clue::netbase::Ipv4Address>& traffic,
                      std::size_t burst, bool async) {
  clue::runtime::LookupRuntime runtime(
      fib, runtime_config(async ? 4096 : 0));
  LookupLoad load;
  load.start(runtime, traffic);
  const auto before = runtime.metrics();

  PhaseResult result;
  const auto t0 = Clock::now();
  if (async) {
    for (const auto& msg : stream) runtime.submit(msg);
    runtime.flush_updates();
  } else if (burst == 1) {
    for (const auto& msg : stream) {
      try {
        runtime.apply(msg);
      } catch (const clue::tcam::TcamFullError&) {
        // counted by the runtime; keep replaying
      }
    }
  } else {
    for (std::size_t at = 0; at < stream.size(); at += burst) {
      const std::size_t n = std::min(burst, stream.size() - at);
      runtime.apply_batch(
          std::span<const UpdateMsg>(stream.data() + at, n));
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  load.finish();

  const auto after = runtime.metrics();
  result.applied = after.updates_applied - before.updates_applied;
  result.rejected = after.updates_rejected - before.updates_rejected;
  result.ops_raw = after.batch_ops_raw - before.batch_ops_raw;
  result.ops_merged = after.batch_ops_merged - before.batch_ops_merged;
  result.publishes = after.batch_publishes - before.batch_publishes;
  result.batches = after.batches_applied - before.batches_applied;
  result.updates_per_sec =
      seconds > 0 ? static_cast<double>(stream.size()) / seconds : 0;
  result.p99_lookup_us = load.latency_us.quantile(0.99);
  runtime.stop();
  return result;
}

}  // namespace

int main() {
  using clue::stats::fixed;

  const std::size_t quota = updates_from_env();
  clue::workload::RibConfig rib_config;
  rib_config.table_size = kTableSize;
  rib_config.seed = 2011;
  const auto fib = clue::workload::generate_rib(rib_config);

  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 77;
  std::vector<clue::netbase::Prefix> prefixes;
  fib.for_each_route([&prefixes](const clue::netbase::Route& route) {
    prefixes.push_back(route.prefix);
  });
  clue::workload::TrafficGenerator traffic_gen(prefixes, traffic_config);
  const auto traffic = traffic_gen.generate(16'384);

  std::cout << "Table: " << kTableSize << " routes; " << quota
            << " updates per phase (CLUE_BENCH_UPDATES); " << kWorkers
            << " chip workers; lookup load concurrent with every phase.\n";

  // Sequential baseline: burst 1 through apply(), same stream shape the
  // burst 1024 phase replays (seeded per phase below).
  const auto seq_stream = make_stream(fib, quota, 1024, 42);
  const PhaseResult seq = run_phase(fib, seq_stream, traffic, 1, false);

  const std::size_t bursts[] = {4, 16, 64, 256, 1024, 4096};
  clue::stats::TablePrinter table({"burst", "updates_per_sec", "speedup",
                                   "p99_lookup_us", "coalesce_saving",
                                   "publishes_per_batch"});
  table.add_row({"1 (apply)", fixed(seq.updates_per_sec, 0), "1.00",
                 fixed(seq.p99_lookup_us, 1),
                 seq.ops_raw
                     ? fixed(1.0 - static_cast<double>(seq.ops_merged) /
                                       static_cast<double>(seq.ops_raw),
                             3)
                     : "0",
                 seq.batches ? fixed(static_cast<double>(seq.publishes) /
                                         static_cast<double>(seq.batches),
                                     2)
                             : "0"});

  double batched_1024 = 0;
  double p99_1024 = 0;
  for (const std::size_t burst : bursts) {
    const auto stream = make_stream(fib, std::max(quota, burst), burst, 42);
    const PhaseResult r = run_phase(fib, stream, traffic, burst, false);
    if (burst == 1024) {
      batched_1024 = r.updates_per_sec;
      p99_1024 = r.p99_lookup_us;
    }
    table.add_row(
        {std::to_string(burst), fixed(r.updates_per_sec, 0),
         fixed(seq.updates_per_sec > 0
                   ? r.updates_per_sec / seq.updates_per_sec
                   : 0,
               2),
         fixed(r.p99_lookup_us, 1),
         r.ops_raw ? fixed(1.0 - static_cast<double>(r.ops_merged) /
                                     static_cast<double>(r.ops_raw),
                           3)
                   : "0",
         r.batches ? fixed(static_cast<double>(r.publishes) /
                               static_cast<double>(r.batches),
                           2)
                   : "0"});
  }

  // Async ingress: submit() through the update ring, updater thread
  // batches adaptively.
  const auto async_stream = make_stream(fib, quota, 1024, 42);
  const PhaseResult async_r = run_phase(fib, async_stream, traffic, 0, true);
  table.add_row({"async", fixed(async_r.updates_per_sec, 0),
                 fixed(seq.updates_per_sec > 0
                           ? async_r.updates_per_sec / seq.updates_per_sec
                           : 0,
                       2),
                 fixed(async_r.p99_lookup_us, 1),
                 async_r.ops_raw
                     ? fixed(1.0 - static_cast<double>(async_r.ops_merged) /
                                       static_cast<double>(async_r.ops_raw),
                             3)
                     : "0",
                 async_r.batches
                     ? fixed(static_cast<double>(async_r.publishes) /
                                 static_cast<double>(async_r.batches),
                             2)
                     : "0"});

  std::cout << "\n=== Group-commit burst replay (sustained updates/sec, "
               "p99 lookup latency during burst) ===\n";
  table.print(std::cout);

  const double speedup =
      seq.updates_per_sec > 0 ? batched_1024 / seq.updates_per_sec : 0;
  std::cout << "\nHeadline: burst 1024 " << fixed(batched_1024, 0)
            << " updates/s vs sequential " << fixed(seq.updates_per_sec, 0)
            << " updates/s -> speedup " << fixed(speedup, 2)
            << "x (acceptance floor: 3x)\n";

  clue::obs::MetricsRegistry registry;
  clue::bench::add_table(registry, "update_burst", table);
  registry.set_gauge("update_burst.sequential_updates_per_sec",
                     seq.updates_per_sec);
  registry.set_gauge("update_burst.batched_updates_per_sec", batched_1024);
  registry.set_gauge("update_burst.speedup", speedup);
  registry.set_gauge("update_burst.async_updates_per_sec",
                     async_r.updates_per_sec);
  registry.set_gauge("update_burst.p99_lookup_us_sequential",
                     seq.p99_lookup_us);
  registry.set_gauge("update_burst.p99_lookup_us_batched_1024", p99_1024);
  clue::bench::export_run("update_burst", registry);
  clue::bench::export_bench_section("BENCH_update", "update_burst", registry);
  return 0;
}
