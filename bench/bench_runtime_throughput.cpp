// Threaded runtime throughput: Mlookups/s and batch latency quantiles
// versus worker-thread count, with and without concurrent BGP churn.
//
// The simulation benches (bench_speedup et al.) measure the paper's
// clock-accurate model; this one measures the actual concurrent
// runtime — real threads, real SPSC rings, real epoch-protected table
// swaps. On a multi-core host the 1->4 worker column should scale
// close to linearly for uniform traffic; on a single hardware thread
// it degenerates to context-switch throughput (the numbers still
// print, the scaling claim needs cores).
//
// Observability: every run exports through obs::MetricsRegistry — the
// figure table, per-worker service-time histograms, the client latency
// histogram, and the TTF stage traces of the churn thread's updates.
//
//   $ ./bench/bench_runtime_throughput
//   $ CLUE_CSV_DIR=/tmp ./bench/bench_runtime_throughput
//   $ CLUE_METRICS_DIR=/tmp ./bench/bench_runtime_throughput   # JSON
//   $ CLUE_BENCH_LOOKUPS=50000 ./bench/bench_runtime_throughput  # smoke
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "metrics_out.hpp"
#include "obs/metrics_registry.hpp"
#include "runtime/lookup_runtime.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using clue::netbase::Ipv4Address;
using clue::netbase::Pcg32;
using clue::runtime::LookupRuntime;
using clue::runtime::RuntimeConfig;

struct RunResult {
  double mlookups_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double dred_hit_rate = 0.0;
  std::uint64_t diverted = 0;
};

RunResult run_once(const clue::trie::BinaryTrie& fib, std::size_t workers,
                   std::size_t lookups, std::size_t updates_in_flight,
                   clue::obs::MetricsRegistry* registry,
                   const std::string& run_tag) {
  RuntimeConfig config;
  config.worker_count = workers;
  LookupRuntime runtime(fib, config);

  // Optional concurrent churn from a control thread.
  std::atomic<bool> stop{false};
  std::thread control;
  if (updates_in_flight > 0) {
    control = std::thread([&runtime, &fib, &stop] {
      clue::workload::UpdateConfig update_config;
      update_config.seed = 4102;
      clue::workload::UpdateGenerator updates(fib, update_config);
      while (!stop.load(std::memory_order_acquire)) {
        runtime.apply(updates.next());
      }
    });
  }

  Pcg32 rng(4103);
  constexpr std::size_t kBatch = 4096;
  std::vector<Ipv4Address> batch;
  batch.reserve(kBatch);
  clue::stats::Percentiles latency;
  std::vector<double> latency_ns;

  const auto start = std::chrono::steady_clock::now();
  std::size_t done = 0;
  while (done < lookups) {
    batch.clear();
    const std::size_t n = std::min(kBatch, lookups - done);
    for (std::size_t i = 0; i < n; ++i) batch.emplace_back(rng.next());
    runtime.lookup_batch(batch, &latency_ns);
    for (const double ns : latency_ns) latency.add(ns / 1000.0);
    done += n;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  stop.store(true, std::memory_order_release);
  if (control.joinable()) control.join();

  const auto metrics = runtime.metrics();
  RunResult result;
  result.mlookups_per_s =
      static_cast<double>(done) / elapsed / 1e6;
  result.p50_us = latency.quantile(0.50);
  result.p99_us = latency.quantile(0.99);
  result.p999_us = latency.quantile(0.999);
  result.dred_hit_rate = metrics.dred_hit_rate();
  result.diverted = metrics.diverted;

  if (registry) {
    registry->set_gauge(run_tag + ".mlookups_per_s", result.mlookups_per_s);
    registry->set_counter(run_tag + ".diverted", metrics.diverted);
    registry->set_counter(run_tag + ".backpressure_waits",
                          metrics.backpressure_waits);
    registry->set_counter(run_tag + ".client_stalls", metrics.client_stalls);
    registry->set_counter(run_tag + ".updates_applied",
                          metrics.updates_applied);
    registry->set_gauge(run_tag + ".dred_hit_rate", result.dred_hit_rate);
    // Per-worker service-time histograms + client latency histogram.
    for (std::size_t w = 0; w < runtime.worker_count(); ++w) {
      registry->add_histogram(
          run_tag + ".worker" + std::to_string(w) + ".service_ns",
          runtime.worker_service_histogram(w));
    }
    registry->add_histogram(run_tag + ".client.latency_ns",
                            runtime.client_latency_histogram());
    // TTF stage traces from the churn thread's updates (empty when the
    // run had no churn).
    registry->add_ttf_trace(run_tag + ".ttf", runtime.ttf_trace());
  }
  return result;
}

std::size_t lookups_from_env(std::size_t fallback) {
  const char* value = std::getenv("CLUE_BENCH_LOOKUPS");
  if (!value || !*value) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  const std::size_t kLookups = lookups_from_env(2'000'000);

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 100'000;
  rib_config.seed = 4101;
  const auto fib = clue::workload::generate_rib(rib_config);

  std::cout << "=== Threaded runtime throughput (" << fib.size()
            << " routes, batches of 4096, "
            << std::thread::hardware_concurrency()
            << " hardware threads, " << kLookups << " lookups/run) ===\n\n";

  clue::obs::MetricsRegistry registry;
  std::vector<std::vector<std::string>> csv_rows;
  clue::stats::TablePrinter out({"Workers", "Churn", "Mlookups/s", "Scaling",
                                 "p50(us)", "p99(us)", "p999(us)", "DRedHit"});
  double base = 0.0;
  for (const bool churn : {false, true}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const std::string tag = "w" + std::to_string(workers) +
                              (churn ? ".churn" : ".nochurn");
      const auto r = run_once(fib, workers, kLookups, churn ? 1 : 0,
                              &registry, tag);
      if (workers == 1 && !churn) base = r.mlookups_per_s;
      const double scaling = base > 0.0 ? r.mlookups_per_s / base : 0.0;
      out.add_row({std::to_string(workers), churn ? "yes" : "no",
                   fixed(r.mlookups_per_s, 3), fixed(scaling, 2) + "x",
                   fixed(r.p50_us, 1), fixed(r.p99_us, 1),
                   fixed(r.p999_us, 1), percent(r.dred_hit_rate)});
      csv_rows.push_back({std::to_string(workers), churn ? "1" : "0",
                          fixed(r.mlookups_per_s, 4), fixed(r.p50_us, 2),
                          fixed(r.p99_us, 2), fixed(r.p999_us, 2)});
    }
  }
  out.print(std::cout);
  std::cout << "\nLatency is submit-to-completion per address inside a\n"
               "4096-address batch (queueing included). Churn = a control\n"
               "thread applying BGP updates back-to-back during the run;\n"
               "throughput should barely move — lookups read snapshots and\n"
               "never take a lock. Set CLUE_METRICS_DIR for the full JSON\n"
               "export (per-worker latency histograms, TTF stage traces).\n";

  registry.add_table(
      "runtime_throughput",
      {"workers", "churn", "mlookups_per_s", "p50_us", "p99_us", "p999_us"},
      csv_rows);
  clue::bench::export_run("runtime_throughput", registry);
  return 0;
}
