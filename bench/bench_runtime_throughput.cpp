// Threaded runtime throughput: Mlookups/s and batch latency quantiles
// versus worker-thread count, with and without concurrent BGP churn.
//
// The simulation benches (bench_speedup et al.) measure the paper's
// clock-accurate model; this one measures the actual concurrent
// runtime — real threads, real SPSC rings, real epoch-protected table
// swaps. On a multi-core host the 1->4 worker column should scale
// close to linearly for uniform traffic; on a single hardware thread
// it degenerates to context-switch throughput (the numbers still
// print, the scaling claim needs cores).
//
// Observability: every run exports through obs::MetricsRegistry — the
// figure table, per-worker service-time histograms, the client latency
// histogram, and the TTF stage traces of the churn thread's updates.
//
//   $ ./bench/bench_runtime_throughput
//   $ CLUE_CSV_DIR=/tmp ./bench/bench_runtime_throughput
//   $ CLUE_METRICS_DIR=/tmp ./bench/bench_runtime_throughput   # JSON
//   $ CLUE_BENCH_LOOKUPS=50000 ./bench/bench_runtime_throughput  # smoke
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "engine/flat_table.hpp"
#include "metrics_out.hpp"
#include "obs/metrics_registry.hpp"
#include "onrtc/compressed_fib.hpp"
#include "runtime/lookup_runtime.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using clue::netbase::Ipv4Address;
using clue::netbase::Pcg32;
using clue::runtime::LookupRuntime;
using clue::runtime::RuntimeConfig;

struct RunResult {
  double mlookups_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double dred_hit_rate = 0.0;
  std::uint64_t diverted = 0;
};

RunResult run_once(const clue::trie::BinaryTrie& fib,
                   const RuntimeConfig& config, std::size_t lookups,
                   std::size_t updates_in_flight,
                   clue::obs::MetricsRegistry* registry,
                   const std::string& run_tag,
                   bool record_latency = true) {
  LookupRuntime runtime(fib, config);

  // Optional concurrent churn from a control thread.
  std::atomic<bool> stop{false};
  std::thread control;
  if (updates_in_flight > 0) {
    control = std::thread([&runtime, &fib, &stop] {
      clue::workload::UpdateConfig update_config;
      update_config.seed = 4102;
      clue::workload::UpdateGenerator updates(fib, update_config);
      while (!stop.load(std::memory_order_acquire)) {
        runtime.apply(updates.next());
      }
    });
  }

  Pcg32 rng(4103);
  constexpr std::size_t kBatch = 4096;
  std::vector<Ipv4Address> batch;
  batch.reserve(kBatch);
  clue::stats::Percentiles latency;
  std::vector<double> latency_ns;

  const auto start = std::chrono::steady_clock::now();
  std::size_t done = 0;
  while (done < lookups) {
    batch.clear();
    const std::size_t n = std::min(kBatch, lookups - done);
    for (std::size_t i = 0; i < n; ++i) batch.emplace_back(rng.next());
    // Latency sampling costs a clock read per sub-batch; the pure
    // throughput A/B runs pass record_latency=false so neither side
    // pays it.
    runtime.lookup_batch(batch, record_latency ? &latency_ns : nullptr);
    if (record_latency) {
      for (const double ns : latency_ns) latency.add(ns / 1000.0);
    }
    done += n;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  stop.store(true, std::memory_order_release);
  if (control.joinable()) control.join();

  const auto metrics = runtime.metrics();
  RunResult result;
  result.mlookups_per_s =
      static_cast<double>(done) / elapsed / 1e6;
  if (record_latency) {
    result.p50_us = latency.quantile(0.50);
    result.p99_us = latency.quantile(0.99);
    result.p999_us = latency.quantile(0.999);
  }
  result.dred_hit_rate = metrics.dred_hit_rate();
  result.diverted = metrics.diverted;

  if (registry) {
    registry->set_gauge(run_tag + ".mlookups_per_s", result.mlookups_per_s);
    registry->set_counter(run_tag + ".diverted", metrics.diverted);
    registry->set_counter(run_tag + ".backpressure_waits",
                          metrics.backpressure_waits);
    registry->set_counter(run_tag + ".client_stalls", metrics.client_stalls);
    registry->set_counter(run_tag + ".updates_applied",
                          metrics.updates_applied);
    registry->set_gauge(run_tag + ".dred_hit_rate", result.dred_hit_rate);
    // Per-worker service-time histograms + client latency histogram.
    for (std::size_t w = 0; w < runtime.worker_count(); ++w) {
      registry->add_histogram(
          run_tag + ".worker" + std::to_string(w) + ".service_ns",
          runtime.worker_service_histogram(w));
    }
    registry->add_histogram(run_tag + ".client.latency_ns",
                            runtime.client_latency_histogram());
    // TTF stage traces from the churn thread's updates (empty when the
    // run had no churn).
    registry->add_ttf_trace(run_tag + ".ttf", runtime.ttf_trace());
  }
  return result;
}

/// Addresses drawn from inside the table's routed ranges — the traffic a
/// deployed router actually resolves. Uniform-random 32-bit addresses
/// mostly miss a 100k-route synthetic RIB after a few trie levels, which
/// would flatter the trie path.
std::vector<Ipv4Address> matched_pool(const clue::trie::BinaryTrie& table,
                                      std::size_t count, std::uint64_t seed) {
  const auto routes = table.routes();
  Pcg32 rng(seed);
  std::vector<Ipv4Address> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& route = routes[rng.next_below(
        static_cast<std::uint32_t>(routes.size()))];
    const std::uint32_t span_bits = 32u - route.prefix.length();
    const std::uint32_t offset =
        span_bits >= 32 ? rng.next() : rng.next() & ((1u << span_bits) - 1u);
    pool.emplace_back(route.prefix.range_low().value() + offset);
  }
  return pool;
}

/// One chip's resolution loop, flat image vs trie walk — transport-free,
/// so the number is the table structure's own service rate. The flat
/// side replays the worker loop's batch prefetch (issue all level-1
/// lines, then resolve); the trie side cannot prefetch a pointer chase.
double resolve_mlps_trie(const clue::trie::BinaryTrie& table,
                         const std::vector<Ipv4Address>& pool,
                         std::size_t lookups) {
  std::uint64_t sink = 0;
  std::size_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < lookups) {
    const std::size_t n = std::min(pool.size(), lookups - done);
    for (std::size_t i = 0; i < n; ++i) {
      sink += clue::netbase::to_index(table.lookup(pool[i]));
    }
    done += n;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  volatile std::uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(done) / elapsed / 1e6;
}

double resolve_mlps_flat(const clue::engine::FlatLookupTable& flat,
                         const std::vector<Ipv4Address>& pool,
                         std::size_t lookups) {
  constexpr std::size_t kPrefetchBatch = 32;
  std::uint64_t sink = 0;
  std::size_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < lookups) {
    const std::size_t n = std::min(pool.size(), lookups - done);
    for (std::size_t base = 0; base < n; base += kPrefetchBatch) {
      const std::size_t end = std::min(base + kPrefetchBatch, n);
      for (std::size_t i = base; i < end; ++i) flat.prefetch(pool[i]);
      for (std::size_t i = base; i < end; ++i) {
        sink += clue::netbase::to_index(flat.lookup(pool[i]));
      }
    }
    done += n;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  volatile std::uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(done) / elapsed / 1e6;
}

std::size_t lookups_from_env(std::size_t fallback) {
  const char* value = std::getenv("CLUE_BENCH_LOOKUPS");
  if (!value || !*value) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  const std::size_t kLookups = lookups_from_env(2'000'000);

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 100'000;
  rib_config.seed = 4101;
  const auto fib = clue::workload::generate_rib(rib_config);

  std::cout << "=== Threaded runtime throughput (" << fib.size()
            << " routes, batches of 4096, "
            << std::thread::hardware_concurrency()
            << " hardware threads, " << kLookups << " lookups/run) ===\n\n";

  clue::obs::MetricsRegistry registry;
  std::vector<std::vector<std::string>> csv_rows;
  clue::stats::TablePrinter out({"Workers", "Churn", "Mlookups/s", "Scaling",
                                 "p50(us)", "p99(us)", "p999(us)", "DRedHit"});
  double base = 0.0;
  for (const bool churn : {false, true}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const std::string tag = "w" + std::to_string(workers) +
                              (churn ? ".churn" : ".nochurn");
      RuntimeConfig config;
      config.worker_count = workers;
      const auto r = run_once(fib, config, kLookups, churn ? 1 : 0,
                              &registry, tag);
      if (workers == 1 && !churn) base = r.mlookups_per_s;
      const double scaling = base > 0.0 ? r.mlookups_per_s / base : 0.0;
      out.add_row({std::to_string(workers), churn ? "yes" : "no",
                   fixed(r.mlookups_per_s, 3), fixed(scaling, 2) + "x",
                   fixed(r.p50_us, 1), fixed(r.p99_us, 1),
                   fixed(r.p999_us, 1), percent(r.dred_hit_rate)});
      csv_rows.push_back({std::to_string(workers), churn ? "1" : "0",
                          fixed(r.mlookups_per_s, 4), fixed(r.p50_us, 2),
                          fixed(r.p99_us, 2), fixed(r.p999_us, 2)});
    }
  }
  out.print(std::cout);
  std::cout << "\nLatency is submit-to-completion per address inside a\n"
               "4096-address batch (queueing included). Churn = a control\n"
               "thread applying BGP updates back-to-back during the run;\n"
               "throughput should barely move — lookups read snapshots and\n"
               "never take a lock. Set CLUE_METRICS_DIR for the full JSON\n"
               "export (per-worker latency histograms, TTF stage traces).\n";

  registry.add_table(
      "runtime_throughput",
      {"workers", "churn", "mlookups_per_s", "p50_us", "p99_us", "p999_us"},
      csv_rows);

  // Flat-path A/B, the tentpole claim. Two measurements over the same
  // matched-traffic pool (addresses inside routed ranges — the packets
  // a router actually resolves), best of N per side so scheduler noise
  // can only understate the win:
  //
  //   single-chip: one chip's resolution loop in isolation — the flat
  //     direct-index image vs the trie walk, transport-free. This is
  //     the structure the paper's non-overlap property pays for.
  //   end-to-end: the full threaded runtime (client thread, SPSC rings,
  //     reorder) with config.flat_lookup toggled; on few-core hosts the
  //     transport dominates, so this ratio is a floor, not the claim.
  constexpr int kAbReps = 3;
  const clue::onrtc::CompressedFib compressed(fib);
  const auto& chip_table = compressed.compressed();
  const clue::engine::FlatLookupTable flat_image(chip_table);
  const auto pool = matched_pool(chip_table, 1u << 20, 4104);
  std::cout << "\n=== Flat lookup A/B (single chip, " << chip_table.size()
            << " disjoint routes, matched traffic, best of " << kAbReps
            << ") ===\n\n";

  double chip_trie = 0.0;
  double chip_flat = 0.0;
  for (int rep = 0; rep < kAbReps; ++rep) {
    chip_trie = std::max(chip_trie, resolve_mlps_trie(chip_table, pool,
                                                      kLookups));
    chip_flat = std::max(chip_flat, resolve_mlps_flat(flat_image, pool,
                                                      kLookups));
  }
  const double chip_speedup = chip_trie > 0.0 ? chip_flat / chip_trie : 0.0;

  double rt_flat = 0.0;
  double rt_trie = 0.0;
  for (const bool flat : {true, false}) {
    for (int rep = 0; rep < kAbReps; ++rep) {
      RuntimeConfig config;
      config.worker_count = 1;
      config.flat_lookup = flat;
      const auto r = run_once(fib, config, kLookups, 0, nullptr, "",
                              /*record_latency=*/false);
      double& best = flat ? rt_flat : rt_trie;
      if (r.mlookups_per_s > best) best = r.mlookups_per_s;
    }
  }
  const double rt_speedup = rt_trie > 0.0 ? rt_flat / rt_trie : 0.0;

  clue::stats::TablePrinter ab_out(
      {"Scope", "Path", "Mlookups/s", "Speedup"});
  ab_out.add_row({"single-chip", "trie", fixed(chip_trie, 3), "1.00x"});
  ab_out.add_row({"single-chip", "flat", fixed(chip_flat, 3),
                  fixed(chip_speedup, 2) + "x"});
  ab_out.add_row({"end-to-end", "trie", fixed(rt_trie, 3), "1.00x"});
  ab_out.add_row({"end-to-end", "flat", fixed(rt_flat, 3),
                  fixed(rt_speedup, 2) + "x"});
  ab_out.print(std::cout);
  std::cout << "\nFlat image: " << flat_image.memory_bytes() / 1024 / 1024
            << " MiB across " << flat_image.chunk_count() << " chunks, "
            << flat_image.l2_block_count() << " level-2 blocks.\n";

  registry.set_gauge("flat_ab.trie_mlookups_per_s", chip_trie);
  registry.set_gauge("flat_ab.flat_mlookups_per_s", chip_flat);
  registry.set_gauge("flat_ab.speedup", chip_speedup);
  registry.set_gauge("flat_ab.runtime_trie_mlookups_per_s", rt_trie);
  registry.set_gauge("flat_ab.runtime_flat_mlookups_per_s", rt_flat);
  registry.set_gauge("flat_ab.runtime_speedup", rt_speedup);
  registry.set_gauge("flat_ab.flat_bytes",
                     static_cast<double>(flat_image.memory_bytes()));
  registry.add_table(
      "flat_ab", {"scope", "path", "mlookups_per_s", "speedup"},
      {{"single-chip", "trie", fixed(chip_trie, 4), "1.0"},
       {"single-chip", "flat", fixed(chip_flat, 4), fixed(chip_speedup, 4)},
       {"end-to-end", "trie", fixed(rt_trie, 4), "1.0"},
       {"end-to-end", "flat", fixed(rt_flat, 4), fixed(rt_speedup, 4)}});

  clue::bench::export_run("runtime_throughput", registry);
  // Machine-readable perf trajectory: the same registry under the
  // BENCH_runtime.json name CI and tooling key on.
  clue::bench::export_run("BENCH_runtime", registry);
  return 0;
}
