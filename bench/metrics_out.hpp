// Bench output through the observability layer (replaces csv_out.hpp).
//
// Each bench assembles one obs::MetricsRegistry per run — its figure
// series as tables, headline numbers as gauges/counters, and (for the
// runtime benches) latency histograms and TTF traces — then calls
// export_run():
//
//   CLUE_CSV_DIR=<dir>      each table -> <dir>/<table>.csv, the same
//                           gnuplot-ready files csv_out.hpp wrote;
//   CLUE_METRICS_DIR=<dir>  the whole registry -> <dir>/<name>.json.
//
// Without either variable set, benches only print their tables.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "stats/stats.hpp"

namespace clue::bench {

/// Copies a printed stats::TablePrinter into the registry, so the table
/// a bench displays is exactly the table it exports.
inline void add_table(obs::MetricsRegistry& registry, std::string name,
                      const stats::TablePrinter& printer) {
  registry.add_table(std::move(name), printer.headers(), printer.rows());
}

inline void export_run(const std::string& name,
                       const obs::MetricsRegistry& registry) {
  if (const char* dir = std::getenv("CLUE_CSV_DIR"); dir && *dir) {
    for (const auto& table : registry.tables()) {
      const std::string path = std::string(dir) + "/" + table.name + ".csv";
      std::ofstream out(path);
      if (!out) {
        std::cerr << "csv: cannot write " << path << "\n";
        continue;
      }
      stats::write_csv(out, table.headers, table.rows);
      std::cout << "[csv] wrote " << path << "\n";
    }
  }
  if (const char* dir = std::getenv("CLUE_METRICS_DIR"); dir && *dir) {
    const std::string path = std::string(dir) + "/" + name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "metrics: cannot write " << path << "\n";
      return;
    }
    out << registry.to_json() << "\n";
    std::cout << "[metrics] wrote " << path << "\n";
  }
}

/// Convenience for benches whose only export is their display table.
inline void export_table(const std::string& name,
                         const stats::TablePrinter& printer) {
  obs::MetricsRegistry registry;
  add_table(registry, name, printer);
  export_run(name, registry);
}

/// Contributes one section to a shared multi-bench JSON file — the
/// mechanism behind BENCH_update.json, which collects the update-path
/// headline numbers from bench_update_burst, bench_ttf, and
/// bench_tcam_update however many of them (and in whatever order) a CI
/// run executes.
///
/// Each call writes the registry to <dir>/<bench>.d/<section>.json, then
/// regenerates <dir>/<bench>.json as {"sections":{"<name>": <contents>,
/// ...}} by embedding every section file verbatim (each is a complete
/// JSON value, so the textual splice is itself valid JSON). No parsing,
/// no cross-process locking: concurrent benches at worst re-embed each
/// other's finished files. No-op unless CLUE_METRICS_DIR is set.
inline void export_bench_section(const std::string& bench,
                                 const std::string& section,
                                 const obs::MetricsRegistry& registry) {
  const char* dir = std::getenv("CLUE_METRICS_DIR");
  if (!dir || !*dir) return;
  namespace fs = std::filesystem;
  const fs::path sections_dir = fs::path(dir) / (bench + ".d");
  std::error_code ec;
  fs::create_directories(sections_dir, ec);
  if (ec) {
    std::cerr << "metrics: cannot create " << sections_dir.string() << "\n";
    return;
  }
  const fs::path section_path = sections_dir / (section + ".json");
  {
    std::ofstream out(section_path);
    if (!out) {
      std::cerr << "metrics: cannot write " << section_path.string() << "\n";
      return;
    }
    out << registry.to_json() << "\n";
  }
  // Rebuild the combined file from every section present, sorted for a
  // stable layout.
  std::vector<fs::path> parts;
  for (const auto& entry : fs::directory_iterator(sections_dir, ec)) {
    if (entry.path().extension() == ".json") parts.push_back(entry.path());
  }
  std::sort(parts.begin(), parts.end());
  const fs::path combined = fs::path(dir) / (bench + ".json");
  std::ofstream out(combined);
  if (!out) {
    std::cerr << "metrics: cannot write " << combined.string() << "\n";
    return;
  }
  out << "{\"sections\":{";
  bool first = true;
  for (const auto& part : parts) {
    std::ifstream in(part);
    if (!in) continue;
    std::ostringstream body;
    body << in.rdbuf();
    if (!first) out << ',';
    first = false;
    out << '"' << part.stem().string() << "\":" << body.str();
  }
  out << "}}\n";
  std::cout << "[metrics] wrote " << combined.string() << " (section "
            << section << ")\n";
}

}  // namespace clue::bench
