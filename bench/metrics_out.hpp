// Bench output through the observability layer (replaces csv_out.hpp).
//
// Each bench assembles one obs::MetricsRegistry per run — its figure
// series as tables, headline numbers as gauges/counters, and (for the
// runtime benches) latency histograms and TTF traces — then calls
// export_run():
//
//   CLUE_CSV_DIR=<dir>      each table -> <dir>/<table>.csv, the same
//                           gnuplot-ready files csv_out.hpp wrote;
//   CLUE_METRICS_DIR=<dir>  the whole registry -> <dir>/<name>.json.
//
// Without either variable set, benches only print their tables.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "stats/stats.hpp"

namespace clue::bench {

/// Copies a printed stats::TablePrinter into the registry, so the table
/// a bench displays is exactly the table it exports.
inline void add_table(obs::MetricsRegistry& registry, std::string name,
                      const stats::TablePrinter& printer) {
  registry.add_table(std::move(name), printer.headers(), printer.rows());
}

inline void export_run(const std::string& name,
                       const obs::MetricsRegistry& registry) {
  if (const char* dir = std::getenv("CLUE_CSV_DIR"); dir && *dir) {
    for (const auto& table : registry.tables()) {
      const std::string path = std::string(dir) + "/" + table.name + ".csv";
      std::ofstream out(path);
      if (!out) {
        std::cerr << "csv: cannot write " << path << "\n";
        continue;
      }
      stats::write_csv(out, table.headers, table.rows);
      std::cout << "[csv] wrote " << path << "\n";
    }
  }
  if (const char* dir = std::getenv("CLUE_METRICS_DIR"); dir && *dir) {
    const std::string path = std::string(dir) + "/" + name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "metrics: cannot write " << path << "\n";
      return;
    }
    out << registry.to_json() << "\n";
    std::cout << "[metrics] wrote " << path << "\n";
  }
}

/// Convenience for benches whose only export is their display table.
inline void export_table(const std::string& name,
                         const stats::TablePrinter& printer) {
  obs::MetricsRegistry registry;
  add_table(registry, name, printer);
  export_run(name, registry);
}

}  // namespace clue::bench
