// Ablation (paper §II-A.3): power. One TCAM search activates every
// valid entry in the searched block, so energy/search ∝ entries probed.
// Partitioning means only the home chip searches; compression shrinks
// what it holds. This bench quantifies the stack of savings the paper's
// architecture inherits from CoolCAMs-style partitioning plus ONRTC:
//
//   monolithic, uncompressed            — the naive deployment;
//   monolithic, ONRTC                   — compression alone;
//   4-way partitioned, uncompressed     — partitioning alone (CLPL-ish);
//   4-way partitioned, ONRTC (CLUE)     — both.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "tcam/tcam_chip.hpp"
#include "workload/traffic_gen.hpp"

namespace {

// Loads a route set into one chip and runs the traffic, returning the
// activated-entry count per search.
double energy_per_search(const std::vector<clue::netbase::Route>& routes,
                         const std::vector<clue::netbase::Ipv4Address>& trace,
                         const clue::engine::IndexingLogic* indexing,
                         const std::vector<clue::tcam::TcamChip*>& chips) {
  (void)routes;
  std::uint64_t activated = 0;
  for (const auto address : trace) {
    const std::size_t chip = indexing ? indexing->tcam_of(address) : 0;
    chips[chip]->search(address);
  }
  for (const auto* chip : chips) activated += chip->stats().activated_entries;
  return static_cast<double>(activated) / static_cast<double>(trace.size());
}

clue::tcam::TcamChip load(const std::vector<clue::netbase::Route>& routes) {
  clue::tcam::TcamChip chip(routes.size() + 1);
  std::size_t slot = 0;
  for (const auto& route : routes) {
    chip.write(slot++, clue::tcam::TcamEntry{route.prefix, route.next_hop});
  }
  return chip;
}

}  // namespace

int main() {
  using clue::stats::fixed;
  using clue::stats::percent;

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 60'000;
  rib_config.seed = 2001;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto original = fib.routes();
  const auto compressed = clue::onrtc::compress(fib);

  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 2002;
  clue::workload::TrafficGenerator traffic(
      clue::bench::prefixes_of(compressed), traffic_config);
  const auto trace = traffic.generate(100'000);

  std::cout << "=== Power model: activated TCAM entries per search ===\n\n";
  clue::stats::TablePrinter out(
      {"Configuration", "TotalEntries", "Entries/search", "vsNaive"});
  double baseline = 0;

  const auto report = [&](const char* name,
                          const std::vector<clue::netbase::Route>& table,
                          bool partitioned) {
    double energy;
    std::size_t total;
    if (!partitioned) {
      auto chip = load(table);
      std::vector<clue::tcam::TcamChip*> chips{&chip};
      energy = energy_per_search(table, trace, nullptr, chips);
      total = chip.occupied();
    } else {
      const auto setup = clue::bench::clue_setup(table, 4);
      std::vector<clue::tcam::TcamChip> chips;
      chips.reserve(4);
      for (const auto& routes : setup.tcam_routes) chips.push_back(load(routes));
      std::vector<clue::tcam::TcamChip*> pointers;
      for (auto& chip : chips) pointers.push_back(&chip);
      const clue::engine::IndexingLogic indexing(setup.bucket_boundaries,
                                                 setup.bucket_to_tcam);
      energy = energy_per_search(table, trace, &indexing, pointers);
      total = 0;
      for (const auto& chip : chips) total += chip.occupied();
    }
    if (baseline == 0) baseline = energy;
    out.add_row({name, std::to_string(total), fixed(energy, 0),
                 percent(energy / baseline)});
  };

  report("monolithic, uncompressed", original, false);
  report("monolithic, ONRTC", compressed, false);
  report("4-way partitioned, uncompressed", original, true);
  report("4-way partitioned, ONRTC (CLUE)", compressed, true);
  out.print(std::cout);
  clue::bench::export_table("power", out);
  std::cout << "\nExpected shape: partitioning divides energy by ~4, ONRTC\n"
               "shaves a further ~29%; combined ~18% of the naive search.\n";
  return 0;
}
