// Reproduces Table II: traffic share of 32 CLUE partitions and the
// extremely uneven 4-TCAM mapping built by sorting partitions by load.
//
// Paper: rrc01 split into 32 even partitions; real-trace traffic share
// per partition varies from 21.92 % down to 0.00 %; mapping the sorted
// partitions 8-per-chip yields TCAM loads of 77.88 / 17.43 / 4.54 /
// 0.16 % — the worst-case distribution Figures 15-16 then stress.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "engine/indexing_logic.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using clue::stats::percent;

  constexpr std::size_t kBuckets = 32;
  constexpr std::size_t kTcams = 4;
  constexpr std::size_t kPackets = 2'000'000;

  const auto& router = clue::workload::paper_routers().front();  // rrc01
  const auto fib = clue::workload::generate_rib(router);
  const auto table = clue::onrtc::compress(fib);
  const auto partitions = clue::partition::even_partition(table, kBuckets);
  const auto boundaries =
      clue::partition::even_partition_boundaries(table, kBuckets);
  std::vector<std::size_t> identity(kBuckets);
  std::iota(identity.begin(), identity.end(), 0u);
  // Indexing over 32 buckets (bucket == partition for this table).
  std::vector<std::size_t> bucket_ids(kBuckets);
  std::iota(bucket_ids.begin(), bucket_ids.end(), 0u);
  const clue::engine::IndexingLogic indexing(boundaries, bucket_ids);

  // Zipf traffic over the routed prefixes (CAIDA-trace stand-in).
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 20110217;
  traffic_config.zipf_skew = 1.05;
  traffic_config.cluster_locality = 0.95;
  clue::workload::TrafficGenerator traffic(clue::bench::prefixes_of(table),
                                           traffic_config);
  std::vector<std::uint64_t> load(kBuckets, 0);
  for (std::size_t i = 0; i < kPackets; ++i) {
    ++load[indexing.bucket_of(traffic.next())];
  }

  // Sort partitions by load, deal 8 per TCAM (the paper's mapping).
  std::vector<std::size_t> order(kBuckets);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&load](std::size_t a, std::size_t b) {
    return load[a] > load[b];
  });

  std::cout << "=== Table II: workload on partitions and TCAM chips ("
            << router.id << ", " << table.size() << " compressed routes, "
            << kPackets << " packets) ===\n\n";
  clue::stats::TablePrinter out({"TCAM", "Bucket", "RangeLow", "RangeHigh",
                                 "%ofPartition", "%ofTCAM"});
  for (std::size_t chip = 0; chip < kTcams; ++chip) {
    double chip_share = 0;
    for (std::size_t j = 0; j < kBuckets / kTcams; ++j) {
      chip_share += static_cast<double>(load[order[chip * 8 + j]]);
    }
    chip_share /= static_cast<double>(kPackets);
    for (std::size_t j = 0; j < kBuckets / kTcams; ++j) {
      const std::size_t bucket = order[chip * 8 + j];
      const auto& routes = partitions.buckets[bucket].routes;
      out.add_row(
          {j == 0 ? std::to_string(chip + 1) : "",
           std::to_string(bucket),
           routes.front().prefix.range_low().to_string(),
           routes.back().prefix.range_high().to_string(),
           percent(static_cast<double>(load[bucket]) /
                   static_cast<double>(kPackets)),
           j == 0 ? percent(chip_share) : ""});
    }
  }
  out.print(std::cout);
  clue::bench::export_table("workload", out);
  std::cout << "\nExpected shape: a handful of partitions carry most of the\n"
               "traffic; the sorted 8-per-chip mapping concentrates ~3/4 of\n"
               "all load on TCAM 1 (paper: 77.88/17.43/4.54/0.16%).\n";
  return 0;
}
