// Online boundary rebalancer: what does keeping the partition even cost,
// and what does it buy?
//
// Scenario: hot-/8 churn — announces concentrated below the first
// partition boundary (chip 0's range), the drift pattern §III-A's
// construction-time evenness cannot survive. Two runs of the concurrent
// runtime, rebalancer off vs. on, with a client thread hammering
// lookups throughout:
//
//   off  occupancy drifts freely (capacity is padded so nothing
//        overflows); afterwards one forced rebalance_now() measures the
//        recovery cost of the accumulated drift in one bill.
//   on   watermark-triggered passes amortize migrations across the
//        churn; the table reports their count, migrated entries, and
//        per-pass latency quantiles next to the update and lookup
//        throughput they cost.
//
//   $ ./bench/bench_rebalance
//   $ CLUE_BENCH_UPDATES=5000 ./bench/bench_rebalance   # smoke
//   $ CLUE_METRICS_DIR=/tmp ./bench/bench_rebalance     # JSON export
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "metrics_out.hpp"
#include "netbase/rng.hpp"
#include "obs/metrics_registry.hpp"
#include "runtime/lookup_runtime.hpp"
#include "stats/stats.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

using clue::netbase::Ipv4Address;
using clue::netbase::make_next_hop;
using clue::netbase::Pcg32;
using clue::netbase::Prefix;
using clue::runtime::LookupRuntime;
using clue::runtime::RuntimeConfig;

struct RunResult {
  double updates_per_s = 0.0;
  double mlookups_per_s = 0.0;
  double drift_skew = 1.0;  ///< skew when the churn stops
  double final_skew = 1.0;  ///< after the closing rebalance_now()
  std::uint64_t passes = 0;
  std::uint64_t migrated = 0;
  double pass_p50_us = 0.0;
  double pass_p99_us = 0.0;
  double recovery_ms = 0.0;  ///< wall time of the closing rebalance_now()
};

RunResult run_once(const clue::trie::BinaryTrie& fib, bool rebalance_on,
                   std::size_t updates, clue::obs::MetricsRegistry* registry,
                   const std::string& run_tag) {
  RuntimeConfig config;
  config.worker_count = 4;
  config.chip_headroom = 4.0;  // same padding both modes: drift never overflows
  config.rebalance.enabled = rebalance_on;
  LookupRuntime runtime(fib, config);
  const std::uint32_t bound = runtime.boundaries().front().value();

  std::atomic<bool> done{false};
  std::atomic<double> updates_per_s{0.0};
  std::thread control([&] {
    Pcg32 rng(7202);
    std::vector<Prefix> live;
    const std::size_t hot_target = updates / 4 + 1;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t u = 0; u < updates; ++u) {
      clue::workload::UpdateMsg msg;
      if (live.size() < hot_target || rng.next_below(2) == 0) {
        msg.kind = clue::workload::UpdateKind::kAnnounce;
        msg.prefix = Prefix(Ipv4Address(rng.next_below(bound)), 24);
        msg.next_hop = make_next_hop(1 + rng.next_below(250));
        live.push_back(msg.prefix);
      } else {
        const std::size_t pick =
            rng.next_below(static_cast<std::uint32_t>(live.size()));
        msg.kind = clue::workload::UpdateKind::kWithdraw;
        msg.prefix = live[pick];
        live[pick] = live.back();
        live.pop_back();
      }
      runtime.apply(msg);
    }
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    updates_per_s.store(static_cast<double>(updates) / elapsed,
                        std::memory_order_relaxed);
    done.store(true, std::memory_order_release);
  });

  Pcg32 rng(7203);
  constexpr std::size_t kBatch = 4096;
  std::vector<Ipv4Address> batch;
  batch.reserve(kBatch);
  std::size_t looked_up = 0;
  const auto start = std::chrono::steady_clock::now();
  while (!done.load(std::memory_order_acquire)) {
    batch.clear();
    // Half hot: the migrated region stays under lookup pressure.
    for (std::size_t i = 0; i < kBatch / 2; ++i) {
      batch.emplace_back(rng.next());
    }
    for (std::size_t i = 0; i < kBatch / 2; ++i) {
      batch.emplace_back(rng.next_below(bound));
    }
    runtime.lookup_batch(batch);
    looked_up += batch.size();
  }
  const double lookup_elapsed = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
  control.join();

  RunResult result;
  result.updates_per_s = updates_per_s.load(std::memory_order_relaxed);
  result.mlookups_per_s =
      static_cast<double>(looked_up) / lookup_elapsed / 1e6;
  result.drift_skew = runtime.skew();

  const auto recovery_start = std::chrono::steady_clock::now();
  runtime.rebalance_now();
  result.recovery_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - recovery_start)
                           .count();
  result.final_skew = runtime.skew();

  const auto metrics = runtime.metrics();
  result.passes = metrics.rebalance_passes;
  result.migrated = metrics.entries_migrated;

  clue::obs::MetricsRegistry scratch;
  runtime.export_metrics(scratch);
  for (const auto& [name, snapshot] : scratch.histograms()) {
    if (name == "runtime.rebalance_ns" && !snapshot.empty()) {
      result.pass_p50_us = snapshot.quantile_ns(0.50) / 1000.0;
      result.pass_p99_us = snapshot.quantile_ns(0.99) / 1000.0;
    }
  }

  if (registry) {
    registry->set_gauge(run_tag + ".updates_per_s", result.updates_per_s);
    registry->set_gauge(run_tag + ".mlookups_per_s", result.mlookups_per_s);
    registry->set_gauge(run_tag + ".drift_skew", result.drift_skew);
    registry->set_gauge(run_tag + ".final_skew", result.final_skew);
    registry->set_counter(run_tag + ".rebalance_passes", result.passes);
    registry->set_counter(run_tag + ".entries_migrated", result.migrated);
    registry->set_gauge(run_tag + ".recovery_ms", result.recovery_ms);
    registry->add_ttf_trace(run_tag + ".ttf", runtime.ttf_trace());
  }
  return result;
}

std::size_t updates_from_env(std::size_t fallback) {
  const char* value = std::getenv("CLUE_BENCH_UPDATES");
  if (!value || !*value) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

int main() {
  using clue::stats::fixed;

  const std::size_t kUpdates = updates_from_env(20'000);

  clue::workload::RibConfig rib_config;
  rib_config.table_size = 20'000;
  rib_config.seed = 7201;
  const auto fib = clue::workload::generate_rib(rib_config);

  std::cout << "=== Boundary rebalancer under hot-/8 churn (" << fib.size()
            << " routes, " << kUpdates << " updates, 4 workers) ===\n\n";

  clue::obs::MetricsRegistry registry;
  std::vector<std::vector<std::string>> csv_rows;
  clue::stats::TablePrinter out({"Rebalancer", "Updates/s", "Mlookups/s",
                                 "DriftSkew", "FinalSkew", "Passes",
                                 "Migrated", "PassP50(us)", "PassP99(us)",
                                 "Recovery(ms)"});
  for (const bool on : {false, true}) {
    const std::string tag = on ? "rebalance_on" : "rebalance_off";
    const auto r = run_once(fib, on, kUpdates, &registry, tag);
    out.add_row({on ? "on" : "off", fixed(r.updates_per_s, 0),
                 fixed(r.mlookups_per_s, 3), fixed(r.drift_skew, 2),
                 fixed(r.final_skew, 2), std::to_string(r.passes),
                 std::to_string(r.migrated), fixed(r.pass_p50_us, 1),
                 fixed(r.pass_p99_us, 1), fixed(r.recovery_ms, 2)});
    csv_rows.push_back({on ? "1" : "0", fixed(r.updates_per_s, 1),
                        fixed(r.mlookups_per_s, 4), fixed(r.drift_skew, 3),
                        fixed(r.final_skew, 3), std::to_string(r.passes),
                        std::to_string(r.migrated), fixed(r.recovery_ms, 3)});
  }
  out.print(std::cout);
  std::cout << "\nDriftSkew is max/min chip occupancy when churn stops;\n"
               "FinalSkew follows one forced rebalance_now(). With the\n"
               "rebalancer off the drift accumulates and Recovery(ms) pays\n"
               "for it all at once; with it on, watermark-triggered passes\n"
               "(PassP50/P99 wall time each) keep skew bounded while\n"
               "lookups keep flowing — compare the Mlookups/s columns.\n";

  registry.add_table("rebalance",
                     {"rebalance_on", "updates_per_s", "mlookups_per_s",
                      "drift_skew", "final_skew", "passes", "migrated",
                      "recovery_ms"},
                     csv_rows);
  clue::bench::export_run("rebalance", registry);
  return 0;
}
