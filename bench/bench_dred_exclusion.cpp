// Ablation (DESIGN.md): the value of CLUE's DRed exclusion rule.
//
// The paper claims DRed i need not cache TCAM i's prefixes because the
// dispatch never sends a chip's own traffic to its own DRed, so with 4
// chips CLUE needs 3/4 of CLPL's redundancy for the same hit rate. We
// isolate the rule: the same CLUE engine, fills sent to all N DReds
// ("inclusive") vs all-but-home ("exclusive"), at equal per-chip size.
// Exclusive fills leave more useful capacity -> higher hit rate.
#include <iostream>

#include "bench_util.hpp"
#include "metrics_out.hpp"
#include "stats/stats.hpp"
#include "workload/traffic_gen.hpp"

namespace {

// An engine variant toggle is intentionally NOT part of the public API
// (the exclusion rule is load-bearing in CLUE); we emulate "inclusive"
// fills by running CLPL mode on the same compressed, non-overlapping
// table. On a disjoint table RRC-ME returns exactly the matched prefix,
// so the ONLY remaining difference from CLUE mode is that fills also go
// to the home chip's DRed — precisely the ablation we want. (The
// control-plane interaction counter still ticks; it is reported, not
// charged, here.)
double hit_rate(bool exclusive, std::size_t dred_size) {
  constexpr std::size_t kTcams = 4;
  clue::workload::RibConfig rib_config;
  rib_config.table_size = 50'000;
  rib_config.seed = 1801;
  const auto fib = clue::workload::generate_rib(rib_config);
  const auto table = clue::onrtc::compress(fib);
  const auto setup = clue::bench::clue_setup(table, kTcams);

  // The disjoint image as a trie, for the CLPL-mode RRC-ME calls.
  static clue::trie::BinaryTrie disjoint;
  disjoint.clear();
  for (const auto& route : table) disjoint.insert(route.prefix, route.next_hop);

  clue::engine::EngineConfig config;
  config.tcam_count = kTcams;
  config.dred_capacity = dred_size;
  clue::engine::ParallelEngine engine(
      exclusive ? clue::engine::EngineMode::kClue
                : clue::engine::EngineMode::kClpl,
      config, setup, exclusive ? nullptr : &disjoint);
  // Mixed bursty traffic: every chip both serves home lookups (whose
  // fills pollute its own DRed when the rule is off) and absorbs other
  // chips' diversions. This is where the wasted 1/N of capacity shows.
  clue::workload::TrafficConfig traffic_config;
  traffic_config.seed = 1802;
  traffic_config.zipf_skew = 1.1;
  traffic_config.burst_period = 40'000;
  clue::workload::TrafficGenerator traffic(clue::bench::prefixes_of(table),
                                           traffic_config);
  const auto metrics =
      engine.run([&traffic] { return traffic.next(); }, 250'000);
  return metrics.dred_hit_rate();
}

}  // namespace

int main() {
  using clue::stats::percent;
  std::cout << "=== Ablation: DRed exclusion rule (same table, same "
               "traffic, equal per-chip DRed) ===\n\n";
  clue::stats::TablePrinter out(
      {"DRedSize", "Exclusive(CLUE rule)", "Inclusive(no rule)"});
  for (const std::size_t size : {64, 128, 256, 512, 1024}) {
    out.add_row({std::to_string(size), percent(hit_rate(true, size)),
                 percent(hit_rate(false, size))});
  }
  out.print(std::cout);
  clue::bench::export_table("dred_exclusion", out);
  std::cout << "\nExpected shape: the exclusive column dominates — fills\n"
               "that could never be hit no longer evict useful entries.\n";
  return 0;
}
