// Microbenchmarks (google-benchmark): the software costs behind TTF1 and
// the offline compression pass — trie update, incremental ONRTC update,
// full compression, and LPM lookup throughput.
#include <benchmark/benchmark.h>

#include "netbase/rng.hpp"
#include "onrtc/compressed_fib.hpp"
#include "engine/dred.hpp"
#include "onrtc/onrtc.hpp"
#include "rrcme/rrc_me.hpp"
#include "trie/multibit_trie.hpp"
#include "workload/rib_gen.hpp"
#include "workload/update_gen.hpp"

namespace {

clue::trie::BinaryTrie make_fib(std::size_t size) {
  clue::workload::RibConfig config;
  config.table_size = size;
  config.seed = 42;
  return clue::workload::generate_rib(config);
}

void BM_TrieLookup(benchmark::State& state) {
  const auto fib = make_fib(static_cast<std::size_t>(state.range(0)));
  clue::netbase::Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(clue::netbase::Ipv4Address(rng.next())));
  }
}
BENCHMARK(BM_TrieLookup)->Arg(10'000)->Arg(100'000);

void BM_TrieUpdate_Plain(benchmark::State& state) {
  auto fib = make_fib(static_cast<std::size_t>(state.range(0)));
  clue::workload::UpdateConfig config;
  config.seed = 9;
  clue::workload::UpdateGenerator updates(fib, config);
  for (auto _ : state) {
    const auto msg = updates.next();
    if (msg.kind == clue::workload::UpdateKind::kAnnounce) {
      fib.insert(msg.prefix, msg.next_hop);
    } else {
      fib.erase(msg.prefix);
    }
  }
}
BENCHMARK(BM_TrieUpdate_Plain)->Arg(100'000);

void BM_TrieUpdate_IncrementalOnrtc(benchmark::State& state) {
  const auto fib = make_fib(static_cast<std::size_t>(state.range(0)));
  clue::onrtc::CompressedFib compressed(fib);
  clue::workload::UpdateConfig config;
  config.seed = 9;
  clue::workload::UpdateGenerator updates(fib, config);
  for (auto _ : state) {
    const auto msg = updates.next();
    if (msg.kind == clue::workload::UpdateKind::kAnnounce) {
      benchmark::DoNotOptimize(compressed.announce(msg.prefix, msg.next_hop));
    } else {
      benchmark::DoNotOptimize(compressed.withdraw(msg.prefix));
    }
  }
}
BENCHMARK(BM_TrieUpdate_IncrementalOnrtc)->Arg(100'000);

void BM_FullCompression(benchmark::State& state) {
  const auto fib = make_fib(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clue::onrtc::compress(fib));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fib.size()));
}
BENCHMARK(BM_FullCompression)->Arg(100'000)->Arg(400'000)
    ->Unit(benchmark::kMillisecond);

void BM_MultibitLookup(benchmark::State& state) {
  const auto fib = make_fib(static_cast<std::size_t>(state.range(0)));
  clue::trie::MultibitTrie multibit;
  fib.for_each_route([&multibit](const clue::netbase::Route& route) {
    multibit.insert(route.prefix, route.next_hop);
  });
  clue::netbase::Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multibit.lookup(clue::netbase::Ipv4Address(rng.next())));
  }
}
BENCHMARK(BM_MultibitLookup)->Arg(10'000)->Arg(100'000);

void BM_MultibitUpdate(benchmark::State& state) {
  const auto fib = make_fib(static_cast<std::size_t>(state.range(0)));
  clue::trie::MultibitTrie multibit;
  fib.for_each_route([&multibit](const clue::netbase::Route& route) {
    multibit.insert(route.prefix, route.next_hop);
  });
  clue::workload::UpdateConfig config;
  config.seed = 9;
  clue::workload::UpdateGenerator updates(fib, config);
  for (auto _ : state) {
    const auto msg = updates.next();
    if (msg.kind == clue::workload::UpdateKind::kAnnounce) {
      multibit.insert(msg.prefix, msg.next_hop);
    } else {
      multibit.erase(msg.prefix);
    }
  }
}
BENCHMARK(BM_MultibitUpdate)->Arg(100'000);

void BM_DredLookup(benchmark::State& state) {
  clue::engine::DredStore dred(static_cast<std::size_t>(state.range(0)));
  clue::netbase::Pcg32 rng(13);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    dred.insert(clue::netbase::Route{
        clue::netbase::Prefix(clue::netbase::Ipv4Address(rng.next()), 24),
        clue::netbase::make_next_hop(1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dred.lookup(clue::netbase::Ipv4Address(rng.next())));
  }
}
BENCHMARK(BM_DredLookup)->Arg(1024)->Arg(16384);

void BM_DredInsertEvict(benchmark::State& state) {
  clue::engine::DredStore dred(1024);
  clue::netbase::Pcg32 rng(17);
  for (auto _ : state) {
    dred.insert(clue::netbase::Route{
        clue::netbase::Prefix(clue::netbase::Ipv4Address(rng.next()), 24),
        clue::netbase::make_next_hop(1)});
  }
}
BENCHMARK(BM_DredInsertEvict);

void BM_RrcMeExpansion(benchmark::State& state) {
  const auto fib = make_fib(100'000);
  clue::netbase::Pcg32 rng(11);
  // Sample addresses that actually have routes so the walk is realistic.
  const auto routes = fib.routes();
  for (auto _ : state) {
    const auto& route = routes[rng.next_below(
        static_cast<std::uint32_t>(routes.size()))];
    benchmark::DoNotOptimize(
        clue::rrcme::minimal_expansion(fib, route.prefix.range_low()));
  }
}
BENCHMARK(BM_RrcMeExpansion);

}  // namespace

BENCHMARK_MAIN();
