// Optional CSV emission for the figure benches: set CLUE_CSV_DIR to a
// writable directory and each bench drops its series there, ready for
// gnuplot/matplotlib. Without the variable, benches only print tables.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "stats/stats.hpp"

namespace clue::bench {

/// Writes `rows` under $CLUE_CSV_DIR/<name>.csv when the variable is
/// set; reports the path on success. No-op otherwise.
inline void maybe_write_csv(const std::string& name,
                            const std::vector<std::string>& headers,
                            const std::vector<std::vector<std::string>>& rows) {
  const char* dir = std::getenv("CLUE_CSV_DIR");
  if (!dir || !*dir) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "csv: cannot write " << path << "\n";
    return;
  }
  stats::write_csv(out, headers, rows);
  std::cout << "[csv] wrote " << path << "\n";
}

}  // namespace clue::bench
