#!/usr/bin/env bash
# CI gate: tier-1 suite in a plain build, then the same suite under
# ASan+UBSan, then the concurrency tests (SPSC ring, epoch domain,
# runtime stress) under TSan. Any data race, leak, UB, or test failure
# fails the script.
#
#   $ ci/check.sh            # all three stages
#   $ ci/check.sh plain      # just the plain tier-1 run
#   $ ci/check.sh asan       # just ASan+UBSan
#   $ ci/check.sh tsan       # just TSan concurrency stage
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
STAGE="${1:-all}"

configure_and_build() {
  local dir="$1" sanitize="$2"
  cmake -B "$dir" -S . -DCLUE_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_plain() {
  echo "=== stage: plain tier-1 ==="
  configure_and_build build ""
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_asan() {
  echo "=== stage: ASan+UBSan tier-1 ==="
  configure_and_build build-asan address
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "=== stage: TSan concurrency ==="
  configure_and_build build-tsan thread
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure \
      -R 'SpscRingTest|EpochTest|LookupRuntimeTest'
}

case "$STAGE" in
  plain) run_plain ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)
    run_plain
    run_asan
    run_tsan
    ;;
  *)
    echo "usage: $0 [plain|asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "=== all requested stages passed ==="
