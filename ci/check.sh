#!/usr/bin/env bash
# CI gate: tier-1 suite in a plain build, then the same suite under
# ASan+UBSan, then the concurrency tests (SPSC ring, epoch domain,
# runtime stress, rebalancer, group-commit batches, observability
# counters/histograms) under TSan, then a metrics-exporter smoke run
# (bench_runtime_throughput + bench_update_burst, whose JSON exports
# must parse and whose batched throughput must beat sequential), then
# the churn-soak: the rebalancer soak test rerun at CLUE_SOAK_UPDATES
# updates (default 500000) of sustained hot-/8 churn, and the
# burst-soak: the async group-commit ingress hammered under TSan at
# CLUE_SOAK_UPDATES bursty updates with concurrent lookups. Any data
# race, leak, UB, or test failure fails the script.
#
#   $ ci/check.sh            # all six stages
#   $ ci/check.sh plain      # just the plain tier-1 run
#   $ ci/check.sh asan       # just ASan+UBSan
#   $ ci/check.sh tsan       # just TSan concurrency stage
#   $ ci/check.sh smoke      # just the metrics-exporter smoke run
#   $ ci/check.sh soak       # just the churn-soak
#   $ ci/check.sh burst-soak # just the group-commit burst soak (TSan)
#   $ CLUE_SOAK_UPDATES=100000 ci/check.sh soak   # bounded soak
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
STAGE="${1:-all}"

configure_and_build() {
  local dir="$1" sanitize="$2"
  cmake -B "$dir" -S . -DCLUE_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_plain() {
  echo "=== stage: plain tier-1 ==="
  configure_and_build build ""
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_asan() {
  echo "=== stage: ASan+UBSan tier-1 ==="
  configure_and_build build-asan address
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "=== stage: TSan concurrency ==="
  configure_and_build build-tsan thread
  # The soak test runs here too, shortened: TSan is ~10x, so a bounded
  # update count still soaks the migration protocol for races.
  CLUE_SOAK_UPDATES="${CLUE_TSAN_SOAK_UPDATES:-5000}" \
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure \
      -R 'SpscRingTest|EpochTest|LookupRuntimeTest|FlatTableTest|CounterBlockTest|LatencyHistogramTest|TtfTraceRingTest|RebalancePlannerTest|RebalanceTest|RebalanceSoakTest|CoalesceOps|BatchUpdate|BurstSoakTest'
}

run_smoke() {
  echo "=== stage: metrics-exporter smoke ==="
  configure_and_build build ""
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  CLUE_METRICS_DIR="$out" CLUE_CSV_DIR="$out" CLUE_BENCH_LOOKUPS=20000 \
    ./build/bench/bench_runtime_throughput >/dev/null
  [ -s "$out/runtime_throughput.json" ] || {
    echo "smoke: JSON export missing" >&2
    exit 1
  }
  [ -s "$out/BENCH_runtime.json" ] || {
    echo "smoke: BENCH_runtime.json export missing" >&2
    exit 1
  }
  [ -s "$out/runtime_throughput.csv" ] || {
    echo "smoke: CSV export missing" >&2
    exit 1
  }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$out/runtime_throughput.json" >/dev/null || {
      echo "smoke: exported JSON does not parse" >&2
      exit 1
    }
    python3 - "$out/BENCH_runtime.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["histograms"], "no histograms exported"
assert any(".service_ns" in k for k in doc["histograms"]), "no worker histograms"
assert "ttf_traces" in doc, "no TTF trace section"
gauges = doc["gauges"]
for key in ("flat_ab.speedup", "flat_ab.flat_mlookups_per_s",
            "flat_ab.trie_mlookups_per_s", "flat_ab.runtime_speedup"):
    assert key in gauges, f"missing {key} gauge"
assert gauges["flat_ab.speedup"] > 0, "flat A/B did not run"
EOF
  else
    echo "smoke: python3 not found, skipping JSON parse check"
  fi
  # Group-commit smoke: a small burst replay must export BENCH_update.json
  # and show the batched path at least matching the sequential one.
  CLUE_METRICS_DIR="$out" CLUE_BENCH_UPDATES=1536 \
    ./build/bench/bench_update_burst >/dev/null
  [ -s "$out/BENCH_update.json" ] || {
    echo "smoke: BENCH_update.json export missing" >&2
    exit 1
  }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/BENCH_update.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
gauges = doc["sections"]["update_burst"]["gauges"]
seq = gauges["update_burst.sequential_updates_per_sec"]
bat = gauges["update_burst.batched_updates_per_sec"]
assert seq > 0, "sequential phase did not run"
assert bat >= seq, f"batched {bat:.0f}/s slower than sequential {seq:.0f}/s"
EOF
  fi
  echo "smoke: exporter output OK"
}

run_soak() {
  echo "=== stage: churn-soak (${CLUE_SOAK_UPDATES:-500000} updates) ==="
  configure_and_build build ""
  CLUE_SOAK_UPDATES="${CLUE_SOAK_UPDATES:-500000}" \
    ctest --test-dir build --output-on-failure \
      -R 'RebalanceSoakTest'
}

run_burst_soak() {
  echo "=== stage: burst-soak (${CLUE_SOAK_UPDATES:-100000} updates, TSan) ==="
  configure_and_build build-tsan thread
  CLUE_SOAK_UPDATES="${CLUE_SOAK_UPDATES:-100000}" \
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure \
      -R 'BurstSoakTest'
}

case "$STAGE" in
  plain) run_plain ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  smoke) run_smoke ;;
  soak) run_soak ;;
  burst-soak) run_burst_soak ;;
  all)
    run_plain
    run_asan
    run_tsan
    run_smoke
    run_soak
    run_burst_soak
    ;;
  *)
    echo "usage: $0 [plain|asan|tsan|smoke|soak|burst-soak|all]" >&2
    exit 2
    ;;
esac

echo "=== all requested stages passed ==="
